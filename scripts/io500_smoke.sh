#!/usr/bin/env bash
# IO500 smoke test for the metadata path.
#
# Drives the `io500` flagship experiment end to end at quick scale (the
# simulation draws all jitter from pinned per-subsystem seeds, so every
# run is deterministic): the render must carry the ior bandwidth rows,
# the mdtest metadata rows and a composite score for BOTH backends (NFS
# and the replicated PVFS deployment), two identical invocations must
# render byte-identically, a parallel (--jobs 4) run must match the
# sequential render byte for byte, and resuming a checkpoint whose
# whole-experiment artifact was killed must reproduce the uninterrupted
# output exactly — the metadata-heavy campaign cells replay from their
# per-cell checkpoints.
#
# Usage: scripts/io500_smoke.sh [path-to-repro-binary]
set -euo pipefail

REPRO="${1:-target/release/repro}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ioeval-io500-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    echo "io500_smoke: building repro ..." >&2
    cargo build --release -p bench --bin repro
fi

echo "== 1/4 flagship render carries both backends' phases and scores ==" >&2
"$REPRO" --scale quick --out "$WORK/io500.txt" io500 >/dev/null
for needle in \
    "backend: NFS RAID5" \
    "backend: PVFS x4 r2" \
    "ior-easy-write" \
    "ior-hard-read" \
    "mdtest-easy" \
    "mdtest-hard" \
    "bandwidth score:" \
    "metadata score:" \
    "io500 score:"; do
    grep -q "$needle" "$WORK/io500.txt" || {
        echo "FAIL: io500 render lacks '$needle'" >&2
        exit 1
    }
done
if grep -q "degraded campaign" "$WORK/io500.txt"; then
    echo "FAIL: io500 campaign degraded (a phase failed)" >&2
    exit 1
fi
[[ "$(grep -c "io500 score:" "$WORK/io500.txt")" == 2 ]] || {
    echo "FAIL: expected one composite score per backend" >&2
    exit 1
}
echo "   both backends render all six phases plus composite" >&2

echo "== 2/4 pinned seeds: identical reruns render byte-identically ==" >&2
"$REPRO" --scale quick --out "$WORK/io500-2.txt" io500 >/dev/null
if ! diff -u "$WORK/io500.txt" "$WORK/io500-2.txt" >"$WORK/diff-rerun.txt"; then
    echo "FAIL: two identical invocations rendered differently:" >&2
    head -50 "$WORK/diff-rerun.txt" >&2
    exit 1
fi
echo "   rerun byte-identical" >&2

echo "== 3/4 parallel campaign scheduler: --jobs 4 matches --jobs 1 ==" >&2
"$REPRO" --scale quick --jobs 4 --out "$WORK/io500-par.txt" io500 >/dev/null
if ! diff -u "$WORK/io500.txt" "$WORK/io500-par.txt" >"$WORK/diff-jobs.txt"; then
    echo "FAIL: --jobs 4 rendered differently from sequential:" >&2
    head -50 "$WORK/diff-jobs.txt" >&2
    exit 1
fi
echo "   parallel render byte-identical" >&2

echo "== 4/4 mid-campaign checkpoint resume is byte-identical ==" >&2
"$REPRO" --scale quick --checkpoint "$WORK/ckpt" \
    --out "$WORK/ckpt-run.txt" io500 >/dev/null
# Drop the whole-experiment artifact so the resume re-renders from the
# per-cell checkpoints (characterizations + mdtest/ior outcomes) — the
# state a SIGKILLed run would leave behind.
rm -f "$WORK/ckpt"/exp-*.json
"$REPRO" --scale quick --resume "$WORK/ckpt" \
    --out "$WORK/resumed.txt" io500 >/dev/null
if ! diff -u "$WORK/io500.txt" "$WORK/resumed.txt" >"$WORK/diff-resume.txt"; then
    echo "FAIL: checkpoint resume differs from the uninterrupted run:" >&2
    head -50 "$WORK/diff-resume.txt" >&2
    exit 1
fi
echo "   resume byte-identical" >&2

echo "OK: io500 renders both backends, is rerun/jobs/resume byte-stable" >&2
