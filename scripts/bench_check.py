#!/usr/bin/env python3
"""Compare a fresh BENCH_hotpath.json against the committed baseline.

Usage: bench_check.py BASELINE FRESH [--tolerance PCT]

Fails (exit 1) when the fresh pinned-cell wall time regresses more than
PCT percent over the baseline. The tolerance defaults to 25 and can be
set with --tolerance or the IOEVAL_BENCH_TOLERANCE environment variable
(the flag wins when both are given). Timings are host-dependent, so only
the pinned cell — a multi-millisecond simulation, the least noisy number
in the report — is gated; the rest is printed for the log.
"""

import json
import os
import sys


def main() -> int:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    tolerance = 25.0
    env_tol = os.environ.get("IOEVAL_BENCH_TOLERANCE")
    if env_tol is not None:
        try:
            tolerance = float(env_tol)
        except ValueError:
            print(
                f"invalid IOEVAL_BENCH_TOLERANCE: {env_tol!r} (expected a number)",
                file=sys.stderr,
            )
            return 2
    for a in sys.argv[1:]:
        if a.startswith("--tolerance="):
            raw = a.split("=", 1)[1]
            try:
                tolerance = float(raw)
            except ValueError:
                print(f"invalid --tolerance: {raw!r} (expected a number)", file=sys.stderr)
                return 2

    def load_report(path: str, role: str) -> dict:
        """A malformed report must fail the check loudly: a truncated
        baseline silently treated as empty would skip every gate and turn
        the job green on garbage."""
        try:
            with open(path) as f:
                data = json.load(f)
        except OSError as e:
            print(f"FAIL: cannot read {role} {path}: {e}", file=sys.stderr)
            raise SystemExit(2)
        except json.JSONDecodeError as e:
            print(
                f"FAIL: {role} {path} is not valid JSON (truncated or corrupt): {e};"
                " regenerate with: cargo run --release -p bench --bin hotpath",
                file=sys.stderr,
            )
            raise SystemExit(2)
        if not isinstance(data, dict) or "schema" not in data:
            print(
                f"FAIL: {role} {path} is not a hotpath report (missing 'schema');"
                " regenerate with: cargo run --release -p bench --bin hotpath",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return data

    base = load_report(args[0], "baseline")
    fresh = load_report(args[1], "fresh report")

    if base["schema"] != fresh["schema"]:
        print(
            f"schema mismatch: baseline {base['schema']} vs fresh {fresh['schema']};"
            " regenerate the baseline with: cargo run --release -p bench --bin hotpath",
            file=sys.stderr,
        )
        return 1

    for field in (
        "event_queue_mops",
        "striping_ns_per_op",
        "memo_speedup",
        "scale_speedup",
    ):
        # A baseline committed before a cell existed simply lacks its
        # fields; that is a stale-but-valid baseline, not an error — but
        # the skip names the cell and the file, so a log reader can tell
        # a stale baseline from a cell that silently stopped reporting.
        b_val, f_val = base.get(field), fresh.get(field)
        if b_val is None or f_val is None:
            side, path = (
                ("baseline", args[0]) if b_val is None else ("fresh report", args[1])
            )
            print(f"{field:>22}: cell missing from {side} ({path}); skipped")
            continue
        print(f"{field:>22}: baseline {b_val:10.1f}   fresh {f_val:10.1f}")

    # The rank-group collapse must keep paying for itself at scale: the
    # speedup is a work-count ratio (collapsed runs execute ~1/ranks of
    # the ops), so unlike wall times it is host-noise-insensitive and can
    # be gated with a hard floor.
    scale_speedup = fresh.get("scale_speedup")
    if scale_speedup is not None and scale_speedup < 10.0:
        print(
            f"FAIL: scale_speedup {scale_speedup:.1f}x is below the 10x floor"
            " (rank-group collapsing is not engaging or has regressed)",
            file=sys.stderr,
        )
        return 1

    for role, path, report in (("baseline", args[0], base), ("fresh report", args[1], fresh)):
        if "pinned_cell_ms" not in report:
            print(
                f"FAIL: pinned_cell_ms missing from {role} ({path}) — the gated"
                " cell cannot be skipped; regenerate with:"
                " cargo run --release -p bench --bin hotpath",
                file=sys.stderr,
            )
            return 1
    b, f_ = base["pinned_cell_ms"], fresh["pinned_cell_ms"]
    if not b > 0.0:
        print(
            f"FAIL: baseline pinned_cell_ms is {b!r} (zero/negative/corrupt);"
            " regenerate the baseline with: cargo run --release -p bench --bin hotpath",
            file=sys.stderr,
        )
        return 1
    delta = (f_ - b) / b * 100.0
    print(f"{'pinned_cell_ms':>22}: baseline {b:10.2f}   fresh {f_:10.2f}   ({delta:+.1f}%)")
    if delta > tolerance:
        print(
            f"FAIL: pinned cell regressed {delta:.1f}% (> {tolerance:.0f}% tolerance)",
            file=sys.stderr,
        )
        return 1
    print(f"OK: pinned cell within {tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
