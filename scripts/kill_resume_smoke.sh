#!/usr/bin/env bash
# Kill-and-resume smoke test for the repro harness.
#
# Starts a checkpointed `repro` run, SIGKILLs it mid-campaign, resumes it
# from the same checkpoint directory, and diffs the resumed output against
# an uninterrupted clean run. The two must be byte-identical: checkpoints
# are digest-verified and only deterministic artifacts persist, so a kill
# at any point costs at most the cell in flight.
#
# Usage: scripts/kill_resume_smoke.sh [path-to-repro-binary]
set -euo pipefail

REPRO="${1:-target/release/repro}"
EXPERIMENTS=(table1 fig5 fig6 campaign)
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ioeval-kill-resume.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    echo "kill_resume_smoke: building repro ..." >&2
    cargo build --release -p bench --bin repro
fi

echo "== 1/3 clean reference run ==" >&2
"$REPRO" --scale quick --out "$WORK/clean.txt" "${EXPERIMENTS[@]}" >/dev/null

echo "== 2/3 checkpointed run, killed mid-campaign ==" >&2
"$REPRO" --scale quick --checkpoint "$WORK/ckpt" \
    --out "$WORK/interrupted.txt" "${EXPERIMENTS[@]}" >/dev/null 2>"$WORK/run1.log" &
PID=$!
# Give it long enough to start real work and persist some checkpoints,
# then kill it the hard way (no cleanup handlers run).
for _ in $(seq 1 100); do
    if compgen -G "$WORK/ckpt/*.json" >/dev/null; then
        break
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        break
    fi
    sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true
    echo "   killed pid $PID with $(ls "$WORK/ckpt" 2>/dev/null | wc -l) checkpoint files" >&2
else
    # The quick run can finish before the kill lands on fast machines;
    # the resume path below is still exercised (full replay from disk).
    wait "$PID" 2>/dev/null || true
    echo "   run finished before the kill; resume will replay from checkpoints" >&2
fi

echo "== 3/3 resume from checkpoint ==" >&2
"$REPRO" --scale quick --resume "$WORK/ckpt" \
    --out "$WORK/resumed.txt" "${EXPERIMENTS[@]}" >/dev/null

if ! diff -u "$WORK/clean.txt" "$WORK/resumed.txt" >"$WORK/diff.txt"; then
    echo "FAIL: resumed output differs from the uninterrupted run:" >&2
    head -50 "$WORK/diff.txt" >&2
    exit 1
fi
echo "OK: resumed output is byte-identical to the uninterrupted run" >&2
