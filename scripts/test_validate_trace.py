#!/usr/bin/env python3
"""Fixture tests for validate_trace.py (unittest, no dependencies).

Run: python3 scripts/test_validate_trace.py
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import validate_trace  # noqa: E402


def header(events):
    return {
        "kind": "header",
        "schema": validate_trace.SCHEMA,
        "cluster": "aohyper",
        "config": "JBOD",
        "app": "btio",
        "scenario": "full",
        "events": events,
        "dropped": 0,
    }


def evict(at_ns=5):
    return {"kind": "cache_evict", "bytes": 4096, "at_ns": at_ns}


def jsonl(objs):
    return "".join(json.dumps(o) + "\n" for o in objs)


class ValidateTraceTest(unittest.TestCase):
    def validate(self, content):
        with tempfile.NamedTemporaryFile(
            "w", suffix=".jsonl", delete=False, encoding="utf-8"
        ) as f:
            f.write(content)
            path = f.name
        try:
            return validate_trace.main(["validate_trace.py", path])
        finally:
            os.unlink(path)

    def test_valid_stream_passes(self):
        self.assertEqual(self.validate(jsonl([header(2), evict(1), evict(2)])), 0)

    def test_truncated_final_partial_line_fails(self):
        # The writer died mid-line: no trailing newline. The partial tail
        # here is even valid JSON — truncation must fail regardless.
        full = jsonl([header(2), evict(1), evict(2)])
        self.assertEqual(self.validate(full[:-1]), 1)

    def test_truncated_mid_json_fails(self):
        full = jsonl([header(2), evict(1), evict(2)])
        self.assertEqual(self.validate(full[: len(full) - 12]), 1)

    def test_short_run_fails(self):
        self.assertEqual(self.validate(jsonl([header(2), evict(1)])), 1)

    def test_extra_event_fails(self):
        self.assertEqual(
            self.validate(jsonl([header(1), evict(1), evict(2)])), 1
        )

    def test_empty_trace_fails(self):
        self.assertEqual(self.validate(""), 1)

    def test_negative_time_fails(self):
        bad = {"kind": "cache_evict", "bytes": 1, "at_ns": -1}
        self.assertEqual(self.validate(jsonl([header(1), bad])), 1)

    def test_event_before_header_fails(self):
        self.assertEqual(self.validate(jsonl([evict(1)])), 1)


if __name__ == "__main__":
    unittest.main()
