#!/usr/bin/env bash
# Scenario-grammar smoke test for the campaign what-if front-end.
#
# Drives the `scenario` experiment end to end at quick scale: the default
# grid (the worked example grammar, seed 42, 16 variants x 4 configs =
# 64 cells) must render byte-identically to the committed golden pin,
# a parallel (--jobs 4) run must match the sequential render byte for
# byte, a custom --grammar/--sample/--seed run must complete with its own
# grid key, and resuming a checkpointed grid must replay it exactly.
#
# Usage: scripts/scenario_smoke.sh [path-to-repro-binary]
set -euo pipefail

REPRO="${1:-target/release/repro}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ioeval-scenario-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    echo "scenario_smoke: building repro ..." >&2
    cargo build --release -p bench --bin repro
fi

echo "== 1/4 pinned 64-cell grid matches the committed golden render ==" >&2
"$REPRO" --scale quick --out "$WORK/grid.txt" scenario >/dev/null
# The experiment output is the golden body plus the repro banner line.
tail -n +3 "$WORK/grid.txt" >"$WORK/grid-body.txt"
if ! diff -u tests/golden/scenario_grid.txt "$WORK/grid-body.txt" >"$WORK/diff-golden.txt"; then
    echo "FAIL: sampled grid drifted from tests/golden/scenario_grid.txt" >&2
    echo "      (regenerate with IOEVAL_REGEN_GOLDEN=1 cargo test --test golden_scenario" >&2
    echo "       and review the diff like any other code change):" >&2
    head -50 "$WORK/diff-golden.txt" >&2
    exit 1
fi
grep -q "outcomes: 64 ok, 0 failed, 0 timed out, 0 skipped" "$WORK/grid.txt" || {
    echo "FAIL: pinned grid is not fully healthy" >&2
    exit 1
}
echo "   64-cell grid is byte-identical to the committed pin" >&2

echo "== 2/4 worker count does not change the render ==" >&2
"$REPRO" --scale quick --jobs 4 --out "$WORK/grid-j4.txt" scenario >/dev/null
if ! diff -u "$WORK/grid.txt" "$WORK/grid-j4.txt" >"$WORK/diff-jobs.txt"; then
    echo "FAIL: --jobs 4 rendered a different grid:" >&2
    head -50 "$WORK/diff-jobs.txt" >&2
    exit 1
fi
echo "   --jobs 4 render is byte-identical to --jobs 1" >&2

echo "== 3/4 custom grammar + seed sweeps its own grid ==" >&2
cat >"$WORK/custom.gram" <<'EOF'
scenario smoke
ranks 2
file f
phase p repeat 1..2 {
  write f block 64K..256K pow2 count 2
  barrier
  read f block 64K count 2
}
EOF
"$REPRO" --scale quick --grammar "$WORK/custom.gram" --sample 5 --seed 9 \
    --out "$WORK/custom.txt" scenario >/dev/null
grep -q "grammar 'smoke'" "$WORK/custom.txt" || {
    echo "FAIL: custom grammar not picked up" >&2
    exit 1
}
grep -q "5 variants x 4 configurations = 20 cells" "$WORK/custom.txt" || {
    echo "FAIL: custom sample count not honored" >&2
    exit 1
}
grep -q -- "-s9-n5" "$WORK/custom.txt" || {
    echo "FAIL: grid key does not carry the custom seed/sample" >&2
    exit 1
}
grep -q "outcomes: 20 ok, 0 failed, 0 timed out, 0 skipped" "$WORK/custom.txt" || {
    echo "FAIL: custom grid is not fully healthy" >&2
    exit 1
}
echo "   custom 20-cell grid completed healthy under its own key" >&2

echo "== 4/4 checkpointed grid resumes byte-identically ==" >&2
"$REPRO" --scale quick --checkpoint "$WORK/ckpt" --grammar "$WORK/custom.gram" \
    --sample 5 --seed 9 --out "$WORK/ckpt-1.txt" scenario >/dev/null
"$REPRO" --scale quick --resume "$WORK/ckpt" --grammar "$WORK/custom.gram" \
    --sample 5 --seed 9 --out "$WORK/ckpt-2.txt" scenario 2>"$WORK/resume.log" >/dev/null
if ! diff -u "$WORK/ckpt-1.txt" "$WORK/ckpt-2.txt" >"$WORK/diff-resume.txt"; then
    echo "FAIL: resumed grid rendered differently:" >&2
    head -50 "$WORK/diff-resume.txt" >&2
    exit 1
fi
grep -q "restored from checkpoint" "$WORK/resume.log" || {
    echo "FAIL: resume did not replay the checkpointed experiment" >&2
    exit 1
}
echo "   resume replayed the grid byte-identically" >&2

echo "scenario_smoke: all checks passed" >&2
