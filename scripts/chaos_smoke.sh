#!/usr/bin/env bash
# Chaos smoke test for the repro harness.
#
# Runs a checkpointed campaign under pinned seeded host-fault plans
# (failed/torn/ENOSPC checkpoint writes, serialization errors, worker
# panics), then resumes each wounded checkpoint directory chaos-free and
# diffs against an uninterrupted clean run. The resumed output must be
# byte-identical: every injected fault is healed (retried, quarantined,
# or recomputed), never absorbed into results. Also checks that
# --strict-store turns surviving store degradation into a non-zero exit.
#
# Usage: scripts/chaos_smoke.sh [path-to-repro-binary]
set -euo pipefail

REPRO="${1:-target/release/repro}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ioeval-chaos-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    echo "chaos_smoke: building repro ..." >&2
    cargo build --release -p bench --bin repro
fi

echo "== 1/3 clean reference run ==" >&2
"$REPRO" --scale quick --out "$WORK/clean.txt" campaign >/dev/null

echo "== 2/3 seeded chaos runs + chaos-free resumes ==" >&2
for seed in 1 2; do
    for profile in store mixed; do
        tag="$profile-$seed"
        "$REPRO" --scale quick --chaos-seed "$seed" --chaos-profile "$profile" \
            --checkpoint "$WORK/ckpt-$tag" --out "$WORK/wounded-$tag.txt" \
            campaign >/dev/null 2>"$WORK/chaos-$tag.log"
        grep -q "installing host-fault plan" "$WORK/chaos-$tag.log" || {
            echo "FAIL: chaos run $tag installed no plan" >&2
            exit 1
        }
        # Drop the whole-experiment artifact so the resume re-renders from
        # the cell-level checkpoints the wounded run left behind.
        rm -f "$WORK/ckpt-$tag"/exp-*.json
        "$REPRO" --scale quick --resume "$WORK/ckpt-$tag" \
            --out "$WORK/resumed-$tag.txt" campaign >/dev/null
        if ! diff -u "$WORK/clean.txt" "$WORK/resumed-$tag.txt" >"$WORK/diff-$tag.txt"; then
            echo "FAIL: resume after chaos ($tag) differs from the clean run:" >&2
            head -50 "$WORK/diff-$tag.txt" >&2
            exit 1
        fi
        echo "   $tag: resume byte-identical" >&2
    done
done

echo "== 3/3 --strict-store gates on surviving store faults ==" >&2
set +e
"$REPRO" --scale quick --chaos-repro 'ser@0' --strict-store \
    --checkpoint "$WORK/ckpt-strict" --out "$WORK/strict.txt" \
    campaign >/dev/null 2>"$WORK/strict.log"
rc=$?
set -e
if [[ "$rc" -ne 3 ]]; then
    echo "FAIL: expected exit 3 from --strict-store, got $rc" >&2
    tail -20 "$WORK/strict.log" >&2
    exit 1
fi
grep -q "store health" "$WORK/strict.log" || {
    echo "FAIL: strict run reported no store health summary" >&2
    exit 1
}
echo "OK: chaos runs heal, resumes are byte-identical, --strict-store gates" >&2
