#!/usr/bin/env bash
# Resilience smoke test for the PFS failover path.
#
# Drives the `resilience` experiment end to end under its pinned seeds
# (all RPC jitter is drawn from fixed per-subsystem seeds, so every run
# is deterministic): the degraded PFS campaign must complete without
# I/O errors, its render must differ from the nominal RAID-only render,
# two identical invocations must render byte-identically, and resuming
# a checkpoint taken mid-campaign must reproduce the uninterrupted
# output byte for byte.
#
# Usage: scripts/resilience_smoke.sh [path-to-repro-binary]
set -euo pipefail

REPRO="${1:-target/release/repro}"
WORK="$(mktemp -d "${TMPDIR:-/tmp}/ioeval-resilience-smoke.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$REPRO" ]]; then
    echo "resilience_smoke: building repro ..." >&2
    cargo build --release -p bench --bin repro
fi

echo "== 1/4 nominal (RAID-only) vs full PFS fault profile ==" >&2
"$REPRO" --scale quick --pfs-profile none --out "$WORK/nominal.txt" resilience >/dev/null
"$REPRO" --scale quick --pfs-profile full --out "$WORK/full.txt" resilience >/dev/null

grep -q "pfs-degraded" "$WORK/nominal.txt" && {
    echo "FAIL: --pfs-profile none still renders PFS rows" >&2
    exit 1
}
for needle in "PFS resilience" "pfs-degraded" "pfs-recovered"; do
    grep -q "$needle" "$WORK/full.txt" || {
        echo "FAIL: full profile render lacks '$needle'" >&2
        exit 1
    }
done
if cmp -s "$WORK/nominal.txt" "$WORK/full.txt"; then
    echo "FAIL: nominal and degraded renders are identical" >&2
    exit 1
fi
echo "   nominal render is RAID-only, full render adds the PFS rows" >&2

echo "== 2/4 degraded campaign completes cleanly ==" >&2
# The PFS rows must report zero I/O errors (replicas absorb the outage),
# nonzero detection retries, and a nonzero resync on the recovered row.
awk '/^pfs-degraded/ { if ($7 != 0) exit 1 }' "$WORK/full.txt" || {
    echo "FAIL: degraded run surfaced I/O errors" >&2
    exit 1
}
awk '/^pfs-degraded/ { if ($8 == 0) exit 1 }' "$WORK/full.txt" || {
    echo "FAIL: degraded run burned no detection retries" >&2
    exit 1
}
awk '/^pfs-recovered/ { if ($10 == "-") exit 1 }' "$WORK/full.txt" || {
    echo "FAIL: recovered run resynced no bytes" >&2
    exit 1
}
echo "   degraded rows: 0 io_errors, retries burned, resync recorded" >&2

echo "== 3/4 pinned seeds: identical reruns render byte-identically ==" >&2
"$REPRO" --scale quick --pfs-profile full --out "$WORK/full2.txt" resilience >/dev/null
if ! diff -u "$WORK/full.txt" "$WORK/full2.txt" >"$WORK/diff-rerun.txt"; then
    echo "FAIL: two identical invocations rendered differently:" >&2
    head -50 "$WORK/diff-rerun.txt" >&2
    exit 1
fi
echo "   rerun byte-identical" >&2

echo "== 4/4 mid-campaign checkpoint resume is byte-identical ==" >&2
"$REPRO" --scale quick --pfs-profile full --checkpoint "$WORK/ckpt" \
    --out "$WORK/ckpt-run.txt" resilience >/dev/null
# Drop the whole-experiment artifact so the resume re-renders the
# campaign from the characterization checkpoints left behind — the
# mid-failover state a killed run would resume from.
rm -f "$WORK/ckpt"/exp-*.json
"$REPRO" --scale quick --pfs-profile full --resume "$WORK/ckpt" \
    --out "$WORK/resumed.txt" resilience >/dev/null
if ! diff -u "$WORK/full.txt" "$WORK/resumed.txt" >"$WORK/diff-resume.txt"; then
    echo "FAIL: checkpoint resume differs from the uninterrupted run:" >&2
    head -50 "$WORK/diff-resume.txt" >&2
    exit 1
fi
echo "   resume byte-identical" >&2

echo "OK: degraded PFS campaigns complete, diverge from nominal, and resume byte-identically" >&2
