#!/usr/bin/env python3
"""Validate a repro --trace-out JSONL stream against the v1 trace schema.

Usage: validate_trace.py TRACE.jsonl

The stream is a concatenation of runs; each run is a header line followed
by its event lines. Every line must be a single JSON object with a "kind"
field; this script checks required fields and types per kind, that all
times are non-negative integer nanoseconds with start <= end, and that
each header's declared event count matches the lines that follow it.

Exit codes: 0 valid, 1 invalid, 2 usage error.
"""

import json
import sys

SCHEMA = 1

# kind -> {field: type-or-tuple}. bool is checked before int (bool is a
# subclass of int in Python).
EVENT_FIELDS = {
    "mpi_op": {
        "rank": int,
        "label": str,
        "start_ns": int,
        "end_ns": int,
        "bytes": int,
        "io": bool,
    },
    "net_send": {
        "from": int,
        "to": int,
        "bytes": int,
        "start_ns": int,
        "end_ns": int,
    },
    "nfs_retry": {"op": str, "at_ns": int, "attempt": int},
    "cache_access": {"hit_bytes": int, "miss_bytes": int, "at_ns": int},
    "cache_evict": {"bytes": int, "at_ns": int},
    "writeback": {"bytes": int, "start_ns": int, "end_ns": int},
    "storage_run": {
        "volume": str,
        "write": bool,
        "bytes": int,
        "ops": int,
        "start_ns": int,
        "end_ns": int,
        "bulk": bool,
    },
    "storage_io": {
        "volume": str,
        "write": bool,
        "bytes": int,
        "start_ns": int,
        "end_ns": int,
    },
    "fault_applied": {"fault": str, "at_ns": int},
}

HEADER_FIELDS = {
    "schema": int,
    "cluster": str,
    "config": str,
    "app": str,
    "scenario": str,
    "events": int,
    "dropped": int,
}


def fail(lineno, msg):
    print(f"FAIL: line {lineno}: {msg}", file=sys.stderr)
    return 1


def check_fields(obj, fields, lineno):
    for name, ty in fields.items():
        if name not in obj:
            return fail(lineno, f"{obj.get('kind')}: missing field {name!r}")
        v = obj[name]
        if ty is int:
            if isinstance(v, bool) or not isinstance(v, int):
                return fail(lineno, f"{obj.get('kind')}.{name}: expected integer, got {v!r}")
            if v < 0:
                return fail(lineno, f"{obj.get('kind')}.{name}: negative value {v}")
        elif not isinstance(v, ty):
            return fail(lineno, f"{obj.get('kind')}.{name}: expected {ty.__name__}, got {v!r}")
    if "start_ns" in fields and obj["start_ns"] > obj["end_ns"]:
        return fail(lineno, f"{obj.get('kind')}: start_ns > end_ns")
    return 0


def main(argv):
    if len(argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    path = argv[1]
    try:
        with open(path, encoding="utf-8") as f:
            content = f.read()
    except OSError as e:
        print(f"FAIL: cannot read {path}: {e}", file=sys.stderr)
        return 1

    # A complete JSONL stream ends every line — including the last — with
    # a newline. A missing final newline means the writer died mid-line
    # (torn write / full disk); the partial tail may even still parse as
    # JSON, so catch the truncation itself, not just its symptoms.
    if content and not content.endswith("\n"):
        print(
            "FAIL: truncated final line (stream does not end with a newline)",
            file=sys.stderr,
        )
        return 1
    lines = content.splitlines()

    runs = 0
    events = 0
    expected_remaining = None  # events still owed to the current header
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            return fail(lineno, "blank line in trace stream")
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as e:
            return fail(lineno, f"invalid JSON: {e}")
        if not isinstance(obj, dict) or "kind" not in obj:
            return fail(lineno, "not an object with a 'kind' field")
        kind = obj["kind"]
        if kind == "header":
            if expected_remaining not in (None, 0):
                return fail(
                    lineno,
                    f"previous run is short {expected_remaining} events",
                )
            if check_fields(obj, HEADER_FIELDS, lineno):
                return 1
            if obj["schema"] != SCHEMA:
                return fail(lineno, f"schema {obj['schema']}, expected {SCHEMA}")
            expected_remaining = obj["events"]
            runs += 1
        else:
            if expected_remaining is None:
                return fail(lineno, "event line before any header")
            if expected_remaining == 0:
                return fail(lineno, "more event lines than the header declared")
            if kind not in EVENT_FIELDS:
                return fail(lineno, f"unknown event kind {kind!r}")
            if check_fields(obj, EVENT_FIELDS[kind], lineno):
                return 1
            expected_remaining -= 1
            events += 1

    if runs == 0:
        print("FAIL: no header line (empty trace?)", file=sys.stderr)
        return 1
    if expected_remaining not in (None, 0):
        print(
            f"FAIL: last run is short {expected_remaining} events",
            file=sys.stderr,
        )
        return 1
    print(f"OK: {runs} runs, {events} events, schema {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
