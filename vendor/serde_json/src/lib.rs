//! Offline vendored mini serde_json.
//!
//! JSON text layer over the vendored mini-serde's [`Value`] data model:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and a simplified
//! [`json!`] macro. Output is deterministic: struct fields keep declaration
//! order, `HashMap`s serialize sorted, floats print shortest-roundtrip.

pub use serde::{Map, Number, Value};
use std::fmt;

/// Error from parsing or (de)serializing JSON.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    fn at(msg: impl Into<String>, pos: usize, src: &str) -> Error {
        let consumed = &src[..pos.min(src.len())];
        let line = consumed.bytes().filter(|&b| b == b'\n').count() + 1;
        let column = consumed
            .rsplit('\n')
            .next()
            .map(|l| l.chars().count() + 1)
            .unwrap_or(1);
        Error {
            msg: msg.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Serializes any [`serde::Serialize`] value to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes any [`serde::Serialize`] value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any [`serde::Serialize`] value into a [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any [`serde::Deserialize`] type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from JSON-like syntax. Supports `null`, literals,
/// expressions, flat arrays, and objects with literal keys (the shapes
/// this workspace uses).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::__to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key, $crate::__to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

// ---- parser ----

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::at(msg, self.pos, self.src)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.src[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.src[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .src
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own output;
                            // map lone surrogates to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.src[start..self.pos];
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != s.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "x",
            "n": 3,
            "f": 4.0,
            "arr": [1, 2, 3],
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"name":"x","n":3,"f":4.0,"arr":[1,2,3]}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({ "a": [1] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_floats() {
        let v: Value = from_str(r#"{"s":"a\nb","f":-2.5e3}"#).unwrap();
        assert_eq!(v["s"], "a\nb");
        assert_eq!(v["f"], -2500.0);
    }

    #[test]
    fn error_carries_position() {
        let e = from_str::<Value>("{\"a\": }").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
