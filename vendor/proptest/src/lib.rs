//! Offline vendored mini-proptest.
//!
//! API-compatible subset of `proptest` sufficient for this workspace:
//! the `proptest!` macro, range/tuple/`Just`/`any` strategies, `prop_map`,
//! `prop_oneof!`, `collection::vec`/`btree_set`, `prop_assert*`, and
//! `prop_assume!`. Differences from the real crate:
//!
//! - no shrinking — a failing case reports its inputs but is not minimized;
//! - case generation is fully deterministic, seeded from the test's module
//!   path and name, so failures reproduce exactly across runs;
//! - rejected cases (`prop_assume!`) consume a case slot, so tests always
//!   terminate.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.next_below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.next_below(span) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.next_below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
                }
            }
        )*};
    }

    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for ::std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric values spanning many magnitudes.
            let mag = (rng.next_u64() % 600) as i32 - 300;
            let unit = rng.next_u64() as f64 / (u64::MAX as f64 + 1.0);
            (unit * 2.0 - 1.0) * 10f64.powi(mag / 10)
        }
    }

    /// The `any::<T>()` strategy.
    pub struct Any<T>(::std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy for any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A size specification for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.next_below((self.max - self.min) as u64) as usize
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with sizes drawn from `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::btree_set`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts keep generation total even for narrow domains.
            for _ in 0..n.saturating_mul(10).max(16) {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod test_runner {
    /// Deterministic RNG driving case generation (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded with `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)` (`bound` > 0) via rejection
        /// sampling, so the distribution is exactly uniform.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "next_below(0)");
            let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Per-test configuration.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed with this message.
        Fail(String),
        /// `prop_assume!` rejected the inputs.
        Reject,
    }

    /// Deterministic per-case RNG derived from the test identity (FNV-1a
    /// over the name, mixed with the case index).
    pub fn case_rng(test_name: &str, case: u64) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions. Each `fn name(pat in strategy, ...)`
/// becomes a `#[test]`-annotated (by the caller) function running
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut __rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name),
                            case,
                            msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition, failing the current case (no process abort).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality, failing the current case with both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality, failing the current case with the value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both {:?}: {}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn determinism_same_name_same_sequence() {
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u64..10).prop_map(|v| v * 2),
            Just(1u64),
        ];
        let mut rng = crate::test_runner::case_rng("oneof", 0);
        for _ in 0..64 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || (v % 2 == 0 && v < 20));
        }
    }
}
