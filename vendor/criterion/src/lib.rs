//! Offline vendored mini-criterion.
//!
//! Provides the subset of the `criterion` API this workspace's benches use
//! (`Criterion`, `benchmark_group`, `bench_function`, `Throughput`,
//! `black_box`, `criterion_group!`, `criterion_main!`) with a simple
//! wall-clock measurement loop: warm up briefly, then time batches until a
//! fixed measurement budget elapses and report ns/iter plus derived
//! throughput. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement: Duration::from_millis(200),
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates from iteration times.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the mini harness keys measurement
    /// on wall-clock budget rather than sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shortens or lengthens the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            measurement: self.measurement,
            ns_per_iter: 0.0,
        };
        f(&mut bencher);
        let ns = bencher.ns_per_iter;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(", {:.1} Melem/s", n as f64 * 1e3 / ns.max(f64::MIN_POSITIVE))
            }
            Throughput::Bytes(n) => {
                format!(", {:.1} MiB/s", n as f64 * 1e9 / ns.max(f64::MIN_POSITIVE) / (1 << 20) as f64)
            }
        });
        println!(
            "{}/{id}: {ns:.1} ns/iter{}",
            self.name,
            rate.unwrap_or_default()
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Runs the timed closure.
pub struct Bencher {
    measurement: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the mean ns/iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run for ~10% of the budget to fault in caches.
        let warmup_end = Instant::now() + self.measurement / 10;
        while Instant::now() < warmup_end {
            black_box(f());
        }
        let mut iters: u64 = 0;
        let start = Instant::now();
        let deadline = start + self.measurement;
        loop {
            for _ in 0..64 {
                black_box(f());
            }
            iters += 64;
            if Instant::now() >= deadline {
                break;
            }
        }
        let elapsed = start.elapsed();
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.throughput(Throughput::Elements(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }
}
