//! `#[derive(Serialize, Deserialize)]` for the offline vendored mini-serde.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! actually derives on:
//!
//! - structs with named fields → JSON objects in declaration order;
//! - tuple structs with one field (newtypes) → the inner value;
//! - enums with unit, named-field, and tuple variants → serde's default
//!   externally-tagged representation.
//!
//! Generics, `#[serde(...)]` attributes, and multi-field tuple structs are
//! not supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    NamedStruct(Vec<Field>),
    NewtypeStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skips attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`) at the cursor.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then `[...]`.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parses `name: Type` fields inside a brace group, returning the names.
/// Type tokens are skipped tracking `<`/`>` depth so commas inside generic
/// arguments don't split fields.
fn parse_named_fields(group: &proc_macro::Group) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, found {other}")),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field name, found {other}")),
        }
        // Skip the type up to a top-level comma.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name });
    }
    Ok(fields)
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut count = 0usize;
    let mut angle = 0i32;
    let mut saw_any = false;
    for t in group.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => count += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(group: &proc_macro::Group) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, found {other}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g)?;
                i += 1;
                VariantKind::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g);
                i += 1;
                VariantKind::Tuple(n)
            }
            _ => VariantKind::Unit,
        };
        // Skip to the separating comma (covers `= discriminant`).
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

fn parse_input(input: TokenStream) -> Result<(String, Shape), String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "mini-serde derive does not support generic type {name}"
            ));
        }
    }
    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::NamedStruct(parse_named_fields(g)?)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            match count_tuple_fields(g) {
                1 => Ok((name, Shape::NewtypeStruct)),
                n => Err(format!(
                    "mini-serde derive supports only 1-field tuple structs, {name} has {n}"
                )),
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::Enum(parse_variants(g)?)))
        }
        _ => Err(format!("unsupported shape for {name}")),
    }
}

/// Derives `serde::Serialize` (mini-serde `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(v) => v,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert({n:?}, ::serde::Serialize::to_value(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Shape::NewtypeStruct => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => s.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        let pats: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        s.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => {{\n",
                            v = v.name,
                            pat = pats.join(", ")
                        ));
                        s.push_str("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            s.push_str(&format!(
                                "inner.insert({n:?}, ::serde::Serialize::to_value({n}));\n",
                                n = f.name
                            ));
                        }
                        s.push_str(&format!(
                            "let mut outer = ::serde::Map::new();\nouter.insert({v:?}, \
                             ::serde::Value::Object(inner));\n::serde::Value::Object(outer)\n}}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Tuple(1) => s.push_str(&format!(
                        "{name}::{v}(x0) => {{\nlet mut outer = ::serde::Map::new();\n\
                         outer.insert({v:?}, ::serde::Serialize::to_value(x0));\n\
                         ::serde::Value::Object(outer)\n}}\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        s.push_str(&format!(
                            "{name}::{v}({binds}) => {{\nlet mut outer = ::serde::Map::new();\n\
                             outer.insert({v:?}, ::serde::Value::Array(vec![{vals}]));\n\
                             ::serde::Value::Object(outer)\n}}\n",
                            v = v.name,
                            binds = binds.join(", "),
                            vals = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (mini-serde `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = match parse_input(input) {
        Ok(v) => v,
        Err(e) => return compile_error(&e),
    };
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected object for \", stringify!(",
            );
            s.push_str(&name);
            s.push_str("))))?;\nOk(Self {\n");
            for f in fields {
                s.push_str(&format!(
                    "{n}: ::serde::Deserialize::from_value(\
                     obj.get({n:?}).unwrap_or(&::serde::Value::Null))?,\n",
                    n = f.name
                ));
            }
            s.push_str("})");
            s
        }
        Shape::NewtypeStruct => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
        Shape::Enum(variants) => {
            let mut units = String::new();
            let mut tagged = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => units.push_str(&format!(
                        "{v:?} => Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Named(fields) => {
                        tagged.push_str(&format!(
                            "{v:?} => {{\nlet o = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected variant object\"))?;\n\
                             Ok({name}::{v} {{\n",
                            v = v.name
                        ));
                        for f in fields {
                            tagged.push_str(&format!(
                                "{n}: ::serde::Deserialize::from_value(\
                                 o.get({n:?}).unwrap_or(&::serde::Value::Null))?,\n",
                                n = f.name
                            ));
                        }
                        tagged.push_str("})\n}\n");
                    }
                    VariantKind::Tuple(1) => tagged.push_str(&format!(
                        "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_value(\
                                     a.get({i}).unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect();
                        tagged.push_str(&format!(
                            "{v:?} => {{\nlet a = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::custom(\"expected variant array\"))?;\n\
                             Ok({name}::{v}({gets}))\n}}\n",
                            v = v.name,
                            gets = gets.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{units}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{other}} for {name}\"))),\n}},\n\
                 ::serde::Value::Object(m) if m.len() == 1 => {{\n\
                 let (tag, inner) = m.iter().next().unwrap();\n\
                 match tag.as_str() {{\n{tagged}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{other}} for {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::DeError::custom(concat!(\
                 \"expected variant of \", stringify!({name})))),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
         {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}
