//! Offline vendored mini-serde.
//!
//! The build container has no access to crates.io, so this crate provides a
//! small, self-contained replacement for the subset of `serde` this workspace
//! uses: `#[derive(Serialize, Deserialize)]` on plain structs/enums, driven
//! through a JSON-like [`Value`] data model (the heavy lifting normally done
//! by serde's `Serializer`/`Deserializer` traits is collapsed into direct
//! `Value` conversion, which is all `serde_json` needs).
//!
//! Fidelity notes versus real serde:
//! - structs serialize to objects with fields in declaration order;
//! - unit enum variants serialize as strings, data variants as
//!   externally-tagged single-key objects (serde's default representation);
//! - maps serialize with stringified keys, sorted for `HashMap` so output is
//!   deterministic;
//! - non-finite floats serialize as `null` (as serde_json's `Value::from`).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON number: integer or float.
#[derive(Clone, Copy, Debug)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Floating point.
    Float(f64),
}

impl Number {
    /// The value as `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            // `{:?}` on f64 is shortest-roundtrip and keeps a trailing `.0`
            // on integral values, matching serde_json's ryu output.
            Number::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// Insertion-ordered string-keyed map (the object representation).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Inserts a key, replacing any previous value under it.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `&str` view of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `u64` view of a non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `i64` view of an integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `f64` view of any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// `bool` view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object view.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Member access that returns `Null` for missing keys / wrong types,
    /// like `serde_json`'s `Index`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_i64() == Some(i64::from(*other))
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<i64> for Value {
    fn eq(&self, other: &i64) -> bool {
        self.as_i64() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError { msg: msg.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// The value representation of `self`.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls ----

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom("integer out of range")),
                    // Map keys arrive as strings; accept parseable strings.
                    Value::String(s) => s
                        .parse::<$t>()
                        .map_err(|_| DeError::custom("bad integer string")),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| DeError::custom("integer out of range")),
                    Value::String(s) => s
                        .parse::<$t>()
                        .map_err(|_| DeError::custom("bad integer string")),
                    _ => Err(DeError::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let f = *self as f64;
                if f.is_finite() {
                    Value::Number(Number::Float(f))
                } else {
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| DeError::custom("expected float"))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                Ok(($($t::from_value(a.get($n).unwrap_or(&Value::Null))?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::String(s) => s.clone(),
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("map key does not serialize to a string: {other:?}"),
    }
}

fn map_to_value<'a, K, V, I>(entries: I, sort: bool) -> Value
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: Iterator<Item = (&'a K, &'a V)>,
{
    let mut pairs: Vec<(String, Value)> = entries
        .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
        .collect();
    if sort {
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
    }
    let mut m = Map::new();
    for (k, v) in pairs {
        m.insert(k, v);
    }
    Value::Object(m)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter(), false)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, val) in obj.iter() {
            let key = K::from_value(&Value::String(k.clone()))?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sorted so serialized output is deterministic across runs.
        map_to_value(self.iter(), true)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        let mut out = HashMap::with_capacity_and_hasher(obj.len(), S::default());
        for (k, val) in obj.iter() {
            let key = K::from_value(&Value::String(k.clone()))?;
            out.insert(key, V::from_value(val)?);
        }
        Ok(out)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut vals: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        vals.sort_by_key(|v| format!("{v:?}"));
        Value::Array(vals)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        m.insert("a", Value::Bool(true));
        m.insert("a", Value::Bool(false));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a"), Some(&Value::Bool(false)));
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(7u64).to_value();
        assert_eq!(Option::<u64>::from_value(&some).unwrap(), Some(7));
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn btreemap_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3u64, "x".to_string());
        let v = m.to_value();
        assert_eq!(v["3"], "x");
        let back = BTreeMap::<u64, String>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
