//! Golden regression suite for the metadata level: mdtest evaluations and
//! the IO500-style composite score.
//!
//! The data-path goldens (`golden_tables.rs`) pin the characterized
//! transfer rates; these pin the *metadata* path end to end — operation
//! counts, simulated execution time and the derived ops/s of the mdtest
//! workloads on the single-server NFS backend and the 4-server PVFS
//! deployment — plus the composite IO500 scoring (geometric means of the
//! ior and mdtest phases and their square-rooted product), so a change
//! anywhere in the namespace model (attr caches, shard hashing, directory
//! locks, replica routing) shows up as a readable diff.
//!
//! To regenerate after an *intended* model change:
//!
//! ```text
//! IOEVAL_REGEN_GOLDEN=1 cargo test --test golden_io500
//! ```

use cluster::{presets, DeviceLayout, IoConfig, IoConfigBuilder, Mount};
use ioeval_core::charact::{characterize_system, CharacterizeOptions};
use ioeval_core::eval::{evaluate, EvalOptions, EvalReport};
use ioeval_core::perf_table::PerfTableSet;
use std::fmt::Write as _;
use std::path::PathBuf;
use workloads::{Ior, IorOp, Mdtest, Scenario};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("IOEVAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with IOEVAL_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "`{name}` drifted from {}.\n\
         If the model change is intended, regenerate with IOEVAL_REGEN_GOLDEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

/// The two storage backends under test: the single NFS I/O node and the
/// 4-server PVFS deployment, both over the paper's RAID 5 arrays.
fn backends() -> [(IoConfig, Mount); 2] {
    [
        (
            IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
            Mount::NfsDirect,
        ),
        (
            IoConfigBuilder::new(DeviceLayout::raid5_paper())
                .pfs(4)
                .name("raid5-pfs4")
                .build(),
            Mount::Pfs,
        ),
    ]
}

fn tables_for(config: &IoConfig) -> PerfTableSet {
    characterize_system(
        &presets::test_cluster(),
        config,
        &CharacterizeOptions::quick(),
    )
    .unwrap_or_else(|e| panic!("characterization of {} failed: {e}", config.name))
}

fn run(config: &IoConfig, tables: &PerfTableSet, scenario: Scenario) -> EvalReport {
    evaluate(
        &presets::test_cluster(),
        config,
        scenario,
        tables,
        &EvalOptions::default(),
    )
    .unwrap_or_else(|e| panic!("evaluation on {} failed: {e}", config.name))
}

const RANKS: usize = 4;
const FILES_PER_RANK: usize = 20;

/// One snapshot line per (backend × variant) mdtest cell: operation
/// counts, simulated time and the derived rate, pinned exactly.
#[test]
fn golden_mdtest_evaluations() {
    let mut out = String::from("# mdtest golden: app | config | meta_ops | exec_time | ops/s\n");
    for (config, mount) in backends() {
        let tables = tables_for(&config);
        for md in [
            Mdtest::easy(RANKS, FILES_PER_RANK).on(mount),
            Mdtest::hard(RANKS, FILES_PER_RANK).on(mount),
        ] {
            let rep = run(&config, &tables, md.scenario());
            assert_eq!(
                rep.meta_ops,
                md.total_ops(),
                "every issued metadata op must be accounted"
            );
            let _ = writeln!(
                out,
                "{} | {} | {} | {} | {:.1}",
                rep.app,
                config.name,
                rep.meta_ops,
                rep.exec_time,
                rep.meta_ops_per_sec()
            );
        }
    }
    assert_matches_golden("mdtest", &out);
}

fn geomean(vals: &[f64]) -> f64 {
    assert!(!vals.is_empty() && vals.iter().all(|v| *v > 0.0));
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// The IO500 composite scoring on both backends: four ior phases (easy =
/// 256 KiB transfers, hard = the IO500's odd 47008-byte transfers), two
/// mdtest phases, geometric means and the final sqrt(bw x md) score.
#[test]
fn golden_io500_composite() {
    use simcore::MIB;
    let mut out = String::from("# io500 golden: phase scores and composite per backend\n");
    for (config, mount) in backends() {
        let tables = tables_for(&config);
        let mut ior_hard_w = Ior::new(RANKS, fs::FileId(700), MIB, IorOp::Write).on(mount);
        ior_hard_w.transfer = 47_008;
        let mut ior_hard_r = Ior::new(RANKS, fs::FileId(700), MIB, IorOp::Read).on(mount);
        ior_hard_r.transfer = 47_008;
        let phases: Vec<(&str, Scenario)> = vec![
            (
                "ior-easy-write",
                Ior::new(RANKS, fs::FileId(701), 4 * MIB, IorOp::Write)
                    .on(mount)
                    .scenario(),
            ),
            (
                "ior-easy-read",
                Ior::new(RANKS, fs::FileId(701), 4 * MIB, IorOp::Read)
                    .on(mount)
                    .scenario(),
            ),
            ("ior-hard-write", ior_hard_w.scenario()),
            ("ior-hard-read", ior_hard_r.scenario()),
            (
                "mdtest-easy",
                Mdtest::easy(RANKS, FILES_PER_RANK).on(mount).scenario(),
            ),
            (
                "mdtest-hard",
                Mdtest::hard(RANKS, FILES_PER_RANK).on(mount).scenario(),
            ),
        ];
        let mut bw = Vec::new();
        let mut md = Vec::new();
        let _ = writeln!(out, "[backend: {}]", config.name);
        for (phase, scenario) in phases {
            let rep = run(&config, &tables, scenario);
            if phase.starts_with("ior") {
                let rate = rep.write_rate.max(rep.read_rate).as_mib_per_sec();
                bw.push(rate);
                let _ = writeln!(out, "{phase} | {rate:.1} MiB/s");
            } else {
                let kiops = rep.meta_ops_per_sec() / 1000.0;
                md.push(kiops);
                let _ = writeln!(out, "{phase} | {kiops:.3} kIOPS");
            }
        }
        let (b, m) = (geomean(&bw), geomean(&md));
        let _ = writeln!(
            out,
            "bandwidth {b:.1} MiB/s | metadata {m:.3} kIOPS | score {:.3}",
            (b * m).sqrt()
        );
    }
    assert_matches_golden("io500", &out);
}
