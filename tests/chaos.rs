//! End-to-end chaos harness for the campaign runtime.
//!
//! The recovery invariant under test: a campaign that suffered *any*
//! injected host fault — failed/torn/ENOSPC checkpoint writes, store
//! serialization errors, worker panics at cell boundaries, memo-cache
//! corruption — completes, and a chaos-free resume over the same
//! checkpoint directory renders **byte-identically** to an uninterrupted
//! run. The sweep below proves it for 28 distinct seeded fault schedules;
//! the shrinker test proves a failing schedule bisects to a 1-minimal
//! replayable `--chaos-repro` token.
//!
//! Chaos plans are process-global, so every test that installs one
//! serializes on [`CHAOS_LOCK`].

use bench::checkpoint::CampaignStore;
use cluster::{config as ioconfig, presets};
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::CharacterizeOptions;
use ioeval_core::memo::CharactMemo;
use simcore::chaos::{self, ChaosAction, ChaosProfile, ChaosSite, HostFaultPlan, Injection};
use simcore::{KIB, MIB};
use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use workloads::{BtClass, BtIo, BtSubtype};

/// Chaos state is process-global; tests that install plans must not
/// overlap. `into_inner` on poison: a failed assertion elsewhere must not
/// cascade into every remaining chaos test.
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn chaos_lock() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ioeval-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn charact_opts() -> CharacterizeOptions {
    let mut o = CharacterizeOptions::quick();
    o.records = vec![64 * KIB, MIB];
    o.iozone_file_size = Some(64 * MIB);
    o.ior_blocks = vec![MIB];
    o.ior_ranks = 2;
    o
}

/// One pinned small campaign (aohyper, 3 configs, one BT-IO app),
/// rendered. The memo, when given, replays characterizations in-process.
fn run(
    store: &mut (dyn ioeval_core::campaign::CellStore + Send),
    memo: Option<Arc<CharactMemo>>,
) -> String {
    let spec = presets::aohyper();
    let configs = ioconfig::aohyper_configs();
    let bt = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    };
    let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
    let opts = SuperviseOptions {
        memo,
        ..SuperviseOptions::default()
    };
    run_campaign_supervised(&spec, &configs, &apps, &charact_opts(), &opts, store).render()
}

#[test]
fn resume_after_any_injected_fault_is_byte_identical() {
    let _l = chaos_lock();
    let reference = run(&mut NoStore, None);

    // 28 distinct seeded schedules across the profiles whose sites a plain
    // supervised campaign hits (memo-load injection needs a warm memo and
    // has its own test below; trace export is a CLI-side site).
    let sweep: &[(&str, u64)] = &[("store", 10), ("panic", 8), ("mixed", 10)];
    let mut schedules = 0usize;
    let mut fired_total = 0usize;
    for &(profile_name, seeds) in sweep {
        let profile = ChaosProfile::named(profile_name).expect("known profile");
        for seed in 0..seeds {
            let plan = HostFaultPlan::random(seed, &profile);
            assert!(
                !plan.is_empty(),
                "profile {profile_name} drew an empty plan"
            );
            schedules += 1;
            let dir = scratch(&format!("sweep-{profile_name}-{seed}"));

            // The wounded run: injected faults, must still complete.
            let mut store = CampaignStore::open(&dir).unwrap();
            let guard = chaos::install(plan.clone());
            let wounded = run(&mut store, None);
            fired_total += guard.fired().len();
            drop(guard);

            // Self-healing: results are unharmed — at most a store-health
            // footer is appended to the uninterrupted rendering.
            assert!(
                wounded.starts_with(&reference),
                "profile {profile_name} seed {seed} (plan {}): faults must not \
                 alter campaign results",
                plan.token()
            );

            // The recovery invariant: a chaos-free resume over whatever the
            // wounded run left on disk is byte-identical to an
            // uninterrupted run.
            let mut store = CampaignStore::open(&dir).unwrap();
            let resumed = run(&mut store, None);
            assert_eq!(
                resumed,
                reference,
                "profile {profile_name} seed {seed} (plan {}): resume must be \
                 byte-identical",
                plan.token()
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
    assert!(schedules >= 25, "only {schedules} schedules swept");
    assert!(
        fired_total >= schedules,
        "sweep too tame: {fired_total} injections fired over {schedules} schedules"
    );
}

#[test]
fn memo_corruption_is_quarantined_and_recomputed() {
    let _l = chaos_lock();
    let reference = run(&mut NoStore, None);

    // Warm the memo, then replay the campaign from it under injected
    // memo-load corruption: every poisoned entry must be quarantined and
    // recomputed, never served, and the rendering must not change.
    let memo = Arc::new(CharactMemo::new());
    let warm = run(&mut NoStore, Some(Arc::clone(&memo)));
    assert_eq!(warm, reference);

    let plan = HostFaultPlan::from_injections(vec![
        Injection {
            site: ChaosSite::MemoLoad,
            nth: 0,
            action: ChaosAction::Fail,
        },
        Injection {
            site: ChaosSite::MemoLoad,
            nth: 2,
            action: ChaosAction::Fail,
        },
    ]);
    let guard = chaos::install(plan);
    let replayed = run(&mut NoStore, Some(Arc::clone(&memo)));
    let fired = guard.fired().len();
    drop(guard);
    assert_eq!(
        replayed, reference,
        "memo corruption must not leak into results"
    );
    assert_eq!(fired, 2, "both corruptions must have fired");
    assert_eq!(memo.quarantined(), 2, "corrupt entries are quarantined");
}

#[test]
fn store_faults_surface_in_the_campaign_health_footer() {
    let _l = chaos_lock();
    let reference = run(&mut NoStore, None);
    let dir = scratch("health-footer");
    let mut store = CampaignStore::open(&dir).unwrap();
    let guard = chaos::install(HostFaultPlan::single(
        ChaosSite::StoreSerialize,
        0,
        ChaosAction::Fail,
    ));
    let wounded = run(&mut store, None);
    drop(guard);
    assert!(wounded.starts_with(&reference));
    assert!(
        wounded.contains("-- store health: 1 serialize error --"),
        "the typed counter must be surfaced:\n{}",
        &wounded[reference.len()..]
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn shrinker_bisects_a_failing_schedule_to_a_replayable_minimal_repro() {
    let _l = chaos_lock();

    // The failure being hunted: a checkpoint key degrades to memory, which
    // takes all three write attempts of one save failing — exactly the
    // injections ckpt@0, ckpt@1, ckpt@2. Bury them in 14 irrelevant
    // injections and let the shrinker dig them out.
    let mut noisy = vec![];
    for nth in 0..3 {
        noisy.push(Injection {
            site: ChaosSite::CheckpointWrite,
            nth,
            action: ChaosAction::Fail,
        });
    }
    for nth in 3..9 {
        noisy.push(Injection {
            site: ChaosSite::CheckpointWrite,
            nth,
            action: ChaosAction::Enospc,
        });
    }
    for nth in 0..4 {
        noisy.push(Injection {
            site: ChaosSite::WorkerPanic,
            nth,
            action: ChaosAction::Fail,
        });
        noisy.push(Injection {
            site: ChaosSite::MemoLoad,
            nth,
            action: ChaosAction::Fail,
        });
    }
    let plan = HostFaultPlan::from_injections(noisy);

    // Deterministic predicate: does this schedule make the store degrade?
    let runs = std::cell::Cell::new(0u32);
    let mut fails = |candidate: &HostFaultPlan| {
        runs.set(runs.get() + 1);
        let dir = bench::checkpoint::CheckpointDir::new(scratch("shrink")).unwrap();
        let guard = chaos::install(candidate.clone());
        dir.save("tables-shrink", "payload under test");
        drop(guard);
        dir.health().write_failures > 0
    };

    let minimal = chaos::shrink(&plan, &mut fails);
    assert_eq!(
        minimal.token(),
        "ckpt@0,ckpt@1,ckpt@2",
        "1-minimal repro: the three attempts of the first save"
    );
    assert!(
        runs.get() < 200,
        "shrinker exploded: {} predicate runs",
        runs.get()
    );

    // The emitted token replays: parse it back and reproduce the failure.
    let parsed = HostFaultPlan::parse(&minimal.token()).unwrap();
    assert_eq!(parsed, minimal);
    assert!(fails(&parsed), "the minimal repro must still reproduce");
}
