//! Golden pin of the sampled scenario grid.
//!
//! The `scenario` experiment's quick-scale default — the worked example
//! grammar, seed 42, 16 variants × 4 configurations = 64 cells — is
//! pinned byte-for-byte. The pin covers the whole path at once: grammar
//! parsing, seeded variant resolution, op-program compilation, stream
//! signing, characterization, campaign supervision, and the grid render.
//! Any drift in any of those layers shows up as a readable table diff.
//!
//! To regenerate after an *intended* change:
//!
//! ```text
//! IOEVAL_REGEN_GOLDEN=1 cargo test --test golden_scenario
//! ```
//!
//! and review the diff under `tests/golden/` like any other code change.

use bench::{Repro, Scale};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scenario_grid.txt")
}

#[test]
fn golden_scenario_grid_64_cells() {
    let mut r = Repro::new(Scale::Quick).with_jobs(1);
    let actual = bench::scenario_grid::scenario(&mut r);
    assert!(
        actual.contains("16 variants x 4 configurations = 64 cells"),
        "the pinned grid must stay 64 cells:\n{actual}"
    );
    let path = golden_path();
    if std::env::var_os("IOEVAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with IOEVAL_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "the sampled scenario grid drifted from {}.\n\
         If the change is intended (grammar example, sampler, model),\n\
         regenerate with IOEVAL_REGEN_GOLDEN=1 and review the diff.\n\
         --- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

#[test]
fn golden_scenario_grid_is_complete() {
    // The committed pin itself must describe a fully healthy grid: all 64
    // cells ok, every variant row present.
    let text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("missing golden scenario grid: {e}"));
    assert!(text.contains("outcomes: 64 ok, 0 failed, 0 timed out, 0 skipped"));
    for i in 0..16 {
        assert!(
            text.contains(&format!("mixed/v{i:04}")),
            "variant v{i:04} missing from the pinned grid"
        );
    }
}
