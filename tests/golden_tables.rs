//! Golden-table regression suite for the characterization phase.
//!
//! The paper's methodology stands on the characterized performance tables
//! (Fig. 5: `{OperationType, Blocksize, AccessType, AccessMode,
//! transferRate}` rows per I/O-path level): every prediction and every
//! campaign cell resolves against them. These tests pin the exact rows
//! `characterize_system` produces for the three device layouts the `ioeval`
//! CLI exposes (JBOD, RAID 1, RAID 5) on the test cluster, so an
//! unintended change anywhere in the simulation stack — device models,
//! RAID geometry, caches, network, filesystem — shows up as a readable
//! table diff instead of a silent drift in downstream results.
//!
//! To regenerate after an *intended* model change:
//!
//! ```text
//! IOEVAL_REGEN_GOLDEN=1 cargo test --test golden_tables
//! ```
//!
//! and review the diff under `tests/golden/` like any other code change.

use cluster::{presets, DeviceLayout, IoConfig, IoConfigBuilder};
use ioeval_core::charact::{characterize_system, CharacterizeOptions};
use ioeval_core::perf_table::{IoLevel, PerfTableSet};
use std::fmt::Write as _;
use std::path::PathBuf;

/// The same presets `src/bin/ioeval.rs` offers as `--config`.
fn preset(name: &str) -> IoConfig {
    match name {
        "jbod" => IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .build(),
        "raid1" => IoConfigBuilder::new(DeviceLayout::Raid1).build(),
        "raid5" => IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
        "raid5-pfs4" => IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .pfs(4)
            .name("raid5-pfs4")
            .build(),
        other => panic!("unknown preset {other}"),
    }
}

/// Renders the golden snapshot: the paper's five table attributes, one
/// line per characterized row, grouped by I/O-path level. Deliberately
/// *not* the pretty-printed report table: this format is stable against
/// cosmetic layout changes and diffs line-per-row.
fn snapshot(set: &PerfTableSet) -> String {
    let mut out = format!("# cluster={} config={}\n", set.cluster, set.config);
    out.push_str("# OperationType | Blocksize | AccessType | AccessMode | transferRate\n");
    for level in IoLevel::ALL {
        let Some(table) = set.get(level) else {
            continue;
        };
        let _ = writeln!(out, "[level: {}]", level.label());
        for r in table.rows() {
            let _ = writeln!(
                out,
                "{} | {} | {:?} | {} | {}",
                r.op,
                simcore::fmt_bytes(r.block),
                r.access,
                r.mode,
                r.rate
            );
        }
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check_golden(name: &str) {
    let spec = presets::test_cluster();
    let config = preset(name);
    let set = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .unwrap_or_else(|e| panic!("characterization of {name} failed: {e}"));
    let actual = snapshot(&set);
    let path = golden_path(name);
    if std::env::var_os("IOEVAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with IOEVAL_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "characterization of `{name}` drifted from {}.\n\
         If the model change is intended, regenerate with IOEVAL_REGEN_GOLDEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{actual}",
        path.display()
    );
}

#[test]
fn golden_jbod_characterization() {
    check_golden("jbod");
}

#[test]
fn golden_raid1_characterization() {
    check_golden("raid1");
}

#[test]
fn golden_raid5_characterization() {
    check_golden("raid5");
}

#[test]
fn golden_raid5_pfs4_characterization() {
    // The parallel-filesystem deployment the `ioeval` CLI exposes: the
    // global level resolves through PVFS striping over 4 I/O servers.
    check_golden("raid5-pfs4");
}

#[test]
fn golden_snapshots_cover_every_level() {
    // The snapshots themselves must stay non-trivial: every quick-scale
    // characterization level appears, with at least one row each.
    for name in ["jbod", "raid1", "raid5", "raid5-pfs4"] {
        let text = std::fs::read_to_string(golden_path(name))
            .unwrap_or_else(|e| panic!("missing golden file for {name}: {e}"));
        for level in IoLevel::ALL {
            assert!(
                text.contains(&format!("[level: {}]", level.label())),
                "{name} snapshot lacks level {}",
                level.label()
            );
        }
        assert!(text.lines().count() > IoLevel::ALL.len() + 2);
    }
}
