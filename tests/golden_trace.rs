//! Golden-trace regression suite for the observability layer.
//!
//! Pins the exact JSONL event stream one small, fixed IOR cell emits
//! (2 ranks writing 1 MiB blocks in 256 KiB transfers over NFS on the
//! test cluster's JBOD configuration). The simulation is deterministic
//! and trace times are integer nanoseconds, so the export is
//! byte-stable; any unintended change to instrumentation points, event
//! shapes, or the models underneath shows up as a readable line diff.
//!
//! To regenerate after an *intended* change:
//!
//! ```text
//! IOEVAL_REGEN_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! and review the diff under `tests/golden/` like any other code change.

use cluster::{presets, ClusterMachine, DeviceLayout, IoConfigBuilder};
use fs::FileId;
use ioeval_core::obs::{to_jsonl, Collector, TraceMeta, TRACE_SCHEMA};
use mpisim::{NullSink, Runtime};
use simcore::MIB;
use std::path::PathBuf;
use workloads::{Ior, IorOp};

/// Runs the pinned cell under a collector and returns its JSONL export.
fn traced_cell_jsonl() -> String {
    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::Jbod)
        .write_cache_mib(0)
        .build();
    let scenario = Ior::new(2, FileId(7), MIB, IorOp::Write).scenario();
    let ranks = scenario.ranks();

    let collector = Collector::new();
    {
        let _guard = collector.install();
        let mut machine = ClusterMachine::try_new(&spec, &config).expect("machine builds");
        let programs = scenario.install(&mut machine);
        let placement = spec.placement(ranks);
        Runtime::default().run(&mut machine, &placement, programs, &mut NullSink);
    }
    let data = collector.take();
    assert_eq!(data.dropped, 0, "pinned cell must fit the event cap");
    let meta = TraceMeta {
        cluster: spec.name.clone(),
        config: config.name.clone(),
        app: "ior-2r-1MiB-write".to_string(),
        scenario: "healthy".to_string(),
    };
    to_jsonl(&data, &meta)
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/trace_ior.jsonl")
}

#[test]
fn golden_ior_trace() {
    let actual = traced_cell_jsonl();
    let path = golden_path();
    if std::env::var_os("IOEVAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with IOEVAL_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == actual,
        "the traced IOR cell drifted from {}.\n\
         If the change is intended, regenerate with IOEVAL_REGEN_GOLDEN=1 \
         and review the diff.\nexpected {} lines, got {}",
        path.display(),
        expected.lines().count(),
        actual.lines().count()
    );
}

#[test]
fn golden_trace_covers_the_io_path() {
    // The pinned stream must stay non-trivial: a schema-versioned header
    // followed by events from every layer the cell exercises (MPI-IO ops,
    // fabric sends, storage runs).
    let text = std::fs::read_to_string(golden_path())
        .unwrap_or_else(|e| panic!("missing golden trace: {e}"));
    let header = text.lines().next().expect("non-empty golden");
    assert!(header.contains("\"kind\":\"header\""), "{header}");
    assert!(
        header.contains(&format!("\"schema\":{TRACE_SCHEMA}")),
        "{header}"
    );
    for kind in [
        "\"kind\":\"mpi_op\"",
        "\"kind\":\"net_send\"",
        "\"kind\":\"storage_run\"",
    ] {
        assert!(text.contains(kind), "golden trace lacks {kind}");
    }
    assert!(text.lines().count() > 10, "suspiciously small golden trace");
}

#[test]
fn traced_and_untraced_runs_are_identical() {
    // Observation must be pure: running the same cell twice under a
    // collector yields byte-identical traces (determinism), and the
    // collector itself never perturbs the simulation.
    assert_eq!(traced_cell_jsonl(), traced_cell_jsonl());
}
