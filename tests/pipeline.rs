//! Cross-crate integration tests: the full characterize → evaluate pipeline
//! on scaled-down scenarios, asserting the paper's qualitative findings.

use cluster_io_eval::prelude::*;

fn test_spec() -> ClusterSpec {
    cluster::presets::test_cluster()
}

fn jbod() -> IoConfig {
    IoConfigBuilder::new(DeviceLayout::Jbod).build()
}

#[test]
fn characterization_covers_all_levels_with_positive_rates() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    for level in IoLevel::ALL {
        let t = tables.get(level).expect("level characterized");
        assert!(!t.is_empty());
        for row in t.rows() {
            assert!(row.rate.bytes_per_sec() > 0, "{level:?} zero rate");
            assert!(row.iops > 0.0, "{level:?} zero IOPs");
            assert!(row.latency > Time::ZERO, "{level:?} zero latency");
        }
    }
}

#[test]
fn performance_tables_roundtrip_through_json_files() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    let json = tables.to_json();
    let back = PerfTableSet::from_json(&json).expect("parse back");
    assert_eq!(back.to_json(), json);
}

#[test]
fn btio_full_beats_simple_end_to_end() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    let run = |subtype| {
        let bt = BtIo::new(BtClass::S, 4, subtype).with_dumps(4).gflops(20.0);
        evaluate(
            &spec,
            &config,
            bt.scenario(),
            &tables,
            &EvalOptions::default(),
        )
        .expect("evaluation")
    };
    let full = run(BtSubtype::Full);
    let simple = run(BtSubtype::Simple);

    // The paper's headline: collective buffering exploits the I/O system;
    // tiny strided independent operations do not.
    assert!(simple.exec_time > full.exec_time * 2);
    assert!(simple.io_fraction() > full.io_fraction());
    let lib_full = full
        .usage_summary(OpType::Write, IoLevel::Library)
        .expect("usage");
    let lib_simple = simple
        .usage_summary(OpType::Write, IoLevel::Library)
        .expect("usage");
    assert!(
        lib_full > lib_simple * 3.0,
        "full {lib_full}% vs simple {lib_simple}%"
    );
}

#[test]
fn btio_profile_matches_table_geometry() {
    let spec = test_spec();
    let config = jbod();
    let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple)
        .with_dumps(3)
        .gflops(20.0);
    let expected: u64 = (0..4).map(|r| bt.simple_ops_per_rank_per_dump(r) * 3).sum();
    let profile = characterize_app(&spec, &config, bt.scenario(), None).expect("profile");
    assert_eq!(profile.numio_write, expected);
    assert_eq!(profile.numio_read, expected);
    assert_eq!(profile.num_files, 1);
    assert_eq!(profile.procs, 4);
    // One write size for class S/4 procs (24/2 = 12-point lines).
    assert_eq!(profile.write_sizes.len(), 1);
    assert_eq!(profile.write_sizes[0].0, 480);
    // Strided access detected for the simple subtype.
    assert_eq!(profile.mode_write, AccessMode::Strided);
}

#[test]
fn madbench_unique_rereads_hit_the_cache_shared_reads_do_too() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    // Small matrices: everything fits in the client caches (the paper's
    // "reading operations are done on buffer/cache" situation).
    let mb = MadBench::new(4, FileType::Unique).with_kpix(1);
    let rep = evaluate(
        &spec,
        &config,
        mb.scenario(),
        &tables,
        &EvalOptions::default(),
    )
    .expect("evaluation");
    let w_r = rep
        .marker_usage_of(1, OpType::Read, IoLevel::LocalFs)
        .expect("W_r usage");
    assert!(w_r > 100.0, "cached re-reads must exceed 100% (got {w_r}%)");
}

#[test]
fn madbench_phase_structure_is_captured() {
    let spec = test_spec();
    let config = jbod();
    let mb = MadBench::new(4, FileType::Shared).with_kpix(1);
    let profile = characterize_app(&spec, &config, mb.scenario(), None).expect("profile");
    // 8 writes (S) + 8 reads + 8 writes (W) + 8 reads (C) per process.
    assert_eq!(profile.numio_write, 4 * 16);
    assert_eq!(profile.numio_read, 4 * 16);
    assert_eq!(profile.numio_sync, 4 * 16);
    // Marker rates present for all four paper columns.
    let has = |marker, op| {
        profile
            .per_marker
            .iter()
            .any(|m| m.marker == marker && m.op == op)
    };
    assert!(has(0, OpType::Write), "S_w");
    assert!(has(1, OpType::Write), "W_w");
    assert!(has(1, OpType::Read), "W_r");
    assert!(has(2, OpType::Read), "C_r");
}

#[test]
fn raid5_config_beats_jbod_for_streaming_writes() {
    let spec = test_spec();
    let raid5 = IoConfigBuilder::new(DeviceLayout::Raid5 {
        disks: 5,
        stripe: 256 * KIB,
    })
    .build();
    let opts = CharacterizeOptions::quick();
    let t_jbod = characterize_system(&spec, &jbod(), &opts).expect("characterization");
    let t_raid5 = characterize_system(&spec, &raid5, &opts).expect("characterization");
    let rate = |t: &PerfTableSet| {
        t.get(IoLevel::LocalFs)
            .unwrap()
            .search(
                OpType::Write,
                MIB,
                AccessType::Local,
                AccessMode::Sequential,
            )
            .unwrap()
            .rate
    };
    assert!(
        rate(&t_raid5).bytes_per_sec() > rate(&t_jbod).bytes_per_sec() * 2,
        "RAID 5 {} vs JBOD {}",
        rate(&t_raid5),
        rate(&t_jbod)
    );
}

#[test]
fn evaluation_is_deterministic() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    let run = || {
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0);
        let rep = evaluate(
            &spec,
            &config,
            bt.scenario(),
            &tables,
            &EvalOptions::default(),
        )
        .expect("evaluation");
        (rep.exec_time, rep.io_time, format!("{:?}", rep.usage))
    };
    assert_eq!(run(), run());
}

#[test]
fn usage_search_follows_fig11_on_real_tables() {
    let spec = test_spec();
    let config = jbod();
    let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick())
        .expect("characterization");
    let t = tables.get(IoLevel::LocalFs).unwrap();
    // Quick options characterize 64 KiB and 1 MiB records. A 100 KiB
    // application block must resolve to the closest upper row (1 MiB).
    let row = t
        .search(
            OpType::Read,
            100 * KIB,
            AccessType::Local,
            AccessMode::Sequential,
        )
        .expect("row");
    assert_eq!(row.block, MIB);
    // Below the minimum → the minimum row.
    let row = t
        .search(OpType::Read, 1, AccessType::Local, AccessMode::Sequential)
        .expect("row");
    assert_eq!(row.block, 64 * KIB);
    // Above the maximum → the maximum row.
    let row = t
        .search(OpType::Read, GIB, AccessType::Local, AccessMode::Sequential)
        .expect("row");
    assert_eq!(row.block, MIB);
}

#[test]
fn shared_network_hurts_io_heavy_apps() {
    let spec = test_spec();
    let split = IoConfigBuilder::new(DeviceLayout::Jbod).build();
    let shared = IoConfigBuilder::new(DeviceLayout::Jbod)
        .network(NetworkLayout::Shared)
        .build();
    // An app that communicates while doing I/O suffers when the traffic
    // shares one fabric; quantify with BT-IO full (comm-heavy).
    let run = |config: &IoConfig| {
        let bt = BtIo::new(BtClass::A, 4, BtSubtype::Full)
            .with_dumps(4)
            .gflops(20.0);
        let mut machine =
            cluster::ClusterMachine::try_new(&spec, config).expect("valid cluster configuration");
        let programs = bt.scenario().install(&mut machine);
        let placement = spec.placement(4);
        let mut sink = cluster_io_eval::mpisim::NullSink;
        let stats = cluster_io_eval::mpisim::Runtime::default().run(
            &mut machine,
            &placement,
            programs,
            &mut sink,
        );
        stats.wall_time
    };
    let t_split = run(&split);
    let t_shared = run(&shared);
    assert!(
        t_shared >= t_split,
        "shared network {t_shared:?} cannot beat dedicated {t_split:?}"
    );
}

#[test]
fn advisor_ranking_matches_simulation_order() {
    use cluster_io_eval::methodology::advisor::rank_configs;
    let spec = test_spec();
    let configs = [
        IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .build(),
        IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 5,
            stripe: 256 * KIB,
        })
        .build(),
    ];
    let opts = CharacterizeOptions::quick();
    let table_sets: Vec<PerfTableSet> = configs
        .iter()
        .map(|c| characterize_system(&spec, c, &opts).expect("characterization"))
        .collect();

    // A write-heavy checkpoint app: server-device-bound once past caches.
    let app = || {
        MadBench::new(4, FileType::Shared).with_kpix(2) // 32 MiB components
    };
    let profile = characterize_app(&spec, &configs[0], app().scenario(), None).expect("profile");

    let ranked = rank_configs(&profile, table_sets.iter());
    assert_eq!(ranked.len(), 2);

    // Simulate both; the advisor's order must match the simulated order.
    let simulated: Vec<(String, Time)> = configs
        .iter()
        .zip(&table_sets)
        .map(|(c, t)| {
            let rep = evaluate(&spec, c, app().scenario(), t, &EvalOptions::default())
                .expect("evaluation");
            (c.name.clone(), rep.io_time)
        })
        .collect();
    let best = simulated.iter().map(|&(_, t)| t).min().expect("nonempty");
    let picked = simulated
        .iter()
        .find(|(name, _)| *name == ranked[0].config)
        .map(|&(_, t)| t)
        .expect("advisor picked a known config");
    // The advisor's pick must be competitive with the simulated best
    // (exact order can flip on near-ties; a bad pick would be far off).
    assert!(
        picked.as_secs_f64() <= best.as_secs_f64() * 1.25,
        "advisor picked {} ({picked:?}) but the best simulated is {best:?}",
        ranked[0].config
    );
}

#[test]
fn parallel_fs_rescues_the_simple_subtype() {
    let spec = test_spec();
    let nfs_config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
    let pfs_config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
    let run = |config: &IoConfig, mount| {
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple)
            .with_dumps(4)
            .gflops(20.0)
            .on(mount);
        characterize_app(&spec, config, bt.scenario(), None).expect("profile")
    };
    let on_nfs = run(&nfs_config, Mount::NfsDirect);
    let on_pfs = run(&pfs_config, Mount::Pfs);
    // PVFS needs no per-op locking, so the tiny strided operations escape
    // the lockd serialization that dominates them on NFS.
    assert!(
        on_pfs.io_time.as_secs_f64() < on_nfs.io_time.as_secs_f64() * 0.5,
        "PFS {:?} vs NFS {:?}",
        on_pfs.io_time,
        on_nfs.io_time
    );
    assert_eq!(on_pfs.numio_write, on_nfs.numio_write, "same workload");
}

#[test]
fn pfs_configs_characterize_their_own_architecture() {
    let spec = test_spec();
    let pfs_config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
    let tables = characterize_system(&spec, &pfs_config, &CharacterizeOptions::quick())
        .expect("characterization");
    // All three levels characterized against the PFS deployment.
    for level in IoLevel::ALL {
        assert!(tables.get(level).is_some(), "{level:?} missing");
    }
    // Evaluating a PFS-mounted app against its own characterization closes
    // the loop: usage must be in a sane range, not wildly off-scale.
    let bt = BtIo::new(BtClass::S, 4, BtSubtype::Full)
        .with_dumps(4)
        .gflops(20.0)
        .on(Mount::Pfs);
    let rep = evaluate(
        &spec,
        &pfs_config,
        bt.scenario(),
        &tables,
        &EvalOptions::default(),
    )
    .expect("evaluation");
    let lib = rep
        .usage_summary(OpType::Write, IoLevel::Library)
        .expect("library usage");
    assert!(lib > 10.0 && lib < 1000.0, "PFS library usage = {lib}%");
}

#[test]
fn supervised_campaign_is_jobs_invariant() {
    // CI runs this test twice: once in the default lane and once with
    // IOEVAL_JOBS=4. The campaign under the environment's worker count
    // must render byte-identically to the sequential reference — the
    // parallel scheduler's whole contract in one assertion.
    let spec = test_spec();
    let configs = vec![
        IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .build(),
        IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 5,
            stripe: 256 * KIB,
        })
        .build(),
    ];
    let full = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    };
    let simple = || {
        BtIo::new(BtClass::S, 4, BtSubtype::Simple)
            .with_dumps(2)
            .gflops(20.0)
            .scenario()
    };
    let apps: Vec<AppFactory> = vec![("btio-full", &full), ("btio-simple", &simple)];
    let opts = CharacterizeOptions::quick();
    let env_jobs = std::env::var("IOEVAL_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);

    let run = |jobs: usize| {
        let sup = SuperviseOptions::default().with_jobs(jobs);
        run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore)
    };
    let reference = run(1);
    assert_eq!(reference.outcomes.len(), 4);
    assert!(!reference.is_degraded());
    if env_jobs > 1 {
        let parallel = run(env_jobs);
        assert_eq!(
            reference.render(),
            parallel.render(),
            "IOEVAL_JOBS={env_jobs} diverged from sequential"
        );
    }
}

#[test]
fn io500_style_campaign_and_metadata_metrics_are_jobs_invariant() {
    // The io500 experiment fans its ior + mdtest phases out through the
    // parallel campaign scheduler; both the rendered campaign (including
    // the metadata ops/s lines) and the aggregated per-level metrics —
    // Metadata level included — must be byte-identical however many
    // workers run the cells.
    use std::sync::Arc;
    use workloads::Mdtest;
    let spec = test_spec();
    let configs = vec![
        IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
        IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .pfs(4)
            .name("raid5-pfs4")
            .build(),
    ];
    let ior = || {
        Ior::new(4, cluster_io_eval::fs::FileId(701), 4 * MIB, IorOp::Write)
            .on(Mount::Nfs)
            .scenario()
    };
    let md_easy = || Mdtest::easy(4, 10).scenario();
    let md_hard = || Mdtest::hard(4, 10).scenario();
    let apps: Vec<AppFactory> = vec![
        ("ior-easy-write", &ior),
        ("mdtest-easy", &md_easy),
        ("mdtest-hard", &md_hard),
    ];
    let opts = CharacterizeOptions::quick();
    let run = |jobs: usize| {
        let hub = Arc::new(ioeval_core::obs::MetricsHub::new());
        let sup = SuperviseOptions {
            metrics: Some(hub.clone()),
            ..SuperviseOptions::default()
        }
        .with_jobs(jobs);
        let campaign = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore);
        assert!(!campaign.is_degraded());
        let metrics = ioeval_core::obs::render_obs_metrics(&hub.aggregate(), Time::from_secs(1));
        (campaign.render(), metrics)
    };
    let (seq_render, seq_metrics) = run(1);
    // The metadata level was actually observed and rendered.
    assert!(seq_render.contains("metadata: "), "{seq_render}");
    assert!(seq_metrics.contains("Metadata"), "{seq_metrics}");
    let (par_render, par_metrics) = run(4);
    assert_eq!(seq_render, par_render, "campaign render diverged at jobs=4");
    assert_eq!(
        seq_metrics, par_metrics,
        "metadata metrics diverged at jobs=4"
    );
}

#[test]
fn bonnie_tests_have_expected_cost_ordering() {
    use workloads::{Bonnie, BonnieTest};
    let spec = test_spec();
    let config = jbod();
    let run = |test| {
        let b = Bonnie::new(cluster_io_eval::fs::FileId(31), 64 * MIB, test);
        characterize_app(&spec, &config, b.scenario(), None).expect("profile")
    };
    let output = run(BonnieTest::SeqOutput);
    let input = run(BonnieTest::SeqInput);
    let rewrite = run(BonnieTest::Rewrite);
    let seeks = run(BonnieTest::RandomSeeks);

    // Rewrite moves 2× the bytes of a single pass and mixes directions.
    assert_eq!(rewrite.bytes_read, 64 * MIB);
    assert_eq!(rewrite.bytes_written, 64 * MIB);
    assert!(rewrite.io_time > input.io_time);
    assert!(output.exec_time > Time::ZERO);

    // The seek test produces an IOPs figure in a mechanical-disk range
    // (the 64 MiB test file allows partial caching, so it can beat raw
    // spindle IOPs but must stay far below memory speed).
    let m = seeks
        .measured
        .iter()
        .find(|m| m.op == OpType::Read)
        .expect("seek reads measured");
    assert!(
        m.iops > 20.0 && m.iops < 20_000.0,
        "random-seek IOPs = {}",
        m.iops
    );
}

#[test]
fn ior_collective_and_independent_both_complete() {
    let spec = test_spec();
    let config = jbod();
    for collective in [false, true] {
        let mut ior = Ior::new(
            4,
            cluster_io_eval::fs::FileId(77),
            4 * MIB,
            workloads::ior::IorOp::Write,
        );
        if collective {
            ior = ior.collective();
        }
        let profile = characterize_app(&spec, &config, ior.scenario(), None).expect("profile");
        assert_eq!(profile.bytes_written, 16 * MIB, "collective={collective}");
        assert!(profile.exec_time > Time::ZERO);
    }
}
