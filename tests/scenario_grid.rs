//! End-to-end determinism of the sampled scenario grid.
//!
//! The campaign front-end promises: (1) grammar sampling under a fixed
//! seed is byte-reproducible — the variant list is identical across runs
//! and independent of whether variants are drawn one at a time or in a
//! batch; (2) the rendered grid is byte-identical for any worker count;
//! (3) a killed-and-resumed grid replays its checkpointed cells and
//! renders digest-identical output without re-evaluating anything.

use bench::{Repro, Scale};
use proptest::prelude::*;
use workloads::grammar::{Grammar, EXAMPLE};

proptest! {
    /// Sampling the example grammar twice under the same seed yields the
    /// same variant list byte-for-byte, and per-index resolution agrees
    /// with batch sampling — the property that makes work distribution
    /// across campaign workers (and resumption from any cell) safe.
    #[test]
    fn sampling_is_byte_reproducible(seed in any::<u64>(), n in 1usize..24) {
        let g = Grammar::parse(EXAMPLE).unwrap();
        let a: Vec<String> = g.sample(seed, n).iter().map(|v| v.describe()).collect();
        let b: Vec<String> = g.sample(seed, n).iter().map(|v| v.describe()).collect();
        prop_assert_eq!(&a, &b);
        for (i, d) in a.iter().enumerate() {
            prop_assert_eq!(&g.variant(seed, i).describe(), d);
        }
    }

    /// A variant's digest pins its resolved program: equal digests mean
    /// equal described bodies across arbitrary seeds and indices.
    #[test]
    fn digest_pins_resolved_program(s1 in any::<u64>(), s2 in any::<u64>(), i in 0usize..64, j in 0usize..64) {
        let g = Grammar::parse(EXAMPLE).unwrap();
        let a = g.variant(s1, i);
        let b = g.variant(s2, j);
        let strip = |d: String| d.split_once(' ').unwrap().1.to_string();
        if a.digest == b.digest {
            prop_assert_eq!(strip(a.describe()), strip(b.describe()));
        } else {
            prop_assert_ne!(strip(a.describe()), strip(b.describe()));
        }
    }
}

/// One worker and four workers must render the identical grid: the
/// deterministic merge applies to grammar-generated apps exactly as it
/// does to hand-coded ones.
#[test]
fn one_and_four_workers_render_identical_grids() {
    let mut r1 = Repro::new(Scale::Quick)
        .with_jobs(1)
        .with_scenario_sample(8);
    let a = bench::scenario_grid::scenario(&mut r1);
    let mut r4 = Repro::new(Scale::Quick)
        .with_jobs(4)
        .with_scenario_sample(8);
    let b = bench::scenario_grid::scenario(&mut r4);
    assert!(
        a.contains("8 variants x 4 configurations = 32 cells"),
        "{a}"
    );
    assert_eq!(a, b, "worker count changed the rendered grid");
}

/// A resumed grid replays every checkpointed cell: the second run renders
/// byte-identically *and* performs no characterization work of its own
/// (its in-process memo never misses — everything loads from the store).
#[test]
fn killed_and_resumed_grid_replays_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ioeval-scenario-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut first = Repro::new(Scale::Quick)
        .with_scenario_sample(6)
        .with_checkpoint(&dir)
        .expect("open checkpoint dir");
    let a = bench::scenario_grid::scenario(&mut first);
    drop(first); // the "kill": this process's in-memory state is gone

    let mut resumed = Repro::new(Scale::Quick)
        .with_scenario_sample(6)
        .with_checkpoint(&dir)
        .expect("reopen checkpoint dir");
    let b = bench::scenario_grid::scenario(&mut resumed);
    assert_eq!(a, b, "resumed grid must render byte-identically");
    assert_eq!(
        resumed.memo_stats(),
        Some((0, 0)),
        "a fully resumed grid must not re-characterize anything"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-scale grid: 2500 sampled variants × 4 configurations =
/// 10,000 cells, swept under one worker and four, byte-identical.
/// Minutes of runtime, so opt-in.
#[test]
#[ignore = "10k-cell acceptance grid; run explicitly with --ignored"]
fn ten_thousand_cell_grid_is_worker_count_invariant() {
    let mut r1 = Repro::new(Scale::Quick)
        .with_jobs(1)
        .with_scenario_sample(2500);
    let a = bench::scenario_grid::scenario(&mut r1);
    assert!(
        a.contains("2500 variants x 4 configurations = 10000 cells"),
        "{}",
        a.lines().next().unwrap_or("")
    );
    assert!(a.contains("outcomes: 10000 ok"), "grid must complete");
    let mut r4 = Repro::new(Scale::Quick)
        .with_jobs(4)
        .with_scenario_sample(2500);
    let b = bench::scenario_grid::scenario(&mut r4);
    assert_eq!(a, b, "worker count changed the 10k-cell render");
}
