//! Scale-out regression suite: 1024-rank campaigns and the rank-group
//! collapsed IOR sweep.
//!
//! Two guarantees are pinned here. First, a 1024-rank characterization
//! campaign renders byte-identically under `jobs = 1` and `jobs = 4` —
//! parallelism trades wall-clock for cores, never output. Second, the
//! collapsed execution of a 1024-rank IOR sweep on the leaf-spine scale
//! testbed produces *exactly* the table a full per-rank execution does,
//! and that table is pinned as a golden snapshot
//! (`tests/golden/scale_ior.txt`; regenerate an intended model change
//! with `IOEVAL_REGEN_GOLDEN=1 cargo test --test scale_out`).

use cluster::scale::scale_1024;
use cluster::{presets, DeviceLayout, IoConfigBuilder};
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::CharacterizeOptions;
use ioeval_core::perf_table::IoLevel;
use simcore::{Bandwidth, KIB, MIB};
use std::fmt::Write as _;
use std::path::PathBuf;
use workloads::ior::{Ior, IorOp};

/// A library-level-only sweep at 1024 ranks: one 256 KiB block per rank,
/// the paper's transfer size, no filesystem-level sweeps (those scale
/// with file size, not rank count).
fn ranks_1024_options() -> CharacterizeOptions {
    CharacterizeOptions {
        records: vec![],
        iozone_file_size: None,
        modes: vec![],
        ior_blocks: vec![256 * KIB],
        ior_ranks: 1024,
        ior_transfer: 256 * KIB,
        levels: vec![IoLevel::Library],
        watchdog: None,
    }
}

#[test]
fn campaign_at_1024_ranks_renders_byte_identical_across_jobs() {
    let spec = presets::test_cluster();
    let configs = vec![
        IoConfigBuilder::new(DeviceLayout::Jbod).build(),
        IoConfigBuilder::new(DeviceLayout::Raid1).build(),
    ];
    let ior_app = || Ior::new(1024, fs::FileId(0x10A), 256 * KIB, IorOp::Write).scenario();
    let apps: Vec<AppFactory> = vec![("ior-1024", &ior_app)];
    let opts = ranks_1024_options();
    let run = |jobs: usize| {
        let sup = SuperviseOptions::default().with_jobs(jobs);
        let c = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore);
        let tables: Vec<String> = c.tables.iter().map(|t| t.to_json()).collect();
        (c.render(), tables)
    };
    let (sequential, seq_tables) = run(1);
    assert!(sequential.contains("ior-1024"));
    assert_eq!(seq_tables.len(), 2, "both configurations characterized");
    let (parallel, par_tables) = run(4);
    assert_eq!(sequential, parallel, "jobs=4 render differs at 1024 ranks");
    assert_eq!(seq_tables, par_tables, "jobs=4 tables differ at 1024 ranks");
}

/// Runs the 1024-rank IOR sweep on the scale testbed and renders one line
/// per point, with the collapse toggle under test.
fn scale_ior_table(collapse: bool) -> String {
    let spec = scale_1024();
    let placement = spec.placement(1024);
    let mut out = String::from(
        "# cluster=scale-1024 sweep=IOR ranks=1024 transfer=256K\n\
         # OperationType | Blocksize | transferRate\n",
    );
    for block in [MIB, 4 * MIB] {
        for op in [IorOp::Write, IorOp::Read] {
            let programs = Ior::new(1024, fs::FileId(0x5CA1E), block, op)
                .scenario()
                .programs;
            let mut machine = spec.machine();
            let mut sink = mpisim::NullSink;
            let stats = mpisim::Runtime::default().with_collapse(collapse).run(
                &mut machine,
                &placement,
                programs,
                &mut sink,
            );
            let _ = writeln!(
                out,
                "{op:?} | {} | {}",
                simcore::fmt_bytes(block),
                Bandwidth::measured(stats.total_bytes(), stats.wall_time),
            );
        }
    }
    out
}

#[test]
fn golden_collapsed_scale_ior_table() {
    let before = mpisim::collapsed_run_count();
    let full = scale_ior_table(false);
    assert_eq!(mpisim::collapsed_run_count(), before);
    let collapsed = scale_ior_table(true);
    assert!(
        mpisim::collapsed_run_count() > before,
        "the 1024-rank sweep must engage the rank-group fast path"
    );
    // Equivalence first: the collapsed table IS the full table.
    assert_eq!(full, collapsed, "collapsed execution drifted from granular");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/scale_ior.txt");
    if std::env::var_os("IOEVAL_REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &collapsed).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with IOEVAL_REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert!(
        expected == collapsed,
        "collapsed scale IOR table drifted from {}.\n\
         If the model change is intended, regenerate with IOEVAL_REGEN_GOLDEN=1 \
         and review the diff.\n--- expected ---\n{expected}\n--- actual ---\n{collapsed}",
        path.display()
    );
}
