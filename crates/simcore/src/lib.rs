//! # simcore — discrete-event simulation kernel
//!
//! Foundations shared by every simulated subsystem in the workspace:
//!
//! * [`Time`] / [`Bandwidth`] — nanosecond-resolution simulated time and
//!   byte-per-second rates with overflow-safe conversions.
//! * [`EventQueue`] — a slab-backed four-ary-heap event queue with stable FIFO ordering for
//!   events scheduled at the same instant.
//! * [`FifoResource`] / [`MultiResource`] — *timeline resources*: a request
//!   arriving at `t` starts at `max(t, free_at)` and occupies the resource for
//!   its service time. When requests are issued in nondecreasing simulation
//!   time this is an exact FIFO (resp. `k`-server) queueing model without any
//!   callback machinery.
//! * [`rng::SplitMix64`] — deterministic RNG so identical scenarios produce
//!   identical traces.
//! * [`stats`] — online statistics, histograms and utilization meters used by
//!   the characterization reports.
//! * [`Watchdog`] — supervised-run budgets (simulated-time deadline,
//!   wall-clock budget, livelock/stall detection) so runaway simulations
//!   abort with a typed [`Abort`] instead of hanging a campaign.
//! * [`chaos`] — deterministic host-fault injection (torn checkpoint
//!   writes, worker panics, store errors, ENOSPC) for exercising the
//!   campaign runtime's recovery paths.

pub mod chaos;
pub mod faults;
pub mod hash;
pub mod obs;
pub mod progress;
pub mod queue;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use chaos::{ChaosAction, ChaosProfile, ChaosSite, HostFaultPlan};
pub use faults::{Fault, FaultEvent, FaultProfile, FaultSchedule, NetClass};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use progress::{Abort, Watchdog, WatchdogSpec};
pub use queue::{EventHandle, EventQueue};
pub use resource::{FifoResource, MultiResource};
pub use rng::{seed_for, SplitMix64};
pub use time::{Bandwidth, Time};

/// Number of bytes in a kibibyte.
pub const KIB: u64 = 1024;
/// Number of bytes in a mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// Number of bytes in a gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Formats a byte count using binary units (e.g. `256KiB`, `1.5MiB`).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= GIB && bytes.is_multiple_of(GIB) {
        format!("{}GiB", bytes / GIB)
    } else if bytes >= MIB && bytes.is_multiple_of(MIB) {
        format!("{}MiB", bytes / MIB)
    } else if bytes >= KIB && bytes.is_multiple_of(KIB) {
        format!("{}KiB", bytes / KIB)
    } else if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.2}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{}B", bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_formatting_uses_binary_units() {
        assert_eq!(fmt_bytes(0), "0B");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(1024), "1KiB");
        assert_eq!(fmt_bytes(256 * KIB), "256KiB");
        assert_eq!(fmt_bytes(MIB), "1MiB");
        assert_eq!(fmt_bytes(3 * GIB), "3GiB");
        assert_eq!(fmt_bytes(MIB + MIB / 2), "1536KiB");
        assert_eq!(fmt_bytes(MIB + 1), "1.00MiB");
    }
}
