//! Timeline resources: exact FIFO queueing without callbacks.
//!
//! A [`FifoResource`] models a single server (a disk arm, a network link, an
//! NFS daemon thread). A request arriving at `t` with service time `s`
//! starts at `max(t, free_at)`, completes at `start + s`, and pushes
//! `free_at` to the completion time. Provided requests are *issued* in
//! nondecreasing simulation time — which the event-driven MPI engine
//! guarantees — the computed completion times are exactly those of a FIFO
//! queue.
//!
//! [`MultiResource`] generalizes this to `k` identical servers (e.g. an NFS
//! server's worker-thread pool): each request is placed on the server that
//! frees up earliest.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Outcome of submitting a request to a resource.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// When the request actually began service (≥ arrival).
    pub start: Time,
    /// When the request completed.
    pub end: Time,
}

impl Grant {
    /// Time spent waiting in queue before service began.
    pub fn queue_delay(&self, arrival: Time) -> Time {
        self.start.saturating_sub(arrival)
    }

    /// Total latency from arrival to completion.
    pub fn latency(&self, arrival: Time) -> Time {
        self.end.saturating_sub(arrival)
    }
}

/// A single-server FIFO resource with utilization accounting.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FifoResource {
    free_at: Time,
    busy: Time,
    requests: u64,
}

impl FifoResource {
    /// A resource that is free immediately.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a request arriving at `arrival` needing `service` time.
    pub fn submit(&mut self, arrival: Time, service: Time) -> Grant {
        let start = arrival.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        self.requests += 1;
        Grant { start, end }
    }

    /// Submits `count` back-to-back requests, all arriving at `arrival`,
    /// each needing `service` time. Exactly equivalent to `count` calls to
    /// [`FifoResource::submit`] (the first starts at `max(arrival, free_at)`
    /// and every later one starts when its predecessor completes), but in
    /// O(1): the bulk-transfer fast path uses this to collapse a chunked
    /// sequential run into closed form. Returns the grant envelope — start
    /// of the first request, end of the last. `count == 0` is a no-op grant
    /// at the would-be start instant.
    pub fn submit_run(&mut self, arrival: Time, service: Time, count: u64) -> Grant {
        let start = arrival.max(self.free_at);
        if count == 0 {
            return Grant { start, end: start };
        }
        let end = start + service * count;
        self.free_at = end;
        self.busy += service * count;
        self.requests += count;
        Grant { start, end }
    }

    /// When the resource next becomes idle.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total time the resource spent serving requests.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Number of requests served.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of `horizon` the resource was busy (clamped to 1.0).
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        (self.busy.as_secs_f64() / horizon.as_secs_f64()).min(1.0)
    }

    /// Forgets all state (timeline and statistics).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// `k` identical FIFO servers fed from a common queue.
///
/// Requests go to the server that becomes free earliest, matching the
/// behaviour of a thread pool draining a shared run queue.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MultiResource {
    servers: Vec<FifoResource>,
}

impl MultiResource {
    /// Creates a pool of `k` servers (`k ≥ 1`).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "a resource pool needs at least one server");
        MultiResource {
            servers: vec![FifoResource::new(); k],
        }
    }

    /// Number of servers in the pool.
    pub fn servers(&self) -> usize {
        self.servers.len()
    }

    /// Submits a request to the earliest-free server.
    pub fn submit(&mut self, arrival: Time, service: Time) -> Grant {
        let idx = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.free_at())
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.servers[idx].submit(arrival, service)
    }

    /// When the pool could start a new request at the earliest.
    pub fn earliest_free(&self) -> Time {
        self.servers
            .iter()
            .map(|s| s.free_at())
            .min()
            .unwrap_or(Time::ZERO)
    }

    /// Total busy time across all servers.
    pub fn busy_time(&self) -> Time {
        self.servers.iter().map(|s| s.busy_time()).sum()
    }

    /// Total requests across all servers.
    pub fn requests(&self) -> u64 {
        self.servers.iter().map(|s| s.requests()).sum()
    }

    /// Mean per-server utilization over `horizon`.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO || self.servers.is_empty() {
            return 0.0;
        }
        let total: f64 = self.servers.iter().map(|s| s.utilization(horizon)).sum();
        total / self.servers.len() as f64
    }

    /// Forgets all state.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> Time {
        Time::from_secs(x)
    }

    #[test]
    fn idle_resource_serves_immediately() {
        let mut r = FifoResource::new();
        let g = r.submit(s(5), s(2));
        assert_eq!(g.start, s(5));
        assert_eq!(g.end, s(7));
        assert_eq!(g.queue_delay(s(5)), Time::ZERO);
        assert_eq!(g.latency(s(5)), s(2));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut r = FifoResource::new();
        r.submit(s(0), s(10));
        let g = r.submit(s(2), s(3));
        assert_eq!(g.start, s(10));
        assert_eq!(g.end, s(13));
        assert_eq!(g.queue_delay(s(2)), s(8));
        let g2 = r.submit(s(2), s(1));
        assert_eq!(g2.start, s(13));
    }

    #[test]
    fn utilization_accounts_busy_fraction() {
        let mut r = FifoResource::new();
        r.submit(s(0), s(2));
        r.submit(s(4), s(2));
        assert!((r.utilization(s(8)) - 0.5).abs() < 1e-12);
        assert_eq!(r.requests(), 2);
        assert_eq!(r.busy_time(), s(4));
        assert_eq!(r.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut r = FifoResource::new();
        r.submit(s(0), s(100));
        assert_eq!(r.utilization(s(10)), 1.0);
    }

    #[test]
    fn reset_clears_timeline() {
        let mut r = FifoResource::new();
        r.submit(s(0), s(100));
        r.reset();
        let g = r.submit(s(1), s(1));
        assert_eq!(g.start, s(1));
        assert_eq!(r.requests(), 1);
    }

    #[test]
    fn submit_run_matches_repeated_submit() {
        let mut bulk = FifoResource::new();
        let mut loop_r = FifoResource::new();
        bulk.submit(s(0), s(3));
        loop_r.submit(s(0), s(3));
        let g = bulk.submit_run(s(1), s(2), 5);
        let mut first = None;
        let mut last = None;
        for _ in 0..5 {
            let g = loop_r.submit(s(1), s(2));
            first.get_or_insert(g.start);
            last = Some(g.end);
        }
        assert_eq!(g.start, first.unwrap());
        assert_eq!(g.end, last.unwrap());
        assert_eq!(bulk.free_at(), loop_r.free_at());
        assert_eq!(bulk.busy_time(), loop_r.busy_time());
        assert_eq!(bulk.requests(), loop_r.requests());
    }

    #[test]
    fn submit_run_of_zero_requests_changes_nothing() {
        let mut r = FifoResource::new();
        r.submit(s(0), s(4));
        let g = r.submit_run(s(1), s(9), 0);
        assert_eq!(g.start, s(4));
        assert_eq!(g.end, s(4));
        assert_eq!(r.requests(), 1);
        assert_eq!(r.free_at(), s(4));
    }

    #[test]
    fn multi_resource_runs_k_in_parallel() {
        let mut pool = MultiResource::new(2);
        let a = pool.submit(s(0), s(10));
        let b = pool.submit(s(0), s(10));
        let c = pool.submit(s(0), s(10));
        assert_eq!(a.start, s(0));
        assert_eq!(b.start, s(0));
        // Third request waits for the first free server.
        assert_eq!(c.start, s(10));
        assert_eq!(pool.requests(), 3);
        assert_eq!(pool.busy_time(), s(30));
    }

    #[test]
    fn multi_resource_picks_earliest_free_server() {
        let mut pool = MultiResource::new(2);
        pool.submit(s(0), s(10)); // server 0 busy until 10
        pool.submit(s(0), s(2)); // server 1 busy until 2
        let g = pool.submit(s(3), s(1));
        assert_eq!(g.start, s(3)); // server 1 free at 2 < arrival 3
        assert_eq!(pool.earliest_free(), s(4));
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_pool_is_rejected() {
        MultiResource::new(0);
    }

    #[test]
    fn multi_utilization_is_mean_of_servers() {
        let mut pool = MultiResource::new(2);
        pool.submit(s(0), s(4)); // server A: 4s busy
        pool.submit(s(0), s(0)); // server B: idle
        let u = pool.utilization(s(8));
        assert!((u - 0.25).abs() < 1e-12, "u = {u}");
    }
}
