//! Deterministic fault injection.
//!
//! A [`FaultSchedule`] is a time-sorted list of [`FaultEvent`]s describing
//! *when* components of the simulated I/O path misbehave: a RAID member
//! dies or limps, the NFS server stalls, a traffic class starts dropping
//! or duplicating messages. The schedule itself is inert data — the
//! machine layers poll [`FaultSchedule::due`] as simulated time advances
//! and apply each event to the owning component, so the same schedule
//! always produces the same trace.
//!
//! Schedules are either written out explicitly (one event per line of the
//! scenario) or drawn from a seeded RNG via [`FaultSchedule::random`],
//! which keeps stochastic campaigns reproducible: same seed, same faults.

use crate::rng::SplitMix64;
use crate::time::Time;
use serde::{Deserialize, Serialize};

/// A network traffic class, mirrored here so the fault vocabulary does not
/// depend on the network simulator (which sits above `simcore`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetClass {
    /// Compute (MPI) traffic.
    Mpi,
    /// Storage (NFS/PFS) traffic.
    Storage,
}

/// One injectable fault.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// A volume member disk fails hard; the array runs degraded.
    DiskFail {
        /// Member index within the server volume.
        disk: usize,
    },
    /// A failed member is hot-swapped for a fresh disk; the array starts
    /// rebuilding onto it.
    DiskReplace {
        /// Member index within the server volume.
        disk: usize,
    },
    /// A member disk limps: every service time is multiplied by `factor`.
    DiskSlow {
        /// Member index within the server volume.
        disk: usize,
        /// Service-time multiplier (> 1.0 slows the member down).
        factor: f64,
    },
    /// A limping member returns to nominal service times.
    DiskRecover {
        /// Member index within the server volume.
        disk: usize,
    },
    /// The cluster's **NFS server** (the I/O node's `nfsd` pool) stops
    /// dispatching RPCs for `duration` (daemon pause, failover window, deep
    /// firmware hiccup). Targets only the NFS export — parallel-filesystem
    /// I/O servers have their own `PfsServer*` faults.
    ServerStall {
        /// Length of the stall window.
        duration: Time,
    },
    /// A parallel-filesystem I/O server crashes: it stops answering RPCs
    /// and stays down until a matching [`Fault::PfsServerRecover`].
    PfsServerFail {
        /// PFS I/O server index (`0 .. pfs_servers`).
        server: usize,
    },
    /// A crashed PFS I/O server rejoins and resyncs the writes it missed
    /// from its surviving replica peers (storage-class catch-up traffic).
    PfsServerRecover {
        /// PFS I/O server index.
        server: usize,
    },
    /// A PFS I/O server limps: its RPC dispatch and disk service times are
    /// multiplied by `factor` (1.0 restores nominal service).
    PfsServerSlow {
        /// PFS I/O server index.
        server: usize,
        /// Service-time multiplier (> 1.0 slows the server down).
        factor: f64,
    },
    /// A traffic class starts dropping and/or duplicating messages.
    NetDegrade {
        /// Which fabric class degrades.
        class: NetClass,
        /// Probability a message's first copy is lost.
        drop: f64,
        /// Probability a message is sent twice.
        duplicate: f64,
    },
    /// A degraded traffic class returns to lossless service.
    NetHeal {
        /// Which fabric class heals.
        class: NetClass,
    },
}

/// A fault bound to the simulated instant it occurs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires.
    pub at: Time,
    /// What happens.
    pub fault: Fault,
}

/// Knobs for [`FaultSchedule::random`].
#[derive(Clone, Debug)]
pub struct FaultProfile {
    /// Member disks eligible for failure/slow-down.
    pub disks: usize,
    /// Disk failures to draw (each followed by a replacement after
    /// `repair_after`, if nonzero).
    pub disk_failures: usize,
    /// Delay between a drawn failure and its replacement
    /// (`Time::ZERO` leaves the array degraded).
    pub repair_after: Time,
    /// Limping-disk episodes to draw.
    pub slowdowns: usize,
    /// Service-time multiplier for drawn slow-downs.
    pub slow_factor: f64,
    /// Length of each drawn slow-down episode.
    pub slow_duration: Time,
    /// NFS server stall windows to draw.
    pub server_stalls: usize,
    /// Length of each drawn stall window.
    pub stall_duration: Time,
    /// PFS I/O servers eligible for failure/slow-down (0 disables the
    /// PFS draws entirely).
    pub pfs_servers: usize,
    /// PFS server crashes to draw (each followed by a recovery after
    /// `pfs_recover_after`, if nonzero).
    pub pfs_failures: usize,
    /// Delay between a drawn PFS server crash and its recovery
    /// (`Time::ZERO` leaves the server down for the rest of the run).
    pub pfs_recover_after: Time,
    /// Limping-PFS-server episodes to draw (reusing `slow_factor` and
    /// `slow_duration`).
    pub pfs_slowdowns: usize,
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile {
            disks: 1,
            disk_failures: 0,
            repair_after: Time::ZERO,
            slowdowns: 0,
            slow_factor: 3.0,
            slow_duration: Time::from_secs(5),
            server_stalls: 0,
            stall_duration: Time::from_millis(500),
            pfs_servers: 0,
            pfs_failures: 0,
            pfs_recover_after: Time::ZERO,
            pfs_slowdowns: 0,
        }
    }
}

/// A deterministic, time-sorted fault schedule.
///
/// The schedule is immutable after construction; consumers track their own
/// cursor and call [`due`](FaultSchedule::due) with nondecreasing `now`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// A schedule with no faults (the healthy baseline).
    pub fn none() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit events; events are stably sorted by
    /// time, so same-instant events keep their authoring order.
    pub fn new(mut events: Vec<FaultEvent>) -> FaultSchedule {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Draws a schedule from `seed` over `[Time::ZERO, horizon)` according
    /// to `profile`. Identical inputs yield identical schedules.
    pub fn random(seed: u64, horizon: Time, profile: &FaultProfile) -> FaultSchedule {
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::new();
        let span = horizon.as_nanos().max(1);
        let draw_at = |rng: &mut SplitMix64| Time::from_nanos(rng.next_below(span));
        for _ in 0..profile.disk_failures {
            let at = draw_at(&mut rng);
            let disk = rng.next_below(profile.disks.max(1) as u64) as usize;
            events.push(FaultEvent {
                at,
                fault: Fault::DiskFail { disk },
            });
            if profile.repair_after > Time::ZERO {
                events.push(FaultEvent {
                    at: at + profile.repair_after,
                    fault: Fault::DiskReplace { disk },
                });
            }
        }
        for _ in 0..profile.slowdowns {
            let at = draw_at(&mut rng);
            let disk = rng.next_below(profile.disks.max(1) as u64) as usize;
            events.push(FaultEvent {
                at,
                fault: Fault::DiskSlow {
                    disk,
                    factor: profile.slow_factor,
                },
            });
            events.push(FaultEvent {
                at: at + profile.slow_duration,
                fault: Fault::DiskRecover { disk },
            });
        }
        for _ in 0..profile.server_stalls {
            events.push(FaultEvent {
                at: draw_at(&mut rng),
                fault: Fault::ServerStall {
                    duration: profile.stall_duration,
                },
            });
        }
        // PFS draws come last so profiles without them (every pre-existing
        // profile) consume the identical RNG sequence as before.
        for _ in 0..profile.pfs_failures {
            let at = draw_at(&mut rng);
            let server = rng.next_below(profile.pfs_servers.max(1) as u64) as usize;
            events.push(FaultEvent {
                at,
                fault: Fault::PfsServerFail { server },
            });
            if profile.pfs_recover_after > Time::ZERO {
                events.push(FaultEvent {
                    at: at + profile.pfs_recover_after,
                    fault: Fault::PfsServerRecover { server },
                });
            }
        }
        for _ in 0..profile.pfs_slowdowns {
            let at = draw_at(&mut rng);
            let server = rng.next_below(profile.pfs_servers.max(1) as u64) as usize;
            events.push(FaultEvent {
                at,
                fault: Fault::PfsServerSlow {
                    server,
                    factor: profile.slow_factor,
                },
            });
            events.push(FaultEvent {
                at: at + profile.slow_duration,
                fault: Fault::PfsServerSlow {
                    server,
                    factor: 1.0,
                },
            });
        }
        FaultSchedule::new(events)
    }

    /// Draws a schedule for one named campaign cell: the effective seed is
    /// derived from `base_seed` and `label` (e.g. `"app::config"`), so the
    /// schedule depends only on the cell's identity — not on how many other
    /// cells were drawn first or on which worker thread runs it. Parallel
    /// and sequential campaigns therefore inject identical faults per cell.
    pub fn random_for(
        base_seed: u64,
        label: &str,
        horizon: Time,
        profile: &FaultProfile,
    ) -> FaultSchedule {
        FaultSchedule::random(crate::rng::seed_for(base_seed, label), horizon, profile)
    }

    /// All events, time-sorted.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the schedule carries no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that have become due by `now`, starting at `*cursor`.
    /// Advances the cursor past the returned slice, so each event is
    /// delivered exactly once per cursor.
    pub fn due<'a>(&'a self, cursor: &mut usize, now: Time) -> &'a [FaultEvent] {
        let start = (*cursor).min(self.events.len());
        let mut end = start;
        while end < self.events.len() && self.events[end].at <= now {
            end += 1;
        }
        *cursor = end;
        &self.events[start..end]
    }

    /// Instant of the next event at or after `cursor`, if any — the *fault
    /// horizon* closed-form fast paths must not simulate past.
    pub fn next_at(&self, cursor: usize) -> Option<Time> {
        self.events.get(cursor).map(|e| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_schedule_sorts_by_time() {
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: Time::from_secs(2),
                fault: Fault::DiskFail { disk: 1 },
            },
            FaultEvent {
                at: Time::from_secs(1),
                fault: Fault::ServerStall {
                    duration: Time::from_millis(10),
                },
            },
        ]);
        assert_eq!(s.events()[0].at, Time::from_secs(1));
        assert_eq!(s.events()[1].at, Time::from_secs(2));
    }

    #[test]
    fn due_delivers_each_event_once() {
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: Time::from_secs(1),
                fault: Fault::DiskFail { disk: 0 },
            },
            FaultEvent {
                at: Time::from_secs(3),
                fault: Fault::DiskReplace { disk: 0 },
            },
        ]);
        let mut cursor = 0;
        assert!(s.due(&mut cursor, Time::from_millis(500)).is_empty());
        assert_eq!(s.due(&mut cursor, Time::from_secs(2)).len(), 1);
        assert!(s.due(&mut cursor, Time::from_secs(2)).is_empty());
        assert_eq!(s.due(&mut cursor, Time::from_secs(10)).len(), 1);
        assert!(s.due(&mut cursor, Time::from_secs(100)).is_empty());
    }

    #[test]
    fn random_schedule_is_deterministic_and_bounded() {
        let profile = FaultProfile {
            disks: 5,
            disk_failures: 2,
            repair_after: Time::from_secs(1),
            slowdowns: 1,
            server_stalls: 3,
            ..FaultProfile::default()
        };
        let horizon = Time::from_secs(60);
        let a = FaultSchedule::random(42, horizon, &profile);
        let b = FaultSchedule::random(42, horizon, &profile);
        assert_eq!(a, b);
        // 2 failures + 2 replacements + 1 slow + 1 recover + 3 stalls.
        assert_eq!(a.events().len(), 9);
        for e in a.events() {
            assert!(e.at < horizon + Time::from_secs(6));
        }
        let c = FaultSchedule::random(43, horizon, &profile);
        assert_ne!(a, c);
    }

    #[test]
    fn per_cell_schedules_are_order_independent() {
        let profile = FaultProfile {
            disks: 4,
            disk_failures: 1,
            server_stalls: 1,
            ..FaultProfile::default()
        };
        let horizon = Time::from_secs(30);
        // Identity determines the draw: drawing cells in any order (or from
        // any thread) yields the same schedule per cell.
        let a1 = FaultSchedule::random_for(7, "bt::JBOD", horizon, &profile);
        let b = FaultSchedule::random_for(7, "bt::RAID 5", horizon, &profile);
        let a2 = FaultSchedule::random_for(7, "bt::JBOD", horizon, &profile);
        assert_eq!(a1, a2);
        assert_ne!(a1, b, "distinct cells draw distinct schedules");
    }

    #[test]
    fn pfs_draws_extend_but_do_not_perturb_existing_profiles() {
        let base = FaultProfile {
            disks: 5,
            disk_failures: 1,
            server_stalls: 1,
            ..FaultProfile::default()
        };
        let horizon = Time::from_secs(60);
        let a = FaultSchedule::random(7, horizon, &base);
        // Adding PFS knobs draws *after* every existing loop: the shared
        // prefix of the schedule is identical event for event.
        let extended = FaultProfile {
            pfs_servers: 4,
            pfs_failures: 2,
            pfs_recover_after: Time::from_secs(3),
            pfs_slowdowns: 1,
            ..base.clone()
        };
        let b = FaultSchedule::random(7, horizon, &extended);
        let from_a: Vec<&FaultEvent> = a.events().iter().collect();
        let shared: Vec<&FaultEvent> = b
            .events()
            .iter()
            .filter(|e| {
                !matches!(
                    e.fault,
                    Fault::PfsServerFail { .. }
                        | Fault::PfsServerRecover { .. }
                        | Fault::PfsServerSlow { .. }
                )
            })
            .collect();
        assert_eq!(from_a, shared);
        // 2 fails + 2 recoveries + 1 slow + 1 un-slow.
        assert_eq!(b.events().len(), a.events().len() + 6);
        for e in b.events() {
            if let Fault::PfsServerFail { server }
            | Fault::PfsServerRecover { server }
            | Fault::PfsServerSlow { server, .. } = e.fault
            {
                assert!(server < 4);
            }
        }
        assert_eq!(b, FaultSchedule::random(7, horizon, &extended));
    }

    #[test]
    fn same_instant_events_keep_author_order() {
        let t = Time::from_secs(1);
        let s = FaultSchedule::new(vec![
            FaultEvent {
                at: t,
                fault: Fault::DiskFail { disk: 0 },
            },
            FaultEvent {
                at: t,
                fault: Fault::DiskReplace { disk: 0 },
            },
        ]);
        assert!(matches!(s.events()[0].fault, Fault::DiskFail { .. }));
        assert!(matches!(s.events()[1].fault, Fault::DiskReplace { .. }));
    }
}
