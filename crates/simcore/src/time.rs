//! Simulated time and bandwidth.
//!
//! [`Time`] is a nanosecond count used both for instants (time since the
//! start of a simulation) and durations. Keeping a single type avoids a
//! combinatorial explosion of conversions in the subsystem models; the
//! documentation of each API states which interpretation applies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated instant or duration, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(pub u64);

impl Time {
    /// The zero instant (simulation start) / the empty duration.
    pub const ZERO: Time = Time(0);
    /// The greatest representable time; useful as an "infinity" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Constructs a time from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Constructs a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Constructs a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Constructs a time from whole seconds.
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000)
    }

    /// Constructs a time from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs saturate to zero.
    pub fn from_secs_f64(s: f64) -> Time {
        if s <= 0.0 {
            return Time::ZERO;
        }
        Time((s * 1e9).round() as u64)
    }

    /// Constructs a time from fractional milliseconds (saturating at zero).
    pub fn from_millis_f64(ms: f64) -> Time {
        Time::from_secs_f64(ms / 1e3)
    }

    /// Constructs a time from fractional microseconds (saturating at zero).
    pub fn from_micros_f64(us: f64) -> Time {
        Time::from_secs_f64(us / 1e6)
    }

    /// Nanoseconds in this time.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `max(self - rhs, 0)`.
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, rhs: Time) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating addition: `min(self + rhs, Time::MAX)`. Unlike `+`, this
    /// never debug-asserts — use it where clamping at the "infinity"
    /// sentinel is the intended semantics (deadline arithmetic).
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar (see [`Time::saturating_add`]).
    pub const fn saturating_mul(self, rhs: u64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

// `Add`/`AddAssign`/`Mul` saturate at `Time::MAX` instead of wrapping.
// Instants near `Time::MAX` arise legitimately (`Bandwidth(0).time_for`
// returns the sentinel, watchdogs use "never" deadlines); wrapping them in
// release mode silently reorders time. Saturation keeps the sentinel
// absorbing, while the `debug_assert!` still flags overflow as a likely
// logic error in debug builds — callers that *intend* to clamp should say
// so via `saturating_add`/`saturating_mul`.
impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        let (sum, overflowed) = self.0.overflowing_add(rhs.0);
        debug_assert!(
            !overflowed,
            "Time addition overflow: {:?} + {:?}",
            Time(self.0),
            Time(rhs.0)
        );
        if overflowed {
            Time::MAX
        } else {
            Time(sum)
        }
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    fn mul(self, rhs: u64) -> Time {
        let (product, overflowed) = self.0.overflowing_mul(rhs);
        debug_assert!(
            !overflowed,
            "Time multiplication overflow: {:?} * {rhs}",
            Time(self.0)
        );
        if overflowed {
            Time::MAX
        } else {
            Time(product)
        }
    }
}

impl Div<u64> for Time {
    type Output = Time;
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// A transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Constructs a bandwidth from bytes per second.
    pub const fn from_bytes_per_sec(bps: u64) -> Bandwidth {
        Bandwidth(bps)
    }

    /// Constructs a bandwidth from mebibytes per second.
    pub const fn from_mib_per_sec(mibps: u64) -> Bandwidth {
        Bandwidth(mibps * 1024 * 1024)
    }

    /// Constructs a bandwidth from fractional MiB/s (saturating at zero).
    pub fn from_mib_per_sec_f64(mibps: f64) -> Bandwidth {
        if mibps <= 0.0 {
            return Bandwidth(0);
        }
        Bandwidth((mibps * 1024.0 * 1024.0).round() as u64)
    }

    /// Constructs a bandwidth from a link speed in megabits per second
    /// (decimal, as network links are specified).
    pub const fn from_megabits_per_sec(mbps: u64) -> Bandwidth {
        Bandwidth(mbps * 1_000_000 / 8)
    }

    /// Bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.0
    }

    /// This bandwidth in fractional MiB/s.
    pub fn as_mib_per_sec(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Time needed to move `bytes` at this rate, rounded up to the next
    /// nanosecond. A zero rate yields [`Time::MAX`] (the transfer never
    /// completes); zero bytes always take zero time.
    pub fn time_for(self, bytes: u64) -> Time {
        if bytes == 0 {
            return Time::ZERO;
        }
        if self.0 == 0 {
            return Time::MAX;
        }
        // u128 intermediate: bytes can be ~2^40 and the multiplier is 10^9.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.0 as u128);
        Time(ns.min(u64::MAX as u128) as u64)
    }

    /// The rate achieved moving `bytes` in `elapsed`; zero elapsed gives a
    /// zero rate (callers treat that as "unmeasured").
    pub fn measured(bytes: u64, elapsed: Time) -> Bandwidth {
        if elapsed == Time::ZERO {
            return Bandwidth(0);
        }
        let bps = (bytes as u128 * 1_000_000_000u128) / elapsed.0 as u128;
        Bandwidth(bps.min(u64::MAX as u128) as u64)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MiB/s", self.as_mib_per_sec())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MiB/s", self.as_mib_per_sec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(Time::from_secs(2), Time::from_millis(2_000));
        assert_eq!(Time::from_millis(3), Time::from_micros(3_000));
        assert_eq!(Time::from_micros(5), Time::from_nanos(5_000));
        assert_eq!(Time::from_secs_f64(1.5), Time::from_millis(1_500));
        assert_eq!(Time::from_millis_f64(0.25), Time::from_micros(250));
        assert_eq!(Time::from_secs_f64(-1.0), Time::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let a = Time::from_secs(1);
        let b = Time::from_millis(500);
        assert_eq!(a + b, Time::from_millis(1_500));
        assert_eq!(a - b, Time::from_millis(500));
        assert_eq!(b * 4, Time::from_secs(2));
        assert_eq!(a / 4, Time::from_millis(250));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        let total: Time = [a, b, b].into_iter().sum();
        assert_eq!(total, Time::from_secs(2));
    }

    #[test]
    fn time_saturating_ops_clamp_at_max() {
        assert_eq!(Time::MAX.saturating_add(Time::from_secs(1)), Time::MAX);
        assert_eq!(Time::MAX.saturating_mul(2), Time::MAX);
        assert_eq!(
            Time::from_secs(1).saturating_add(Time::from_secs(2)),
            Time::from_secs(3)
        );
        assert_eq!(Time::from_secs(3).saturating_mul(2), Time::from_secs(6));
        assert_eq!(Time::MAX.checked_add(Time::from_nanos(1)), None);
    }

    // Regression: `Time::MAX + x` used to wrap in release builds, turning a
    // watchdog "never" deadline into an instant in the distant past. The
    // operators now saturate; in debug builds they additionally assert.
    #[cfg(not(debug_assertions))]
    #[test]
    fn time_add_saturates_in_release() {
        assert_eq!(Time::MAX + Time::from_secs(1), Time::MAX);
        let mut t = Time::MAX;
        t += Time::from_nanos(7);
        assert_eq!(t, Time::MAX);
        assert_eq!(Time::MAX * 3, Time::MAX);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "Time addition overflow")]
    fn time_add_overflow_asserts_in_debug() {
        let _ = Time::MAX + Time::from_nanos(1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "Time multiplication overflow")]
    fn time_mul_overflow_asserts_in_debug() {
        let _ = Time::MAX * 2;
    }

    #[test]
    fn time_display_picks_sensible_unit() {
        assert_eq!(format!("{}", Time::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", Time::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", Time::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", Time::from_secs(12)), "12.000s");
    }

    #[test]
    fn bandwidth_time_for_rounds_up() {
        let bw = Bandwidth::from_bytes_per_sec(3);
        // 1 byte at 3 B/s = 333333333.33.. ns -> rounds up.
        assert_eq!(bw.time_for(1), Time(333_333_334));
        assert_eq!(bw.time_for(3), Time::from_secs(1));
        assert_eq!(bw.time_for(0), Time::ZERO);
    }

    #[test]
    fn bandwidth_zero_rate_never_completes() {
        assert_eq!(Bandwidth(0).time_for(1), Time::MAX);
    }

    #[test]
    fn bandwidth_large_transfer_no_overflow() {
        let bw = Bandwidth::from_mib_per_sec(100);
        let one_tib = 1024u64 * 1024 * 1024 * 1024;
        // 1 TiB at 100 MiB/s = 10485.76 s.
        let t = bw.time_for(one_tib);
        assert!((t.as_secs_f64() - 10_485.76).abs() < 1e-3);
    }

    #[test]
    fn bandwidth_measured_inverts_time_for() {
        let bw = Bandwidth::from_mib_per_sec(113);
        let bytes = 77 * 1024 * 1024;
        let t = bw.time_for(bytes);
        let back = Bandwidth::measured(bytes, t);
        let rel = (back.bytes_per_sec() as f64 - bw.bytes_per_sec() as f64).abs()
            / bw.bytes_per_sec() as f64;
        assert!(rel < 1e-6, "relative error {rel}");
    }

    #[test]
    fn bandwidth_from_megabits() {
        // 1 Gb/s = 125 MB/s = 125_000_000 B/s.
        assert_eq!(
            Bandwidth::from_megabits_per_sec(1000).bytes_per_sec(),
            125_000_000
        );
    }

    #[test]
    fn measured_zero_elapsed_is_zero_rate() {
        assert_eq!(Bandwidth::measured(100, Time::ZERO), Bandwidth(0));
    }
}
