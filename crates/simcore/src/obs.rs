//! Observability: a lightweight event stream out of the simulated I/O path.
//!
//! Every layer of the path (MPI runtime, fabric, NFS, local filesystem,
//! volumes) calls [`emit`] at its chokepoints. The call is free when no
//! sink is installed — a thread-local `bool` is checked before the event
//! is even constructed, so the hot paths (the slab event queue, the bulk
//! closed forms) pay one predictable branch and nothing else. Installing
//! a sink is per-thread and scoped by an RAII [`ObsGuard`], which makes
//! collection safe under the parallel campaign scheduler: each campaign
//! cell runs wholly on one worker thread and observes only itself.
//!
//! The closed-form bulk paths emit **aggregate** events (`ops > 1`)
//! carrying the same totals the event-granular loop would have produced
//! one event at a time, so a trace taken with fast paths on and off
//! aggregates identically.

use crate::time::Time;
use std::cell::{Cell, RefCell};

/// One event out of the simulated I/O path.
///
/// Variants carry plain data only (no references into the simulation), so
/// sinks may retain them. Times are simulated time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObsEvent {
    /// An MPI-level primitive completed on a rank (begin = `start`,
    /// end = `end`). `bytes` is the payload for data operations, 0
    /// otherwise.
    MpiOp {
        /// Executing rank.
        rank: usize,
        /// Primitive label (`"write"`, `"read"`, `"barrier"`, ...).
        label: &'static str,
        /// When the primitive began.
        start: Time,
        /// When it completed.
        end: Time,
        /// Payload bytes (0 for non-data primitives).
        bytes: u64,
        /// Whether this primitive is file I/O (vs. compute/comm).
        io: bool,
    },
    /// A fabric message was delivered (`from == to` is loopback). A
    /// dropped-and-retransmitted message emits once per wire crossing.
    NetSend {
        /// Sending node.
        from: usize,
        /// Receiving node.
        to: usize,
        /// Message bytes.
        bytes: u64,
        /// When the send was issued.
        start: Time,
        /// When the last byte (plus link latency) arrived.
        end: Time,
    },
    /// An NFS RPC was retransmitted after a minor timeout.
    NfsRetry {
        /// RPC procedure (`"WRITE"`, `"READ"`, ...).
        op: &'static str,
        /// When the expired timeout's deadline passed.
        at: Time,
        /// The attempt that timed out (1-based).
        attempt: u32,
    },
    /// A local-filesystem page-cache lookup was served (fully, partially
    /// or not at all) from memory.
    CacheAccess {
        /// Bytes found in the cache.
        hit_bytes: u64,
        /// Bytes that had to come from the device.
        miss_bytes: u64,
        /// Lookup instant.
        at: Time,
    },
    /// Dirty ranges were evicted from the page cache to make room and had
    /// to reach the device before the evictor could continue.
    CacheEvict {
        /// Dirty bytes written out.
        bytes: u64,
        /// Eviction instant.
        at: Time,
    },
    /// The local filesystem wrote dirty ranges back to its volume
    /// (throttling drain, fsync, sync).
    Writeback {
        /// Bytes written back.
        bytes: u64,
        /// When the writeback started.
        start: Time,
        /// When the device acknowledged the last range.
        end: Time,
    },
    /// A volume granted a chunked transfer run. `ops` is the number of
    /// chunk grants the run decomposed into: the closed-form bulk path
    /// emits one aggregate event with `ops > 1`, the granular loop emits
    /// the identical aggregate after its last chunk.
    StorageRun {
        /// Volume kind (`"RAID 5"`, `"JBOD"`, ...).
        volume: &'static str,
        /// Whether the run was a write.
        write: bool,
        /// Total bytes across all chunks.
        bytes: u64,
        /// Chunk grants in the run.
        ops: u64,
        /// Arrival of the run.
        start: Time,
        /// Acknowledgement of the last chunk.
        end: Time,
        /// Whether the closed-form bulk path served the run.
        bulk: bool,
    },
    /// A single volume grant outside a chunked run (cache-miss reads,
    /// evictions, metadata).
    StorageIo {
        /// Volume kind.
        volume: &'static str,
        /// Whether the request was a write.
        write: bool,
        /// Request bytes.
        bytes: u64,
        /// Arrival.
        start: Time,
        /// Acknowledgement.
        end: Time,
    },
    /// A PFS client RPC to an unresponsive I/O server was retransmitted
    /// after a minor timeout.
    PfsRetry {
        /// RPC procedure (`"WRITE"`, `"READ"`, `"META"`).
        op: &'static str,
        /// The unresponsive I/O server.
        server: usize,
        /// When the expired timeout's deadline passed.
        at: Time,
        /// The attempt that timed out (1-based).
        attempt: u32,
    },
    /// A PFS span was served by a surviving replica holder after its
    /// preferred server was declared dead.
    PfsFailover {
        /// RPC procedure that failed over (`"READ"`, `"META"`).
        op: &'static str,
        /// The dead preferred server.
        from: usize,
        /// The surviving replica holder that served the span.
        to: usize,
        /// When the failed-over RPC was issued.
        at: Time,
    },
    /// A recovered PFS I/O server caught up the writes it missed from its
    /// replica peers.
    PfsResync {
        /// The recovered server.
        server: usize,
        /// Bytes replayed onto it.
        bytes: u64,
        /// When the catch-up started.
        start: Time,
        /// When the last missed extent was durable again.
        end: Time,
    },
    /// A filesystem-level metadata operation (mdtest verb) completed on
    /// its backend. Emitted by the cluster machine after routing the verb
    /// to the directory's mount, so one op emits exactly one event.
    MetaOp {
        /// Verb label (`"create"`, `"stat"`, `"unlink"`, `"mkdir"`,
        /// `"readdir"`).
        op: &'static str,
        /// When the operation was issued.
        start: Time,
        /// When the backend completed it.
        end: Time,
    },
    /// A fault-schedule event was applied to the I/O system.
    FaultApplied {
        /// Fault label (`"disk_fail"`, `"disk_replace"`, ...).
        kind: &'static str,
        /// Injection instant.
        at: Time,
    },
}

impl ObsEvent {
    /// Schema label of the variant (stable across versions of the JSONL
    /// export; see `core::obs`).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::MpiOp { .. } => "mpi_op",
            ObsEvent::NetSend { .. } => "net_send",
            ObsEvent::NfsRetry { .. } => "nfs_retry",
            ObsEvent::CacheAccess { .. } => "cache_access",
            ObsEvent::CacheEvict { .. } => "cache_evict",
            ObsEvent::Writeback { .. } => "writeback",
            ObsEvent::StorageRun { .. } => "storage_run",
            ObsEvent::StorageIo { .. } => "storage_io",
            ObsEvent::PfsRetry { .. } => "pfs_retry",
            ObsEvent::PfsFailover { .. } => "pfs_failover",
            ObsEvent::PfsResync { .. } => "pfs_resync",
            ObsEvent::MetaOp { .. } => "meta_op",
            ObsEvent::FaultApplied { .. } => "fault",
        }
    }
}

/// Consumer of [`ObsEvent`]s. Implementations live on the thread that
/// runs the simulation; events arrive in emission order.
pub trait ObsSink {
    /// Records one event.
    fn event(&mut self, ev: &ObsEvent);
}

/// The disabled default: ignores everything. Installing `NoSink` is
/// equivalent to installing nothing — [`emit`] still constructs events —
/// so leave the sink uninstalled for zero-cost disabled operation; this
/// type exists for tests and as the explicit name of "observation off".
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSink;

impl ObsSink for NoSink {
    fn event(&mut self, _ev: &ObsEvent) {}
}

thread_local! {
    /// Fast flag checked by [`emit`] before anything else. Kept separate
    /// from `SINK` so the disabled path never touches the `RefCell`.
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SINK: RefCell<Option<Box<dyn ObsSink>>> = const { RefCell::new(None) };
}

/// Whether a sink is installed on the current thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Emits an event to the current thread's sink. `build` runs only when a
/// sink is installed, so instrumentation points pay a single predictable
/// branch when observation is off.
#[inline]
pub fn emit(build: impl FnOnce() -> ObsEvent) {
    if enabled() {
        deliver(build());
    }
}

#[cold]
fn deliver(ev: ObsEvent) {
    SINK.with(|s| {
        // Re-entrant emits (a sink whose event handler itself emits) find
        // the RefCell borrowed; drop them instead of panicking.
        if let Ok(mut slot) = s.try_borrow_mut() {
            if let Some(sink) = slot.as_mut() {
                sink.event(&ev);
            }
        }
    });
}

/// Installs `sink` as the current thread's observer; returns a guard that
/// restores the previous sink (usually none) when dropped. Share state
/// with the sink (e.g. via `Rc<RefCell<..>>`) to read results back after
/// the guard is gone.
#[must_use = "the sink is uninstalled when the guard drops"]
pub fn install(sink: Box<dyn ObsSink>) -> ObsGuard {
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    let was_enabled = ENABLED.with(|e| e.replace(true));
    ObsGuard { prev, was_enabled }
}

/// RAII scope of an installed sink (see [`install`]).
pub struct ObsGuard {
    prev: Option<Box<dyn ObsSink>>,
    was_enabled: bool,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ENABLED.with(|e| e.set(self.was_enabled));
        SINK.with(|s| {
            *s.borrow_mut() = self.prev.take();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A sink that counts into shared state.
    struct Counter(Rc<RefCell<Vec<&'static str>>>);

    impl ObsSink for Counter {
        fn event(&mut self, ev: &ObsEvent) {
            self.0.borrow_mut().push(ev.kind());
        }
    }

    fn fault_event() -> ObsEvent {
        ObsEvent::FaultApplied {
            kind: "disk_fail",
            at: Time::from_secs(1),
        }
    }

    #[test]
    fn emit_without_sink_is_a_no_op() {
        assert!(!enabled());
        emit(|| panic!("event must not be built when disabled"));
    }

    #[test]
    fn install_scopes_delivery_to_the_guard() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        {
            let _guard = install(Box::new(Counter(seen.clone())));
            assert!(enabled());
            emit(fault_event);
            emit(|| ObsEvent::CacheEvict {
                bytes: 4096,
                at: Time::ZERO,
            });
        }
        assert!(!enabled());
        emit(|| panic!("uninstalled after guard drop"));
        assert_eq!(*seen.borrow(), vec!["fault", "cache_evict"]);
    }

    #[test]
    fn nested_install_restores_the_outer_sink() {
        let outer = Rc::new(RefCell::new(Vec::new()));
        let inner = Rc::new(RefCell::new(Vec::new()));
        let _g1 = install(Box::new(Counter(outer.clone())));
        {
            let _g2 = install(Box::new(Counter(inner.clone())));
            emit(fault_event);
        }
        emit(fault_event);
        assert_eq!(inner.borrow().len(), 1);
        assert_eq!(outer.borrow().len(), 1);
    }

    #[test]
    fn no_sink_discards() {
        let mut s = NoSink;
        s.event(&fault_event());
    }

    #[test]
    fn event_kinds_are_stable() {
        assert_eq!(fault_event().kind(), "fault");
        let e = ObsEvent::MpiOp {
            rank: 0,
            label: "write",
            start: Time::ZERO,
            end: Time::from_secs(1),
            bytes: 1,
            io: true,
        };
        assert_eq!(e.kind(), "mpi_op");
    }
}
