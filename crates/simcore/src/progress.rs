//! Watchdog deadlines for supervised simulation runs.
//!
//! Long measurement campaigns die in two characteristic ways: a cell's
//! simulation *livelocks* (the event loop keeps spinning without advancing
//! simulated time — e.g. an op stream that yields zero-cost operations
//! forever) or it *runs away* (simulated time advances but never reaches
//! the end — e.g. a misconfigured workload computing for simulated years).
//! A [`Watchdog`] observes every executed primitive and aborts the run the
//! moment one of three budgets is exhausted:
//!
//! * a **simulated-time deadline** — the run's clock may not pass it;
//! * a **wall-clock budget** — host time spent inside the run;
//! * a **stall limit** — consecutive observations without any simulated
//!   progress (the livelock detector).
//!
//! The supervisor (e.g. the campaign runner) converts the returned
//! [`Abort`] into a typed cell outcome instead of losing the whole
//! campaign. [`WatchdogSpec`] is the cloneable recipe carried inside
//! options structs; [`WatchdogSpec::arm`] mints the stateful watchdog for
//! one run.

use crate::time::Time;
use serde::{Deserialize, Serialize};

/// Why a supervised run was aborted.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Abort {
    /// Simulated time passed the configured deadline.
    SimDeadline {
        /// The configured deadline (ns of simulated time).
        deadline: Time,
        /// The simulated instant that tripped the check.
        now: Time,
    },
    /// The run consumed its host wall-clock budget.
    WallBudget {
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// The event loop made `events` consecutive observations without any
    /// simulated-time progress: a livelocked run.
    Stalled {
        /// Consecutive no-progress observations.
        events: u64,
        /// The simulated instant the clock was stuck at.
        at: Time,
    },
}

impl Abort {
    /// Whether re-running the same cell can possibly change the outcome.
    /// Simulated-time aborts are deterministic; only wall-clock budgets
    /// depend on host conditions.
    pub fn is_deterministic(&self) -> bool {
        !matches!(self, Abort::WallBudget { .. })
    }
}

impl std::fmt::Display for Abort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Abort::SimDeadline { deadline, now } => {
                write!(f, "simulated deadline {deadline} exceeded at {now}")
            }
            Abort::WallBudget { budget_ms } => {
                write!(f, "wall-clock budget {budget_ms}ms exhausted")
            }
            Abort::Stalled { events, at } => {
                write!(f, "livelock: {events} events without progress at {at}")
            }
        }
    }
}

impl std::error::Error for Abort {}

/// Cloneable watchdog recipe (carried by options structs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogSpec {
    /// Abort once simulated time passes this instant (`None`: no limit).
    pub sim_deadline: Option<Time>,
    /// Abort once the run has spent this much host time (`None`: no limit).
    pub wall_budget_ms: Option<u64>,
    /// Abort after this many consecutive observations without simulated
    /// progress. High enough that legitimate zero-cost bursts (markers,
    /// parked collectives) never trip it.
    pub stall_limit: u64,
}

impl Default for WatchdogSpec {
    fn default() -> Self {
        WatchdogSpec {
            sim_deadline: None,
            wall_budget_ms: None,
            stall_limit: 10_000_000,
        }
    }
}

impl WatchdogSpec {
    /// A spec with only the simulated-time deadline set.
    pub fn sim_deadline(deadline: Time) -> WatchdogSpec {
        WatchdogSpec {
            sim_deadline: Some(deadline),
            ..WatchdogSpec::default()
        }
    }

    /// Sets the wall-clock budget in milliseconds.
    pub fn with_wall_budget_ms(mut self, ms: u64) -> WatchdogSpec {
        self.wall_budget_ms = Some(ms);
        self
    }

    /// Sets the livelock stall limit.
    pub fn with_stall_limit(mut self, events: u64) -> WatchdogSpec {
        self.stall_limit = events.max(1);
        self
    }

    /// Mints the stateful watchdog for one run (starts the wall clock).
    pub fn arm(&self) -> Watchdog {
        Watchdog {
            spec: self.clone(),
            started: std::time::Instant::now(),
            last_progress: Time::ZERO,
            stalled: 0,
            observations: 0,
        }
    }
}

/// Stateful per-run watchdog; feed it every executed primitive.
#[derive(Clone, Debug)]
pub struct Watchdog {
    spec: WatchdogSpec,
    started: std::time::Instant,
    last_progress: Time,
    stalled: u64,
    observations: u64,
}

/// How often (in observations) the host clock is sampled; `Instant::now`
/// is too expensive to call per simulated primitive.
const WALL_CHECK_MASK: u64 = 0xFFF;

impl Watchdog {
    /// Observes the run at simulated instant `now`; `Err` demands an abort.
    pub fn observe(&mut self, now: Time) -> Result<(), Abort> {
        self.observations += 1;
        if now > self.last_progress {
            self.last_progress = now;
            self.stalled = 0;
        } else {
            self.stalled += 1;
            if self.stalled >= self.spec.stall_limit {
                return Err(Abort::Stalled {
                    events: self.stalled,
                    at: self.last_progress,
                });
            }
        }
        if let Some(deadline) = self.spec.sim_deadline {
            if now > deadline {
                return Err(Abort::SimDeadline { deadline, now });
            }
        }
        if let Some(budget_ms) = self.spec.wall_budget_ms {
            if self.observations & WALL_CHECK_MASK == 0
                && self.started.elapsed().as_millis() as u64 >= budget_ms
            {
                return Err(Abort::WallBudget { budget_ms });
            }
        }
        Ok(())
    }

    /// Total observations so far (diagnostics).
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_watchdog_never_aborts() {
        let mut w = WatchdogSpec::default().arm();
        for i in 0..10_000u64 {
            w.observe(Time(i)).unwrap();
        }
        assert_eq!(w.observations(), 10_000);
    }

    #[test]
    fn sim_deadline_trips_once_passed() {
        let mut w = WatchdogSpec::sim_deadline(Time::from_secs(1)).arm();
        w.observe(Time::from_secs(1)).unwrap(); // at the deadline: fine
        let err = w.observe(Time::from_secs(2)).unwrap_err();
        assert!(matches!(err, Abort::SimDeadline { .. }));
        assert!(err.is_deterministic());
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn stall_limit_detects_livelock() {
        let mut w = WatchdogSpec::default().with_stall_limit(100).arm();
        w.observe(Time::from_millis(5)).unwrap();
        let mut aborted = None;
        for _ in 0..200 {
            if let Err(a) = w.observe(Time::from_millis(5)) {
                aborted = Some(a);
                break;
            }
        }
        match aborted.expect("stall must abort") {
            Abort::Stalled { events, at } => {
                assert_eq!(events, 100);
                assert_eq!(at, Time::from_millis(5));
            }
            other => panic!("unexpected abort {other:?}"),
        }
    }

    #[test]
    fn progress_resets_the_stall_counter() {
        let mut w = WatchdogSpec::default().with_stall_limit(10).arm();
        for i in 0..100u64 {
            // Advance every 5th observation: never 10 stalls in a row.
            let t = Time(i / 5);
            w.observe(t).unwrap();
        }
    }

    #[test]
    fn wall_budget_abort_is_not_deterministic() {
        let a = Abort::WallBudget { budget_ms: 10 };
        assert!(!a.is_deterministic());
    }

    #[test]
    fn zero_wall_budget_trips_on_the_sampled_observation() {
        let mut w = WatchdogSpec::default().with_wall_budget_ms(0).arm();
        let mut tripped = false;
        // The host clock is only sampled every WALL_CHECK_MASK+1
        // observations; a zero budget must trip on the first sample.
        for _ in 0..=(WALL_CHECK_MASK + 1) {
            if w.observe(Time(w.observations() + 1)).is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped);
    }

    #[test]
    fn abort_serializes_roundtrip() {
        let a = Abort::SimDeadline {
            deadline: Time::from_secs(3),
            now: Time::from_secs(4),
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: Abort = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
