//! A fast, deterministic, non-cryptographic hasher for hot-path maps.
//!
//! The default `std` hasher (SipHash-1-3) is keyed and DoS-resistant, which
//! simulation-internal maps keyed by small integers (file ids, offsets,
//! node indices) do not need; profiling showed `hash_one` taking a double-
//! digit share of a characterization cell. `FxHasher64` implements the
//! well-known Fx multiply-xor construction: one rotate, one xor and one
//! multiply per 8-byte word. It is fully deterministic across runs and
//! platforms of equal pointer width, which the campaign goldens rely on —
//! no map iteration order may ever feed results, and none does (the
//! simulation only uses point lookups on these maps).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx construction (a large odd constant with good
/// bit-dispersion properties).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A 64-bit Fx hasher: `state = (rotl5(state) ^ word) * SEED` per word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_word(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_word(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_word(n as u64);
        self.add_word((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_word(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher64`] instances.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A `HashMap` using [`FxHasher64`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher64`].
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn hashing_is_deterministic() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one(42u64), b.hash_one(42u64));
        assert_eq!(b.hash_one("a string"), b.hash_one("a string"));
        assert_ne!(b.hash_one(1u64), b.hash_one(2u64));
    }

    #[test]
    fn small_integer_keys_disperse() {
        let b = FxBuildHasher::default();
        let mut top_bytes = std::collections::HashSet::new();
        for k in 0u64..64 {
            top_bytes.insert(b.hash_one(k) >> 56);
        }
        // Sequential keys must not collapse into a few buckets.
        assert!(top_bytes.len() > 32, "only {} distinct", top_bytes.len());
    }

    #[test]
    fn byte_slices_hash_by_content_not_alignment() {
        let b = FxBuildHasher::default();
        let long = [7u8; 13];
        assert_eq!(b.hash_one(long.as_slice()), b.hash_one(vec![7u8; 13]));
        assert_ne!(b.hash_one(&[1u8, 2][..]), b.hash_one(&[1u8, 2, 0][..]));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for k in 0..1000u64 {
            m.insert(k, k * 3);
        }
        for k in 0..1000u64 {
            assert_eq!(m.get(&k), Some(&(k * 3)));
        }
    }
}
