//! Online statistics used by characterization and evaluation reports.

use crate::time::{Bandwidth, Time};
use serde::{Deserialize, Serialize};

/// Streaming mean / min / max / variance (Welford's algorithm).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.mean = mean;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Accumulates (bytes, elapsed) samples and reports the aggregate rate and
/// per-operation latency, matching the metrics the paper collects
/// (throughput, IOPs, latency).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferMeter {
    bytes: u64,
    busy: Time,
    ops: u64,
    latency: OnlineStats,
}

impl TransferMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation that moved `bytes` over `elapsed`.
    pub fn record(&mut self, bytes: u64, elapsed: Time) {
        self.bytes += bytes;
        self.busy += elapsed;
        self.ops += 1;
        self.latency.push(elapsed.as_secs_f64());
    }

    /// Total bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of operations.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Total time spent inside operations.
    pub fn busy_time(&self) -> Time {
        self.busy
    }

    /// Aggregate rate: total bytes over total in-operation time.
    pub fn rate(&self) -> Bandwidth {
        Bandwidth::measured(self.bytes, self.busy)
    }

    /// Operations per second of in-operation time (the paper's IOPs).
    pub fn iops(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Mean per-operation latency.
    pub fn mean_latency(&self) -> Time {
        Time::from_secs_f64(self.latency.mean())
    }

    /// Latency statistics in seconds.
    pub fn latency_stats(&self) -> &OnlineStats {
        &self.latency
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &TransferMeter) {
        self.bytes += other.bytes;
        self.busy += other.busy;
        self.ops += other.ops;
        self.latency.merge(&other.latency);
    }
}

/// A power-of-two bucketed histogram of byte sizes; used to summarize the
/// request-size mix an application generates at each I/O level.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// `buckets[i]` counts sizes in `[2^i, 2^(i+1))`; index 0 holds `[0,2)`.
    buckets: Vec<u64>,
    total: u64,
}

impl SizeHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one size.
    pub fn record(&mut self, size: u64) {
        let idx = if size < 2 {
            0
        } else {
            (63 - size.leading_zeros()) as usize
        };
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Iterates `(bucket_floor_bytes, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.total += other.total;
    }

    /// The floor of the most frequent bucket, or `None` when empty.
    pub fn mode_bucket(&self) -> Option<u64> {
        self.buckets
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| 1u64 << i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MIB;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential_push() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty.count(), 1);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn transfer_meter_rates() {
        let mut m = TransferMeter::new();
        m.record(MIB, Time::from_millis(10));
        m.record(MIB, Time::from_millis(10));
        // 2 MiB in 20 ms = 100 MiB/s.
        assert!((m.rate().as_mib_per_sec() - 100.0).abs() < 0.01);
        assert_eq!(m.ops(), 2);
        assert_eq!(m.bytes(), 2 * MIB);
        assert!((m.iops() - 100.0).abs() < 1e-9);
        assert_eq!(m.mean_latency(), Time::from_millis(10));
    }

    #[test]
    fn transfer_meter_empty() {
        let m = TransferMeter::new();
        assert_eq!(m.rate().bytes_per_sec(), 0);
        assert_eq!(m.iops(), 0.0);
        assert_eq!(m.mean_latency(), Time::ZERO);
    }

    #[test]
    fn transfer_meter_merge() {
        let mut a = TransferMeter::new();
        a.record(100, Time::from_secs(1));
        let mut b = TransferMeter::new();
        b.record(300, Time::from_secs(1));
        a.merge(&b);
        assert_eq!(a.bytes(), 400);
        assert_eq!(a.ops(), 2);
        assert_eq!(a.rate().bytes_per_sec(), 200);
    }

    #[test]
    fn size_histogram_buckets() {
        let mut h = SizeHistogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        h.record(1600);
        h.record(1600);
        let entries: Vec<_> = h.iter().collect();
        // [0,2): 2 items; [2,4): 2 items; [1024,2048): 3 items.
        assert_eq!(entries, vec![(1, 2), (2, 2), (1024, 3)]);
        assert_eq!(h.count(), 7);
        assert_eq!(h.mode_bucket(), Some(1024));
    }

    #[test]
    fn size_histogram_empty_mode() {
        assert_eq!(SizeHistogram::new().mode_bucket(), None);
    }
}
