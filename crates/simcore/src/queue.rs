//! A stable event queue.
//!
//! [`EventQueue`] orders events by timestamp; events with equal timestamps
//! are delivered in insertion order (FIFO). Stability matters for
//! reproducibility: rank programs frequently schedule several events at the
//! same instant (e.g. all ranks released by a barrier) and the methodology's
//! determinism tests require identical delivery order on every run.
//!
//! # Implementation
//!
//! Events live in a slab (a `Vec` arena with a free list), and a four-ary
//! min-heap orders compact `(timestamp, sequence, slot)` entries. Compared
//! to a `BinaryHeap` of boxed-up entries this removes the per-push
//! allocation entirely once the arena is warm — a simulation pushes and
//! pops millions of events over a nearly constant population, so after the
//! first few levels of growth every `schedule` reuses a freed slot. The
//! ordering key is stored *inline* in the heap entry (not looked up
//! through the slot index), so sifting never chases a pointer into the
//! arena; payloads, which can be large, never move during sifts. The
//! four-ary layout halves the tree depth, which trades slightly more
//! comparisons per sift-down for far fewer cache misses on the hot pop
//! path.
//!
//! Cancellation ([`EventQueue::cancel`]) is *lazy*: the slot's payload is
//! taken out immediately, but the heap entry stays behind as a tombstone
//! until it surfaces at the top, where it is purged. No decrease-key or
//! arbitrary-position removal is ever needed, so the heap stays a flat
//! array of `u32` indices.

use crate::time::Time;

/// Heap arity. Four keeps parent/child arithmetic shift-based and the tree
/// shallow; benchmarks on the simulator's event mix favour it over binary.
const D: usize = 4;

/// A handle to a scheduled event, returned by
/// [`EventQueue::schedule_cancellable`]. Handles are generation-checked:
/// once the event is delivered or cancelled the handle goes stale and
/// [`EventQueue::cancel`] returns `None`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventHandle {
    idx: u32,
    gen: u32,
}

struct Slot<T> {
    gen: u32,
    /// `Some` while the event is pending; `None` for a cancelled tombstone
    /// still sitting in the heap, or a vacant slot on the free list.
    item: Option<T>,
}

/// One heap entry: the full ordering key plus the payload's slot. Keeping
/// the key here (instead of dereferencing `slot`) makes every sift
/// comparison a sequential read of the heap array itself.
#[derive(Clone, Copy)]
struct HeapEntry {
    at: Time,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.at, self.seq)
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking.
pub struct EventQueue<T> {
    slots: Vec<Slot<T>>,
    /// Vacant slot indices available for reuse.
    free: Vec<u32>,
    /// Four-ary min-heap keyed by `(at, seq)`.
    heap: Vec<HeapEntry>,
    /// Pending (non-cancelled) events; `heap` may be longer by the number
    /// of tombstones below the top.
    live: usize,
    next_seq: u64,
    now: Time,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free: Vec::new(),
            heap: Vec::new(),
            live: 0,
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the current
    /// simulation time), or zero if nothing has been popped yet.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `item` for delivery at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// panics (in debug and release) rather than silently reordering time.
    pub fn schedule(&mut self, at: Time, item: T) {
        self.schedule_cancellable(at, item);
    }

    /// Schedules `item` at `now() + delay`.
    pub fn schedule_after(&mut self, delay: Time, item: T) {
        let at = self.now + delay;
        self.schedule(at, item);
    }

    /// Like [`EventQueue::schedule`], but returns a handle that can later
    /// be passed to [`EventQueue::cancel`].
    ///
    /// Panic audit (campaign-worker reachability): the past-scheduling
    /// assert below fires only on a caller logic error — every scheduling
    /// site derives `at` from `now() + delay` with unsigned delays — and
    /// no op-program or configuration input can produce it, so it stays a
    /// panic (caught by the worker's panic isolation if a model bug ever
    /// introduces one) rather than a typed error on the hot path.
    pub fn schedule_cancellable(&mut self, at: Time, item: T) -> EventHandle {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].item = Some(item);
                idx
            }
            None => {
                // Panic audit: >4 billion *simultaneously pending* events
                // would need hundreds of GiB of host memory first; watchdog
                // budgets abort runaway simulations long before. Invariant,
                // not an input-reachable failure.
                let idx = u32::try_from(self.slots.len()).expect("event arena exceeds u32 slots");
                self.slots.push(Slot {
                    gen: 0,
                    item: Some(item),
                });
                idx
            }
        };
        self.heap.push(HeapEntry { at, seq, slot: idx });
        self.sift_up(self.heap.len() - 1);
        self.live += 1;
        EventHandle {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    /// Cancels a pending event, returning its payload. Returns `None` when
    /// the handle is stale (the event was already delivered or cancelled).
    ///
    /// The heap entry is *not* removed here; it becomes a tombstone that is
    /// discarded when it reaches the top (lazy deletion — no decrease-key,
    /// no arbitrary-position removal).
    pub fn cancel(&mut self, handle: EventHandle) -> Option<T> {
        let slot = self.slots.get_mut(handle.idx as usize)?;
        if slot.gen != handle.gen {
            return None;
        }
        let item = slot.item.take()?;
        self.live -= 1;
        // Keep the invariant that the heap top, if any, is a live event, so
        // `peek_time` stays O(1) and borrow-free.
        self.purge_dead_top();
        Some(item)
    }

    /// Removes and returns the earliest event, advancing [`Self::now`].
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let &top = self.heap.first()?;
        // The top is live by invariant (tombstones are purged as soon as
        // they surface). Panic audit: the expect below is unreachable
        // unless the purge discipline itself regresses — a heap bug, not
        // anything an op program or configuration can trigger.
        let item = self.slots[top.slot as usize]
            .item
            .take()
            .expect("top is live");
        self.live -= 1;
        self.remove_top();
        self.purge_dead_top();
        self.now = top.at;
        Some((top.at, item))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Removes `heap[0]`, retiring its slot to the free list.
    fn remove_top(&mut self) {
        let top = self.heap.swap_remove(0);
        self.retire(top.slot);
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    /// Discards cancelled entries that surfaced at the heap top.
    fn purge_dead_top(&mut self) {
        while let Some(&e) = self.heap.first() {
            if self.slots[e.slot as usize].item.is_some() {
                break;
            }
            self.remove_top();
        }
    }

    fn retire(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        slot.item = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(idx);
    }

    fn sift_up(&mut self, mut pos: usize) {
        let moved = self.heap[pos];
        let key = moved.key();
        while pos > 0 {
            let parent = (pos - 1) / D;
            if self.heap[parent].key() <= key {
                break;
            }
            self.heap[pos] = self.heap[parent];
            pos = parent;
        }
        self.heap[pos] = moved;
    }

    fn sift_down(&mut self, mut pos: usize) {
        let moved = self.heap[pos];
        let key = moved.key();
        loop {
            let first_child = pos * D + 1;
            if first_child >= self.heap.len() {
                break;
            }
            let last_child = (first_child + D).min(self.heap.len());
            let mut best = first_child;
            let mut best_key = self.heap[first_child].key();
            for c in first_child + 1..last_child {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if key <= best_key {
                break;
            }
            self.heap[pos] = self.heap[best];
            pos = best;
        }
        self.heap[pos] = moved;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(3), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(2), "b");
        assert_eq!(q.pop(), Some((Time::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_secs(2), ());
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1);
        q.pop();
        q.schedule_after(Time::from_secs(4), 2);
        assert_eq!(q.pop(), Some((Time::from_secs(5), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, ());
        q.schedule(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(Time::ZERO));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1u32);
        q.schedule(Time::from_secs(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Time::from_secs(3), 3);
        q.schedule(Time::from_secs(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }

    #[test]
    fn cancel_removes_event_and_returns_payload() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), "keep");
        let h = q.schedule_cancellable(Time::from_secs(2), "drop");
        q.schedule(Time::from_secs(3), "last");
        assert_eq!(q.len(), 3);
        assert_eq!(q.cancel(h), Some("drop"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((Time::from_secs(1), "keep")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "last")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_is_idempotent_and_stale_after_delivery() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(Time::from_secs(1), 42);
        assert_eq!(q.cancel(h), Some(42));
        assert_eq!(q.cancel(h), None, "double cancel");
        let h2 = q.schedule_cancellable(Time::from_secs(2), 43);
        assert_eq!(q.pop(), Some((Time::from_secs(2), 43)));
        assert_eq!(q.cancel(h2), None, "cancel after delivery");
    }

    #[test]
    fn stale_handle_does_not_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(Time::from_secs(1), 1u32);
        q.pop();
        // The delivered event's slot is reused; the old handle must not
        // reach the new occupant.
        let _h2 = q.schedule_cancellable(Time::from_secs(2), 2u32);
        assert_eq!(q.cancel(h), None);
        assert_eq!(q.pop(), Some((Time::from_secs(2), 2)));
    }

    #[test]
    fn cancelled_top_is_purged_for_peek() {
        let mut q = EventQueue::new();
        let h = q.schedule_cancellable(Time::from_secs(1), 1u32);
        q.schedule(Time::from_secs(2), 2);
        assert_eq!(q.peek_time(), Some(Time::from_secs(1)));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_secs(2)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_everything_empties_the_queue() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..50)
            .map(|i| q.schedule_cancellable(Time::from_millis(i % 7), i))
            .collect();
        for h in handles {
            assert!(q.cancel(h).is_some());
        }
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slab_reuses_slots_across_pop_cycles() {
        // Steady-state churn: the arena must not grow past the peak
        // population, and ordering must survive heavy slot reuse.
        let mut q = EventQueue::new();
        for round in 0..200u64 {
            q.schedule(Time::from_nanos(round * 10 + 5), round);
            q.schedule(Time::from_nanos(round * 10 + 5), round + 1000);
            let (_, first) = q.pop().unwrap();
            let (_, second) = q.pop().unwrap();
            assert_eq!(first, round);
            assert_eq!(second, round + 1000);
        }
        assert!(q.slots.len() <= 4, "arena grew despite reuse");
    }

    #[test]
    fn randomized_order_matches_reference_sort() {
        // Deterministic pseudo-random mix of schedules and cancels checked
        // against a sorted reference.
        let mut q = EventQueue::new();
        let mut expect: Vec<(Time, u64)> = Vec::new();
        let mut handles = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let at = Time::from_nanos(x % 64);
            let h = q.schedule_cancellable(at, i);
            if x.is_multiple_of(5) {
                handles.push((h, at, i));
            } else {
                expect.push((at, i));
            }
        }
        for (h, _, _) in &handles {
            assert!(q.cancel(*h).is_some());
        }
        expect.sort(); // (at, seq-order) — seq equals insertion index here
        let mut got = Vec::new();
        while let Some((at, i)) = q.pop() {
            got.push((at, i));
        }
        assert_eq!(got, expect);
    }
}
