//! A stable event queue.
//!
//! [`EventQueue`] orders events by timestamp; events with equal timestamps
//! are delivered in insertion order (FIFO). Stability matters for
//! reproducibility: rank programs frequently schedule several events at the
//! same instant (e.g. all ranks released by a barrier) and the methodology's
//! determinism tests require identical delivery order on every run.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest
        // sequence number) event is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with stable FIFO tie-breaking.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    now: Time,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Time::ZERO,
        }
    }

    /// The timestamp of the most recently popped event (the current
    /// simulation time), or zero if nothing has been popped yet.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedules `item` for delivery at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error in the caller; the queue
    /// panics (in debug and release) rather than silently reordering time.
    pub fn schedule(&mut self, at: Time, item: T) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, item });
    }

    /// Schedules `item` at `now() + delay`.
    pub fn schedule_after(&mut self, delay: Time, item: T) {
        let at = self.now + delay;
        self.schedule(at, item);
    }

    /// Removes and returns the earliest event, advancing [`Self::now`].
    pub fn pop(&mut self) -> Option<(Time, T)> {
        let entry = self.heap.pop()?;
        self.now = entry.at;
        Some((entry.at, entry.item))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(3), "c");
        q.schedule(Time::from_secs(1), "a");
        q.schedule(Time::from_secs(2), "b");
        assert_eq!(q.pop(), Some((Time::from_secs(1), "a")));
        assert_eq!(q.pop(), Some((Time::from_secs(2), "b")));
        assert_eq!(q.pop(), Some((Time::from_secs(3), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_timestamps_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Time::ZERO);
        q.schedule(Time::from_secs(2), ());
        q.pop();
        assert_eq!(q.now(), Time::from_secs(2));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1);
        q.pop();
        q.schedule_after(Time::from_secs(4), 2);
        assert_eq!(q.pop(), Some((Time::from_secs(5), 2)));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(10), ());
        q.pop();
        q.schedule(Time::from_secs(1), ());
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(Time::ZERO, ());
        q.schedule(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert_eq!(q.peek_time(), Some(Time::ZERO));
        q.pop();
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_schedule_pop_preserves_order() {
        let mut q = EventQueue::new();
        q.schedule(Time::from_secs(1), 1u32);
        q.schedule(Time::from_secs(5), 5);
        assert_eq!(q.pop().unwrap().1, 1);
        q.schedule(Time::from_secs(3), 3);
        q.schedule(Time::from_secs(4), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
        assert_eq!(q.pop().unwrap().1, 5);
    }
}
