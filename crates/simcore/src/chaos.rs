//! Deterministic host-fault injection for the campaign runtime.
//!
//! The simulators model faults *inside* the simulated cluster
//! ([`crate::faults`]); this module injects faults into the **host-side
//! infrastructure that runs campaigns** — checkpoint writes, store
//! serialization, worker threads, memo-cache loads, trace exports. Those
//! are the components a long-lived evaluation campaign actually dies on
//! (torn files, full disks, crashed workers), and the only way to trust
//! their recovery paths is to drive them deterministically.
//!
//! A [`HostFaultPlan`] is a finite list of [`Injection`]s, each naming an
//! instrumented [`ChaosSite`], the *n*-th hit of that site it fires on,
//! and a [`ChaosAction`]. Plans are seedable ([`HostFaultPlan::random`]),
//! round-trip through a compact replay token ([`HostFaultPlan::token`] /
//! [`HostFaultPlan::parse`], the `--chaos-repro` CLI value), and shrink to
//! a minimal reproducing schedule with [`shrink`].
//!
//! Instrumented code consults the process-global plan through
//! [`decide`] (or [`panic_point`] for worker panics). When no plan is
//! installed the probe is a single relaxed atomic load — the instrumented
//! hot paths cost nothing in production. Install is RAII
//! ([`install`] returns a [`ChaosGuard`]); tests that install plans must
//! serialize on their own mutex since the plan is process-wide.

use crate::rng::SplitMix64;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Panic-message prefix of chaos-injected worker panics. Supervisors treat
/// panics carrying this marker as *transient host faults*: always retried
/// (the simulation itself is deterministic and will re-run identically),
/// never recorded as a cell failure. Termination is guaranteed because a
/// plan is a finite set of hit indices.
pub const HOST_FAULT_PANIC: &str = "chaos-host-fault";

/// Whether a panic message came from [`panic_point`].
pub fn is_host_fault_panic(message: &str) -> bool {
    message.starts_with(HOST_FAULT_PANIC)
}

/// An instrumented point in the campaign runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosSite {
    /// One checkpoint-file write attempt (`CheckpointDir::save`; every
    /// retry is a fresh hit).
    CheckpointWrite,
    /// One store serialization of a campaign artifact.
    StoreSerialize,
    /// One campaign-cell execution on a worker thread (the cell boundary).
    WorkerPanic,
    /// One memo-cache entry load.
    MemoLoad,
    /// One trace/artifact export write.
    TraceWrite,
}

impl ChaosSite {
    /// Every site, in token order.
    pub const ALL: [ChaosSite; 5] = [
        ChaosSite::CheckpointWrite,
        ChaosSite::StoreSerialize,
        ChaosSite::WorkerPanic,
        ChaosSite::MemoLoad,
        ChaosSite::TraceWrite,
    ];

    fn index(self) -> usize {
        match self {
            ChaosSite::CheckpointWrite => 0,
            ChaosSite::StoreSerialize => 1,
            ChaosSite::WorkerPanic => 2,
            ChaosSite::MemoLoad => 3,
            ChaosSite::TraceWrite => 4,
        }
    }

    /// Stable token tag (`ckpt`, `ser`, `panic`, `memo`, `trace`).
    pub fn tag(self) -> &'static str {
        match self {
            ChaosSite::CheckpointWrite => "ckpt",
            ChaosSite::StoreSerialize => "ser",
            ChaosSite::WorkerPanic => "panic",
            ChaosSite::MemoLoad => "memo",
            ChaosSite::TraceWrite => "trace",
        }
    }

    fn from_tag(tag: &str) -> Option<ChaosSite> {
        ChaosSite::ALL.into_iter().find(|s| s.tag() == tag)
    }
}

impl fmt::Display for ChaosSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// What an injection does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChaosAction {
    /// The operation fails with a generic I/O error.
    Fail,
    /// Torn write: only `sixteenths/16` of the bytes reach the target
    /// before the write fails (checkpoint-write site only; other sites
    /// treat it as [`ChaosAction::Fail`]).
    Torn {
        /// Sixteenths of the payload written before the tear (1..=15).
        sixteenths: u8,
    },
    /// The write fails with "no space left on device".
    Enospc,
}

impl ChaosAction {
    fn token(self) -> String {
        match self {
            ChaosAction::Fail => "fail".to_string(),
            ChaosAction::Torn { sixteenths } => format!("torn{sixteenths}"),
            ChaosAction::Enospc => "enospc".to_string(),
        }
    }

    fn parse(s: &str) -> Option<ChaosAction> {
        match s {
            "fail" => Some(ChaosAction::Fail),
            "enospc" => Some(ChaosAction::Enospc),
            _ => {
                let n: u8 = s.strip_prefix("torn")?.parse().ok()?;
                (1..=15)
                    .contains(&n)
                    .then_some(ChaosAction::Torn { sixteenths: n })
            }
        }
    }
}

/// One planned host fault: fire `action` on the `nth` hit (0-based) of
/// `site` in this process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Injection {
    /// The instrumented site this fault fires at.
    pub site: ChaosSite,
    /// 0-based hit index of the site the fault fires on.
    pub nth: u64,
    /// What happens when it fires.
    pub action: ChaosAction,
}

impl Injection {
    fn token(&self) -> String {
        match self.action {
            // `fail` is the default action; omit it for short tokens.
            ChaosAction::Fail => format!("{}@{}", self.site.tag(), self.nth),
            _ => format!("{}@{}:{}", self.site.tag(), self.nth, self.action.token()),
        }
    }
}

/// How many injections of each kind [`HostFaultPlan::random`] draws, and
/// over what hit-index horizon.
#[derive(Clone, Debug)]
pub struct ChaosProfile {
    /// Checkpoint-write faults (action drawn among fail/torn/enospc).
    pub checkpoint_faults: u32,
    /// Store serialization errors.
    pub serialize_faults: u32,
    /// Worker panics at cell boundaries.
    pub worker_panics: u32,
    /// Memo-cache corruptions (digest mismatch on load).
    pub memo_corruptions: u32,
    /// Trace-export write errors.
    pub trace_faults: u32,
    /// Hit indices are drawn in `[0, horizon)`. Keep it around the number
    /// of times the campaign actually hits each site, or most injections
    /// never fire.
    pub horizon: u64,
}

impl ChaosProfile {
    /// A profile by name: `store`, `panic`, `memo`, `trace`, or `mixed`.
    pub fn named(name: &str) -> Option<ChaosProfile> {
        let zero = ChaosProfile {
            checkpoint_faults: 0,
            serialize_faults: 0,
            worker_panics: 0,
            memo_corruptions: 0,
            trace_faults: 0,
            horizon: 6,
        };
        match name {
            "store" => Some(ChaosProfile {
                checkpoint_faults: 3,
                serialize_faults: 1,
                ..zero
            }),
            "panic" => Some(ChaosProfile {
                worker_panics: 2,
                ..zero
            }),
            "memo" => Some(ChaosProfile {
                memo_corruptions: 2,
                ..zero
            }),
            "trace" => Some(ChaosProfile {
                trace_faults: 1,
                ..zero
            }),
            "mixed" => Some(ChaosProfile::mixed()),
            _ => None,
        }
    }

    /// A bit of everything — the default sweep profile.
    pub fn mixed() -> ChaosProfile {
        ChaosProfile {
            checkpoint_faults: 2,
            serialize_faults: 1,
            worker_panics: 1,
            memo_corruptions: 1,
            trace_faults: 1,
            horizon: 6,
        }
    }
}

/// A deterministic, finite schedule of host faults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostFaultPlan {
    /// The planned faults, sorted by `(site, nth, action)` with duplicate
    /// `(site, nth)` pairs removed (one fault per hit).
    pub injections: Vec<Injection>,
}

impl HostFaultPlan {
    /// The empty plan (nothing ever fires).
    pub fn none() -> HostFaultPlan {
        HostFaultPlan::default()
    }

    /// A plan with exactly one injection.
    pub fn single(site: ChaosSite, nth: u64, action: ChaosAction) -> HostFaultPlan {
        HostFaultPlan::from_injections(vec![Injection { site, nth, action }])
    }

    /// Normalizes `injections` into a plan: sorted, one fault per
    /// `(site, nth)` hit (first in sort order wins).
    pub fn from_injections(mut injections: Vec<Injection>) -> HostFaultPlan {
        injections.sort();
        injections.dedup_by_key(|i| (i.site, i.nth));
        HostFaultPlan { injections }
    }

    /// Draws a plan from `seed` under `profile`. Deterministic: the same
    /// `(seed, profile)` always yields the same plan, independent of any
    /// other RNG use in the process.
    pub fn random(seed: u64, profile: &ChaosProfile) -> HostFaultPlan {
        let mut rng = SplitMix64::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let horizon = profile.horizon.max(1);
        let mut injections = Vec::new();
        let mut draw = |site: ChaosSite, count: u32, rng: &mut SplitMix64| {
            for _ in 0..count {
                let nth = rng.next_below(horizon);
                let action = if site == ChaosSite::CheckpointWrite {
                    match rng.next_below(3) {
                        0 => ChaosAction::Fail,
                        1 => ChaosAction::Torn {
                            sixteenths: 1 + rng.next_below(15) as u8,
                        },
                        _ => ChaosAction::Enospc,
                    }
                } else {
                    ChaosAction::Fail
                };
                injections.push(Injection { site, nth, action });
            }
        };
        draw(
            ChaosSite::CheckpointWrite,
            profile.checkpoint_faults,
            &mut rng,
        );
        draw(
            ChaosSite::StoreSerialize,
            profile.serialize_faults,
            &mut rng,
        );
        draw(ChaosSite::WorkerPanic, profile.worker_panics, &mut rng);
        draw(ChaosSite::MemoLoad, profile.memo_corruptions, &mut rng);
        draw(ChaosSite::TraceWrite, profile.trace_faults, &mut rng);
        HostFaultPlan::from_injections(injections)
    }

    /// Number of planned injections.
    pub fn len(&self) -> usize {
        self.injections.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.injections.is_empty()
    }

    /// The compact replay token, e.g. `ckpt@2:torn8,panic@0,ser@1`.
    /// [`HostFaultPlan::parse`] round-trips it; the `repro` CLI accepts it
    /// as `--chaos-repro TOKEN`.
    pub fn token(&self) -> String {
        if self.injections.is_empty() {
            return "none".to_string();
        }
        self.injections
            .iter()
            .map(Injection::token)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses a replay token produced by [`HostFaultPlan::token`].
    pub fn parse(token: &str) -> Result<HostFaultPlan, String> {
        let token = token.trim();
        if token.is_empty() || token == "none" {
            return Ok(HostFaultPlan::none());
        }
        let mut injections = Vec::new();
        for part in token.split(',') {
            let part = part.trim();
            let (site_s, rest) = part
                .split_once('@')
                .ok_or_else(|| format!("bad injection '{part}': expected SITE@NTH[:ACTION]"))?;
            let site = ChaosSite::from_tag(site_s)
                .ok_or_else(|| format!("unknown site '{site_s}' in '{part}'"))?;
            let (nth_s, action_s) = match rest.split_once(':') {
                Some((n, a)) => (n, Some(a)),
                None => (rest, None),
            };
            let nth: u64 = nth_s
                .parse()
                .map_err(|_| format!("bad hit index '{nth_s}' in '{part}'"))?;
            let action = match action_s {
                None => ChaosAction::Fail,
                Some(a) => ChaosAction::parse(a)
                    .ok_or_else(|| format!("unknown action '{a}' in '{part}'"))?,
            };
            injections.push(Injection { site, nth, action });
        }
        Ok(HostFaultPlan::from_injections(injections))
    }
}

impl fmt::Display for HostFaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.token())
    }
}

/// An injection that actually fired, in firing order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fired {
    /// The site it fired at.
    pub site: ChaosSite,
    /// The hit index it fired on.
    pub nth: u64,
    /// The action it performed.
    pub action: ChaosAction,
}

struct ChaosState {
    plan: HostFaultPlan,
    hits: [u64; ChaosSite::ALL.len()],
    fired: Vec<Fired>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ChaosState>> = Mutex::new(None);

/// Installs `plan` process-wide and returns the RAII guard that removes it.
/// Only one plan can be active at a time; installing over an active plan
/// panics (serialize chaos tests on a mutex). Hit counters start at zero.
pub fn install(plan: HostFaultPlan) -> ChaosGuard {
    let mut state = STATE.lock().expect("chaos state lock");
    assert!(
        state.is_none(),
        "a chaos plan is already installed; drop its guard first"
    );
    *state = Some(ChaosState {
        plan,
        hits: [0; ChaosSite::ALL.len()],
        fired: Vec::new(),
    });
    ACTIVE.store(true, Ordering::Release);
    ChaosGuard { _private: () }
}

/// Uninstalls the plan when dropped and reports what fired.
pub struct ChaosGuard {
    _private: (),
}

impl ChaosGuard {
    /// Injections that have fired so far, in firing order.
    pub fn fired(&self) -> Vec<Fired> {
        STATE
            .lock()
            .expect("chaos state lock")
            .as_ref()
            .map(|s| s.fired.clone())
            .unwrap_or_default()
    }
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::Release);
        *STATE.lock().expect("chaos state lock") = None;
    }
}

/// Whether a plan is installed (one relaxed atomic load).
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Records one hit of `site` and returns the action to inject, if the
/// installed plan has a fault on this hit. Without an installed plan this
/// is a single atomic load.
pub fn decide(site: ChaosSite) -> Option<ChaosAction> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    decide_slow(site)
}

#[cold]
fn decide_slow(site: ChaosSite) -> Option<ChaosAction> {
    let mut state = STATE.lock().expect("chaos state lock");
    let state = state.as_mut()?;
    let n = state.hits[site.index()];
    state.hits[site.index()] = n + 1;
    let hit = state
        .plan
        .injections
        .iter()
        .find(|i| i.site == site && i.nth == n)
        .copied();
    if let Some(i) = hit {
        state.fired.push(Fired {
            site,
            nth: n,
            action: i.action,
        });
        eprintln!("[chaos] fired {} (hit {}, {:?})", site.tag(), n, i.action);
    }
    hit.map(|i| i.action)
}

/// A worker-panic injection point: panics with the [`HOST_FAULT_PANIC`]
/// marker when the plan has a fault on this hit of `site`.
pub fn panic_point(site: ChaosSite) {
    if decide(site).is_some() {
        panic!("{HOST_FAULT_PANIC}: injected worker panic");
    }
}

/// Shrinks a failing fault schedule to a 1-minimal reproducing schedule
/// (delta debugging): removing any single remaining injection makes the
/// failure disappear. `fails` must be deterministic and must return `true`
/// for `plan` itself (asserted). Returns the shrunk plan; print its
/// [`HostFaultPlan::token`] as the `--chaos-repro` reproduction recipe.
pub fn shrink(
    plan: &HostFaultPlan,
    fails: &mut dyn FnMut(&HostFaultPlan) -> bool,
) -> HostFaultPlan {
    assert!(
        fails(plan),
        "shrink: the schedule to shrink must reproduce the failure"
    );
    let mut cur = plan.injections.clone();
    // Delta debugging: try removing chunks, halving the chunk size each
    // round; at chunk size 1 keep sweeping until a full pass removes
    // nothing (1-minimality). Invariant: `cur` always fails.
    let mut chunk = cur.len().div_ceil(2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() && cur.len() > 1 {
            let end = (start + chunk).min(cur.len());
            let mut candidate = cur.clone();
            candidate.drain(start..end);
            if !candidate.is_empty()
                && fails(&HostFaultPlan {
                    injections: candidate.clone(),
                })
            {
                cur = candidate;
                reduced = true;
                // Re-scan from the front at this chunk size.
                start = 0;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !reduced {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    HostFaultPlan { injections: cur }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Chaos state is process-global; serialize the tests that install it.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn token_round_trips() {
        let plan = HostFaultPlan::from_injections(vec![
            Injection {
                site: ChaosSite::CheckpointWrite,
                nth: 2,
                action: ChaosAction::Torn { sixteenths: 8 },
            },
            Injection {
                site: ChaosSite::WorkerPanic,
                nth: 0,
                action: ChaosAction::Fail,
            },
            Injection {
                site: ChaosSite::StoreSerialize,
                nth: 1,
                action: ChaosAction::Fail,
            },
            Injection {
                site: ChaosSite::CheckpointWrite,
                nth: 4,
                action: ChaosAction::Enospc,
            },
        ]);
        let token = plan.token();
        assert_eq!(token, "ckpt@2:torn8,ckpt@4:enospc,ser@1,panic@0");
        assert_eq!(HostFaultPlan::parse(&token).unwrap(), plan);
        assert_eq!(HostFaultPlan::parse("none").unwrap(), HostFaultPlan::none());
        assert_eq!(HostFaultPlan::none().token(), "none");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(HostFaultPlan::parse("ckpt").is_err());
        assert!(HostFaultPlan::parse("nope@1").is_err());
        assert!(HostFaultPlan::parse("ckpt@x").is_err());
        assert!(HostFaultPlan::parse("ckpt@1:torn99").is_err());
        assert!(HostFaultPlan::parse("ckpt@1:melt").is_err());
    }

    #[test]
    fn duplicate_hits_keep_one_fault() {
        let plan = HostFaultPlan::from_injections(vec![
            Injection {
                site: ChaosSite::MemoLoad,
                nth: 3,
                action: ChaosAction::Fail,
            },
            Injection {
                site: ChaosSite::MemoLoad,
                nth: 3,
                action: ChaosAction::Fail,
            },
        ]);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn random_plans_are_deterministic_and_profile_shaped() {
        let p = ChaosProfile::mixed();
        let a = HostFaultPlan::random(7, &p);
        let b = HostFaultPlan::random(7, &p);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, HostFaultPlan::random(8, &p), "seed matters");
        assert!(!a.is_empty());
        let only_panics = ChaosProfile::named("panic").unwrap();
        let plan = HostFaultPlan::random(3, &only_panics);
        assert!(plan
            .injections
            .iter()
            .all(|i| i.site == ChaosSite::WorkerPanic));
        assert!(ChaosProfile::named("bogus").is_none());
    }

    #[test]
    fn decide_fires_on_the_nth_hit_only() {
        let _l = LOCK.lock().unwrap();
        let guard = install(HostFaultPlan::single(
            ChaosSite::CheckpointWrite,
            2,
            ChaosAction::Enospc,
        ));
        assert_eq!(decide(ChaosSite::CheckpointWrite), None); // hit 0
        assert_eq!(decide(ChaosSite::StoreSerialize), None); // other site
        assert_eq!(decide(ChaosSite::CheckpointWrite), None); // hit 1
        assert_eq!(
            decide(ChaosSite::CheckpointWrite),
            Some(ChaosAction::Enospc)
        ); // hit 2
        assert_eq!(decide(ChaosSite::CheckpointWrite), None); // hit 3
        let fired = guard.fired();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].nth, 2);
        drop(guard);
        assert!(!is_active());
        assert_eq!(decide(ChaosSite::CheckpointWrite), None, "uninstalled");
    }

    #[test]
    fn panic_point_panics_with_the_marker() {
        let _l = LOCK.lock().unwrap();
        let _guard = install(HostFaultPlan::single(
            ChaosSite::WorkerPanic,
            0,
            ChaosAction::Fail,
        ));
        let err = std::panic::catch_unwind(|| panic_point(ChaosSite::WorkerPanic)).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(is_host_fault_panic(msg), "{msg}");
        // Second hit: no injection, no panic.
        panic_point(ChaosSite::WorkerPanic);
    }

    #[test]
    fn shrink_finds_the_minimal_pair() {
        // The "failure" needs both a ckpt@1 and a panic@0 injection; noise
        // around them must be shrunk away.
        let need_a = Injection {
            site: ChaosSite::CheckpointWrite,
            nth: 1,
            action: ChaosAction::Fail,
        };
        let need_b = Injection {
            site: ChaosSite::WorkerPanic,
            nth: 0,
            action: ChaosAction::Fail,
        };
        let mut noisy = vec![need_a, need_b];
        for nth in 0..6 {
            noisy.push(Injection {
                site: ChaosSite::MemoLoad,
                nth,
                action: ChaosAction::Fail,
            });
            noisy.push(Injection {
                site: ChaosSite::TraceWrite,
                nth,
                action: ChaosAction::Fail,
            });
        }
        let plan = HostFaultPlan::from_injections(noisy);
        let mut calls = 0;
        let mut fails = |p: &HostFaultPlan| {
            calls += 1;
            p.injections.contains(&need_a) && p.injections.contains(&need_b)
        };
        let min = shrink(&plan, &mut fails);
        assert_eq!(
            min.injections,
            HostFaultPlan::from_injections(vec![need_a, need_b]).injections
        );
        assert!(calls < 200, "shrink exploded: {calls} predicate calls");
    }

    #[test]
    fn shrink_reduces_single_cause_to_one_injection() {
        let cause = Injection {
            site: ChaosSite::StoreSerialize,
            nth: 0,
            action: ChaosAction::Fail,
        };
        let mut noisy = vec![cause];
        for nth in 0..9 {
            noisy.push(Injection {
                site: ChaosSite::CheckpointWrite,
                nth,
                action: ChaosAction::Fail,
            });
        }
        let plan = HostFaultPlan::from_injections(noisy);
        let min = shrink(&plan, &mut |p| p.injections.contains(&cause));
        assert_eq!(min.injections, vec![cause]);
    }
}
