//! Deterministic pseudo-random numbers.
//!
//! Every stochastic component of the simulators (seek distances, busy-work
//! jitter, access-pattern shuffles) draws from a [`SplitMix64`] seeded by the
//! scenario, so identical scenarios produce byte-identical traces. SplitMix64
//! is tiny, fast, passes BigCrush for this usage, and — unlike thread-local
//! or OS-seeded generators — keeps the whole workspace reproducible.

use serde::{Deserialize, Serialize};

/// Derives a seed from a base seed and a textual label (FNV-1a over the
/// label, folded into the base). Campaign cells seed their stochastic
/// components with `seed_for(campaign_seed, "app::config")`, so every cell
/// draws an independent stream that depends only on *which* cell it is —
/// never on how many cells ran before it or on which worker thread it
/// landed. That is what keeps parallel campaigns byte-identical to
/// sequential ones.
pub fn seed_for(base: u64, label: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // One SplitMix64 scramble so base and label both diffuse into every bit.
    SplitMix64::new(base ^ h).next_u64()
}

/// The SplitMix64 generator (Steele, Lea & Flood; public domain algorithm).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent child generator; used to give each rank or
    /// device its own stream without correlation.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, as for standard double-precision uniforms.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)`. `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0) is meaningless");
        // Multiply-shift bounded generation (Lemire). The modulo bias of the
        // plain approach is irrelevant at our bounds, but this is as cheap.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// A uniform value in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_reference_values() {
        // Reference outputs for seed 0 from the canonical SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
        assert_eq!(r.next_u64(), 0x6e789e6aa1b965f4);
        assert_eq!(r.next_u64(), 0x06c45d188009454f);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SplitMix64::new(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
        }
        // bound 1 always yields 0.
        assert_eq!(r.next_below(1), 0);
    }

    #[test]
    fn range_inclusive_covers_endpoints() {
        let mut r = SplitMix64::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            match r.range_inclusive(10, 12) {
                10 => saw_lo = true,
                12 => saw_hi = true,
                11 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(saw_lo && saw_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 items left them sorted");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SplitMix64::new(100);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn seed_for_depends_only_on_base_and_label() {
        assert_eq!(seed_for(42, "btio::RAID 5"), seed_for(42, "btio::RAID 5"));
        assert_ne!(seed_for(42, "btio::RAID 5"), seed_for(43, "btio::RAID 5"));
        assert_ne!(seed_for(42, "btio::RAID 5"), seed_for(42, "btio::JBOD"));
        // Near-identical labels must still diverge.
        assert_ne!(seed_for(0, "a"), seed_for(0, "b"));
    }
}
