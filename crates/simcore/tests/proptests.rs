//! Property tests of the simulation kernel invariants.

use proptest::prelude::*;
use simcore::{Bandwidth, EventQueue, FifoResource, SplitMix64, Time};

proptest! {
    /// Events always pop in nondecreasing time order, regardless of the
    /// schedule order.
    #[test]
    fn event_queue_orders_any_schedule(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(Time::from_nanos(t), i);
        }
        let mut last = Time::ZERO;
        let mut n = 0;
        while let Some((at, _)) = q.pop() {
            prop_assert!(at >= last);
            last = at;
            n += 1;
        }
        prop_assert_eq!(n, times.len());
    }

    /// Same-timestamp events preserve insertion order (stability).
    #[test]
    fn event_queue_is_stable(n in 1usize..100) {
        let mut q = EventQueue::new();
        for i in 0..n {
            q.schedule(Time::from_secs(1), i);
        }
        for i in 0..n {
            prop_assert_eq!(q.pop().unwrap().1, i);
        }
    }

    /// A FIFO resource never overlaps grants and never loses busy time.
    #[test]
    fn fifo_resource_grants_never_overlap(
        jobs in proptest::collection::vec((0u64..10_000, 1u64..5_000), 1..100)
    ) {
        let mut r = FifoResource::new();
        let mut arrivals: Vec<u64> = jobs.iter().map(|&(a, _)| a).collect();
        arrivals.sort_unstable();
        let mut prev_end = Time::ZERO;
        let mut total_service = Time::ZERO;
        for (i, &arrival) in arrivals.iter().enumerate() {
            let service = Time::from_nanos(jobs[i].1);
            let g = r.submit(Time::from_nanos(arrival), service);
            prop_assert!(g.start >= prev_end, "grant overlaps predecessor");
            prop_assert_eq!(g.end - g.start, service);
            prop_assert!(g.start >= Time::from_nanos(arrival));
            prev_end = g.end;
            total_service += service;
        }
        prop_assert_eq!(r.busy_time(), total_service);
    }

    /// `time_for` and `measured` are mutually consistent within rounding.
    #[test]
    fn bandwidth_roundtrip(bps in 1u64..10_000_000_000u64, bytes in 1u64..1_000_000_000u64) {
        let bw = Bandwidth::from_bytes_per_sec(bps);
        let t = bw.time_for(bytes);
        prop_assume!(t > Time::ZERO && t < Time::from_secs(1_000_000));
        let back = Bandwidth::measured(bytes, t);
        let rel = (back.bytes_per_sec() as f64 - bps as f64).abs() / bps as f64;
        prop_assert!(rel < 0.01, "bps {} back {} rel {}", bps, back.bytes_per_sec(), rel);
    }

    /// The RNG's bounded generation respects its bound for any bound.
    #[test]
    fn rng_bounded(seed in any::<u64>(), bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Shuffle is always a permutation.
    #[test]
    fn rng_shuffle_permutes(seed in any::<u64>(), n in 0usize..200) {
        let mut rng = SplitMix64::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
