//! Property tests of the Fig. 11 search rule and usage arithmetic.

use ioeval_core::perf_table::{AccessMode, AccessType, OpType, PerfRow, PerfTable};
use proptest::prelude::*;
use simcore::{Bandwidth, Time};

fn table_from(blocks: &[u64]) -> PerfTable {
    let mut t = PerfTable::new();
    for &b in blocks {
        t.insert(PerfRow {
            op: OpType::Write,
            block: b,
            access: AccessType::Global,
            mode: AccessMode::Sequential,
            rate: Bandwidth::from_bytes_per_sec(b + 1), // distinct per block
            iops: 1.0,
            latency: Time::from_micros(1),
        });
    }
    t
}

proptest! {
    /// The Fig. 11 selection rule, verified against an oracle: below min →
    /// min; above max → max; otherwise the smallest characterized block
    /// that is ≥ the searched block.
    #[test]
    fn search_matches_fig11_oracle(
        mut blocks in proptest::collection::btree_set(1u64..1_000_000, 1..20),
        probe in 0u64..2_000_000,
    ) {
        let blocks: Vec<u64> = std::mem::take(&mut blocks).into_iter().collect();
        let t = table_from(&blocks);
        let found = t
            .search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential)
            .expect("non-empty table always resolves");
        let min = *blocks.first().unwrap();
        let max = *blocks.last().unwrap();
        let expected = if probe <= min {
            min
        } else if probe >= max {
            max
        } else {
            *blocks.iter().find(|&&b| b >= probe).unwrap()
        };
        prop_assert_eq!(found.block, expected);
    }

    /// Insertion order never affects search results.
    #[test]
    fn insertion_order_is_irrelevant(
        blocks in proptest::collection::btree_set(1u64..100_000, 2..15),
        probe in 0u64..200_000,
        seed in any::<u64>(),
    ) {
        let sorted: Vec<u64> = blocks.iter().copied().collect();
        let mut shuffled = sorted.clone();
        let mut rng = simcore::SplitMix64::new(seed);
        rng.shuffle(&mut shuffled);
        let a = table_from(&sorted);
        let b = table_from(&shuffled);
        let ra = a.search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential);
        let rb = b.search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential);
        prop_assert_eq!(ra.map(|r| r.block), rb.map(|r| r.block));
    }

    /// Reinserting a key replaces instead of duplicating: table size equals
    /// the number of distinct keys.
    #[test]
    fn insert_is_idempotent_per_key(blocks in proptest::collection::vec(1u64..1000, 1..50)) {
        let t = table_from(&blocks);
        let distinct: std::collections::BTreeSet<u64> = blocks.iter().copied().collect();
        prop_assert_eq!(t.len(), distinct.len());
    }
}
