//! Property tests of the Fig. 11 search rule, usage arithmetic, and the
//! parallel campaign's deterministic merge.

use ioeval_core::campaign::{
    run_campaign, AppFactory, CellAttempt, CellMerger, CellOutcome, CellStore, MemStore,
};
use ioeval_core::charact::CharacterizeOptions;
use ioeval_core::perf_table::{AccessMode, AccessType, OpType, PerfRow, PerfTable};
use proptest::prelude::*;
use simcore::{Bandwidth, Time};
use std::sync::OnceLock;

fn table_from(blocks: &[u64]) -> PerfTable {
    let mut t = PerfTable::new();
    for &b in blocks {
        t.insert(PerfRow {
            op: OpType::Write,
            block: b,
            access: AccessType::Global,
            mode: AccessMode::Sequential,
            rate: Bandwidth::from_bytes_per_sec(b + 1), // distinct per block
            iops: 1.0,
            latency: Time::from_micros(1),
        });
    }
    t
}

proptest! {
    /// The Fig. 11 selection rule, verified against an oracle: below min →
    /// min; above max → max; otherwise the smallest characterized block
    /// that is ≥ the searched block.
    #[test]
    fn search_matches_fig11_oracle(
        mut blocks in proptest::collection::btree_set(1u64..1_000_000, 1..20),
        probe in 0u64..2_000_000,
    ) {
        let blocks: Vec<u64> = std::mem::take(&mut blocks).into_iter().collect();
        let t = table_from(&blocks);
        let found = t
            .search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential)
            .expect("non-empty table always resolves");
        let min = *blocks.first().unwrap();
        let max = *blocks.last().unwrap();
        let expected = if probe <= min {
            min
        } else if probe >= max {
            max
        } else {
            *blocks.iter().find(|&&b| b >= probe).unwrap()
        };
        prop_assert_eq!(found.block, expected);
    }

    /// Insertion order never affects search results.
    #[test]
    fn insertion_order_is_irrelevant(
        blocks in proptest::collection::btree_set(1u64..100_000, 2..15),
        probe in 0u64..200_000,
        seed in any::<u64>(),
    ) {
        let sorted: Vec<u64> = blocks.iter().copied().collect();
        let mut shuffled = sorted.clone();
        let mut rng = simcore::SplitMix64::new(seed);
        rng.shuffle(&mut shuffled);
        let a = table_from(&sorted);
        let b = table_from(&shuffled);
        let ra = a.search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential);
        let rb = b.search(OpType::Write, probe, AccessType::Global, AccessMode::Sequential);
        prop_assert_eq!(ra.map(|r| r.block), rb.map(|r| r.block));
    }

    /// Reinserting a key replaces instead of duplicating: table size equals
    /// the number of distinct keys.
    #[test]
    fn insert_is_idempotent_per_key(blocks in proptest::collection::vec(1u64..1000, 1..50)) {
        let t = table_from(&blocks);
        let distinct: std::collections::BTreeSet<u64> = blocks.iter().copied().collect();
        prop_assert_eq!(t.len(), distinct.len());
    }
}

// ---------------------------------------------------------------------------
// Deterministic-merge properties of the parallel campaign scheduler.
// ---------------------------------------------------------------------------

const APPS: [&str; 3] = ["app-a", "app-b", "app-c"];
const CONFIGS: [&str; 2] = ["cfg-x", "cfg-y"];

/// One genuine `Ok` outcome (with a real report and prediction), computed
/// once and relabeled per cell — the merger only inspects the variant and
/// the cell identity, but feeding it realistic payloads keeps the property
/// honest about persistence.
fn ok_template() -> &'static CellOutcome {
    static CELL: OnceLock<CellOutcome> = OnceLock::new();
    CELL.get_or_init(|| {
        use cluster::{presets, DeviceLayout, IoConfigBuilder};
        use workloads::{BtClass, BtIo, BtSubtype};
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bt = || {
            BtIo::new(BtClass::S, 4, BtSubtype::Full)
                .with_dumps(2)
                .gflops(20.0)
                .scenario()
        };
        let apps: Vec<AppFactory> = vec![("template", &bt)];
        let c = run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick());
        c.outcomes.into_iter().next().expect("one cell ran")
    })
}

/// Builds the attempt a worker would offer for cell `idx`, from a small
/// generated code: 0 = ok, 1 = failed, 2 = timed out, 3 = not run.
fn attempt_for(idx: usize, code: u8) -> CellAttempt {
    let app = APPS[idx / CONFIGS.len()].to_string();
    let config = CONFIGS[idx % CONFIGS.len()].to_string();
    match code % 4 {
        0 => {
            let mut cell = match ok_template() {
                CellOutcome::Ok(c) => (**c).clone(),
                other => panic!("template must be Ok, got {other:?}"),
            };
            cell.app.clone_from(&app);
            cell.config.clone_from(&config);
            CellAttempt::Ran {
                outcome: CellOutcome::Ok(Box::new(cell)),
                from_store: false,
            }
        }
        1 => CellAttempt::Ran {
            outcome: CellOutcome::Failed {
                app,
                config,
                error: format!("injected failure in cell {idx}"),
                attempts: 1,
            },
            from_store: false,
        },
        2 => CellAttempt::Ran {
            outcome: CellOutcome::TimedOut {
                app,
                config,
                abort: simcore::Abort::Stalled {
                    events: 7,
                    at: Time::from_secs(1),
                },
                attempts: 1,
            },
            from_store: false,
        },
        _ => CellAttempt::NotRun {
            reason: "campaign wall-clock budget exhausted".to_string(),
        },
    }
}

/// Offers every cell in `order`, merging after each offer, and returns the
/// merged outcomes plus everything the store persisted.
fn merge_in_order(
    codes: &[u8],
    order: &[usize],
    quarantine_after: u32,
) -> (Vec<String>, Vec<String>) {
    let quarantined = vec![None; CONFIGS.len()];
    let mut merger = CellMerger::new(&APPS, &CONFIGS, quarantined, quarantine_after);
    let mut store = MemStore::new();
    for &idx in order {
        merger.offer(idx, attempt_for(idx, codes[idx]));
        merger.merge_ready(&mut store);
    }
    let outcomes = merger
        .finish()
        .iter()
        .map(|o| serde_json::to_string(o).expect("outcome serializes"))
        .collect();
    let persisted = APPS
        .iter()
        .flat_map(|app| store.outcomes_for(app))
        .map(|o| serde_json::to_string(o).expect("outcome serializes"))
        .collect();
    (outcomes, persisted)
}

proptest! {
    /// Whatever completion order workers offer their attempts in, the
    /// merged campaign — final outcomes *and* persisted checkpoints — is
    /// identical to the sequential (input-order) merge. This is the merge
    /// half of the jobs-invariance contract; quarantine decisions
    /// (including which later cells get skipped) are part of the compared
    /// output, so they must trigger identically under any schedule.
    #[test]
    fn merge_is_invariant_under_offer_order(
        codes in proptest::collection::vec(0u8..4, APPS.len() * CONFIGS.len()),
        seed in any::<u64>(),
        quarantine_after in 1u32..4,
    ) {
        let n = APPS.len() * CONFIGS.len();
        let sequential: Vec<usize> = (0..n).collect();
        let mut shuffled = sequential.clone();
        simcore::SplitMix64::new(seed).shuffle(&mut shuffled);

        let (seq_out, seq_saved) = merge_in_order(&codes, &sequential, quarantine_after);
        let (shf_out, shf_saved) = merge_in_order(&codes, &shuffled, quarantine_after);
        prop_assert_eq!(seq_out, shf_out, "outcomes diverged for order {:?}", shuffled);
        prop_assert_eq!(seq_saved, shf_saved, "persisted cells diverged");
    }

    /// Failure accounting is per configuration and strictly input-ordered:
    /// once a configuration accumulates `quarantine_after` consecutive
    /// failures, every later cell on it merges as `Skipped` — even when
    /// its worker already produced a result — and skipped cells are never
    /// persisted.
    #[test]
    fn quarantine_is_column_monotone(
        codes in proptest::collection::vec(0u8..4, APPS.len() * CONFIGS.len()),
        seed in any::<u64>(),
    ) {
        let n = APPS.len() * CONFIGS.len();
        let mut order: Vec<usize> = (0..n).collect();
        simcore::SplitMix64::new(seed).shuffle(&mut order);

        let quarantined = vec![None; CONFIGS.len()];
        let mut merger = CellMerger::new(&APPS, &CONFIGS, quarantined, 1);
        let mut store = MemStore::new();
        for &idx in &order {
            merger.offer(idx, attempt_for(idx, codes[idx]));
            merger.merge_ready(&mut store);
        }
        let outcomes = merger.finish();

        let mut poisoned = [false; CONFIGS.len()];
        for (idx, outcome) in outcomes.iter().enumerate() {
            let ci = idx % CONFIGS.len();
            if poisoned[ci] {
                prop_assert!(
                    matches!(outcome, CellOutcome::Skipped { reason, .. }
                        if reason.contains("quarantined")),
                    "cell {idx} after quarantine must be Skipped, got {outcome:?}"
                );
                prop_assert!(
                    store.load_outcome(APPS[idx / CONFIGS.len()], CONFIGS[ci]).is_none(),
                    "skipped cell {idx} must not be persisted"
                );
            }
            if matches!(outcome, CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. }) {
                poisoned[ci] = true; // quarantine_after = 1
            }
        }
    }
}
