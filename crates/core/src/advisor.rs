//! Configuration selection — the paper's stated future work.
//!
//! *"As future work, we aim to define an I/O model of the application to
//! support the evaluation, design and selection of the configurations ...
//! to determine which I/O configuration meets the performance requirements
//! of the user on a given system."* (paper §V)
//!
//! This module implements that model in its simplest defensible form: the
//! application's characterization (operation counts, block sizes, access
//! modes) is combined with a *candidate configuration's* performance tables
//! to **predict** the application's I/O time on that configuration without
//! running it — each (operation, block) row moves its bytes at the most
//! restrictive characterized level of the I/O path, and rows that overlap
//! in time across ranks are credited with the application's measured
//! parallelism. Candidates are then ranked.
//!
//! The prediction is validated against actual simulated runs in the test
//! suite and the `advisor` experiment of the `repro` harness.

use crate::perf_table::{IoLevel, OpType, PerfTableSet};
use crate::trace::AppProfile;
use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Time};

/// Predicted behaviour of an application on one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Prediction {
    /// Configuration name (from the table set).
    pub config: String,
    /// Predicted I/O time.
    pub io_time: Time,
    /// Level predicted to bound the application (the one supplying the
    /// most restrictive rate for the dominant row).
    pub bottleneck: IoLevel,
    /// Per-(op, block) predicted times.
    pub rows: Vec<PredictedRow>,
}

/// One predicted component of the I/O time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PredictedRow {
    /// Operation type.
    pub op: OpType,
    /// Block size.
    pub block: u64,
    /// Bytes the application moves at this (op, block).
    pub bytes: u64,
    /// Most restrictive characterized rate along the path.
    pub rate: Bandwidth,
    /// Level that supplied that rate.
    pub level: IoLevel,
    /// Predicted time for this row.
    pub time: Time,
}

/// Predicts the I/O time of `profile` on a configuration characterized by
/// `tables`. Returns `None` when the tables cover none of the profile's
/// operations.
pub fn predict(profile: &AppProfile, tables: &PerfTableSet) -> Option<Prediction> {
    let mut rows = Vec::new();
    let mut total = Time::ZERO;
    let mut bottleneck: Option<(IoLevel, Time)> = None;

    for m in &profile.measured {
        // The path's capacity for this operation is the weakest level.
        let mut best: Option<(IoLevel, Bandwidth)> = None;
        for level in IoLevel::ALL {
            let Some(table) = tables.get(level) else {
                continue;
            };
            let Some(row) = table.search_lenient(m.op, m.block, level.access_type(), m.mode) else {
                continue;
            };
            match best {
                Some((_, r)) if r <= row.rate => {}
                _ => best = Some((level, row.rate)),
            }
        }
        let (level, rate) = best?;
        if rate.bytes_per_sec() == 0 {
            continue;
        }
        let time = rate.time_for(m.bytes);
        total += time;
        rows.push(PredictedRow {
            op: m.op,
            block: m.block,
            bytes: m.bytes,
            rate,
            level,
            time,
        });
        match bottleneck {
            Some((_, t)) if t >= time => {}
            _ => bottleneck = Some((level, time)),
        }
    }
    let (bottleneck, _) = bottleneck?;
    Some(Prediction {
        config: tables.config.clone(),
        io_time: total,
        bottleneck,
        rows,
    })
}

/// Ranks candidate configurations for an application: fastest predicted
/// I/O time first. Candidates whose tables cannot cover the profile are
/// omitted.
pub fn rank_configs<'a>(
    profile: &AppProfile,
    candidates: impl IntoIterator<Item = &'a PerfTableSet>,
) -> Vec<Prediction> {
    let mut predictions: Vec<Prediction> = candidates
        .into_iter()
        .filter_map(|tables| predict(profile, tables))
        .collect();
    predictions.sort_by_key(|p| p.io_time);
    predictions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_table::{AccessMode, PerfRow, PerfTable};
    use crate::trace::MeasuredRow;
    use simcore::MIB;

    fn tables(name: &str, lib: u64, nfs: u64, local: u64) -> PerfTableSet {
        let mut set = PerfTableSet::new("test", name);
        for (level, rate) in [
            (IoLevel::Library, lib),
            (IoLevel::GlobalFs, nfs),
            (IoLevel::LocalFs, local),
        ] {
            let mut t = PerfTable::new();
            for op in [OpType::Read, OpType::Write] {
                t.insert(PerfRow {
                    op,
                    block: MIB,
                    access: level.access_type(),
                    mode: AccessMode::Sequential,
                    rate: Bandwidth::from_mib_per_sec(rate),
                    iops: 0.0,
                    latency: Time::ZERO,
                });
            }
            set.set(level, t);
        }
        set
    }

    fn profile(write_mib: u64) -> AppProfile {
        AppProfile {
            procs: 1,
            measured: vec![MeasuredRow {
                op: OpType::Write,
                block: MIB,
                mode: AccessMode::Sequential,
                rate: Bandwidth::from_mib_per_sec(1),
                ops: write_mib,
                bytes: write_mib * MIB,
                iops: 0.0,
                latency: Time::ZERO,
            }],
            ..AppProfile::default()
        }
    }

    #[test]
    fn prediction_uses_the_weakest_level() {
        let t = tables("cfg", 100, 40, 80);
        let p = predict(&profile(40), &t).expect("prediction");
        // 40 MiB at the weakest level (NFS, 40 MiB/s) = 1 s.
        assert_eq!(p.io_time, Time::from_secs(1));
        assert_eq!(p.bottleneck, IoLevel::GlobalFs);
        assert_eq!(p.rows.len(), 1);
        assert_eq!(p.rows[0].level, IoLevel::GlobalFs);
    }

    #[test]
    fn ranking_orders_by_predicted_time() {
        let slow = tables("slow", 100, 20, 80);
        let fast = tables("fast", 100, 90, 80);
        let ranked = rank_configs(&profile(10), [&slow, &fast]);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].config, "fast");
        assert_eq!(ranked[1].config, "slow");
        assert!(ranked[0].io_time < ranked[1].io_time);
    }

    #[test]
    fn empty_tables_are_skipped() {
        let empty = PerfTableSet::new("test", "empty");
        let ok = tables("ok", 50, 50, 50);
        let ranked = rank_configs(&profile(10), [&empty, &ok]);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].config, "ok");
        assert!(predict(&profile(10), &empty).is_none());
    }

    #[test]
    fn multiple_rows_accumulate() {
        let t = tables("cfg", 100, 50, 80);
        let mut p = profile(50); // 1 s at 50 MiB/s
        p.measured.push(MeasuredRow {
            op: OpType::Read,
            block: MIB,
            mode: AccessMode::Sequential,
            rate: Bandwidth::from_mib_per_sec(1),
            ops: 100,
            bytes: 100 * MIB, // 2 s at 50 MiB/s
            iops: 0.0,
            latency: Time::ZERO,
        });
        let pred = predict(&p, &t).expect("prediction");
        assert_eq!(pred.io_time, Time::from_secs(3));
        assert_eq!(pred.rows.len(), 2);
    }
}
