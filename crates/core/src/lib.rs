//! # ioeval-core — the CLUSTER 2011 methodology
//!
//! The paper's contribution: a three-phase methodology to evaluate the I/O
//! system of a computer cluster along its I/O path.
//!
//! 1. **Characterization** ([`charact`]):
//!    * *system* — measure transfer rate / IOPs / latency at the three I/O
//!      path levels (I/O library, network filesystem, local filesystem /
//!      devices) with IOzone-like and IOR-like workloads, producing one
//!      [`perf_table::PerfTable`] per level per configuration (paper
//!      Table I, Figs. 5/6/13/14);
//!    * *application* — trace every MPI-IO primitive ([`trace`]) and build
//!      an [`trace::AppProfile`]: operation counts, block sizes, access
//!      modes and repetitive I/O phases (Tables II/V/VIII, Figs. 8/16).
//! 2. **I/O configuration analysis** — enumerate configurable factors and
//!    candidate configurations (`cluster::config`; JBOD/RAID 1/RAID 5 in
//!    the paper).
//! 3. **Evaluation** ([`eval`]): run the application on each configuration,
//!    measure execution time / I/O time / throughput, and compute the
//!    **percentage of the characterized capacity actually used** at every
//!    level, via the table-generation algorithm of Fig. 10 and the
//!    performance-table search of Fig. 11 (Tables III/IV/VI/VII/IX/X/XI).
//!
//! [`report`] renders every table as aligned text for the `repro` harness.
//! [`advisor`] implements the paper's stated *future work*: predicting an
//! application's I/O time on candidate configurations from the performance
//! tables alone, and ranking the candidates.

pub mod advisor;
pub mod campaign;
pub mod charact;
pub mod eval;
pub mod memo;
pub mod obs;
pub mod perf_table;
pub mod report;
pub mod supervise;
pub mod trace;
pub mod trace_export;

pub use advisor::{predict, rank_configs, Prediction};
pub use campaign::{
    run_campaign, run_campaign_supervised, Campaign, CampaignCell, CellAttempt, CellFaultPolicy,
    CellMerger, CellOutcome, CellStore, MemStore, NoStore, StoreHealth, SuperviseOptions,
};
pub use charact::{
    characterize_app, characterize_system, characterize_system_memo, require_level, CharactError,
    CharacterizeOptions,
};
pub use eval::{evaluate, EvalError, EvalOptions, EvalReport, FaultScenario, UsageRow};
pub use memo::CharactMemo;
pub use obs::{Collector, MetricsHub, ObsData, ObsMetrics, TraceMeta};
pub use perf_table::{AccessMode, AccessType, IoLevel, OpType, PerfRow, PerfTable, PerfTableSet};
pub use report::render_resilience_table;
pub use supervise::run_isolated;
pub use trace::{AppProfile, PhaseReport, ProfileSink};
pub use trace_export::ChromeTraceSink;
