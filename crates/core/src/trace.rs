//! Application characterization from traces (the PAS2P-IO substitute).
//!
//! [`ProfileSink`] consumes [`mpisim::TraceEvent`]s *streaming* (no event
//! log is materialized, so multi-million-operation applications
//! characterize in bounded memory) and produces an [`AppProfile`]:
//!
//! * operation counts and distinct block sizes (paper Tables II/V/VIII);
//! * detected access modes per operation type (sequential / strided /
//!   random), from per-(rank, file) offset-stream analysis;
//! * application-level measured transfer rates per (operation, block size)
//!   — the left column of the Fig. 10 used-percentage algorithm;
//! * per-marker rates (MADbench2's S/W/C functions);
//! * an I/O **phase report** (bursts of I/O separated by computation or
//!   communication — the structure visible in the paper's Figs. 8/16),
//!   with repetition counts as phase weights.

use crate::perf_table::{AccessMode, OpType};
use mpisim::{TraceEvent, TraceKind, TraceSink};
use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Time};
use std::collections::{BTreeMap, HashMap};

/// Classification of a phase burst.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PhaseClass {
    /// Consecutive write operations.
    Write,
    /// Consecutive read operations.
    Read,
    /// Computation / communication / metadata between I/O bursts.
    NonIo,
}

/// One burst on the representative rank's timeline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Phase {
    /// Burst class.
    pub class: PhaseClass,
    /// Burst start.
    pub start: Time,
    /// Burst end.
    pub end: Time,
    /// Operations merged into the burst.
    pub ops: u64,
    /// Bytes moved (0 for non-I/O).
    pub bytes: u64,
    /// Marker id active when the burst began (`u32::MAX` when none).
    pub marker: u32,
}

/// The phase structure of the application (paper Figs. 8/16).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PhaseReport {
    /// Bursts of the representative rank, in time order.
    pub bursts: Vec<Phase>,
}

impl PhaseReport {
    /// Only the I/O bursts.
    pub fn io_phases(&self) -> impl Iterator<Item = &Phase> {
        self.bursts.iter().filter(|p| p.class != PhaseClass::NonIo)
    }

    /// Repetition analysis: distinct I/O phase signatures
    /// (class, per-burst bytes bucketed to powers of two) with their
    /// occurrence counts — the "significant phases and their weights".
    pub fn signature_weights(&self) -> Vec<(PhaseClass, u64, u64)> {
        let mut counts: BTreeMap<(PhaseClass, u64), u64> = BTreeMap::new();
        for p in self.io_phases() {
            let bucket = if p.bytes < 2 {
                p.bytes
            } else {
                1u64 << (63 - p.bytes.leading_zeros())
            };
            *counts.entry((p.class, bucket)).or_insert(0) += 1;
        }
        counts.into_iter().map(|((c, b), n)| (c, b, n)).collect()
    }
}

/// Per-(op, block-size) application-level measurement.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MeasuredRow {
    /// Operation type.
    pub op: OpType,
    /// Block size (exact application request size).
    pub block: u64,
    /// Detected access mode for this op type.
    pub mode: AccessMode,
    /// Achieved application-level transfer rate.
    pub rate: Bandwidth,
    /// Operations.
    pub ops: u64,
    /// Bytes.
    pub bytes: u64,
    /// Achieved IOPs.
    pub iops: f64,
    /// Mean latency.
    pub latency: Time,
}

/// Per-marker (workload-labelled section) rates.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MarkerRates {
    /// Marker id (e.g. MADbench2 S/W/C).
    pub marker: u32,
    /// Operation type.
    pub op: OpType,
    /// Achieved rate within the section.
    pub rate: Bandwidth,
    /// Bytes moved.
    pub bytes: u64,
    /// Operations.
    pub ops: u64,
}

/// The application characterization (paper Tables II/V/VIII).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct AppProfile {
    /// Number of processes.
    pub procs: usize,
    /// Distinct files touched.
    pub num_files: usize,
    /// Total read operations.
    pub numio_read: u64,
    /// Total write operations.
    pub numio_write: u64,
    /// Total opens.
    pub numio_open: u64,
    /// Total closes.
    pub numio_close: u64,
    /// Total explicit syncs.
    pub numio_sync: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Distinct read block sizes with counts (size-ascending).
    pub read_sizes: Vec<(u64, u64)>,
    /// Distinct write block sizes with counts.
    pub write_sizes: Vec<(u64, u64)>,
    /// Detected read access mode.
    pub mode_read: AccessMode,
    /// Detected write access mode.
    pub mode_write: AccessMode,
    /// Wall time (latest event end).
    pub exec_time: Time,
    /// I/O time of the slowest rank.
    pub io_time: Time,
    /// Per-(op, block) measurements.
    pub measured: Vec<MeasuredRow>,
    /// Per-marker rates.
    pub per_marker: Vec<MarkerRates>,
    /// Phase structure of the representative rank.
    pub phases: PhaseReport,
}

impl AppProfile {
    /// Aggregate application read rate.
    pub fn read_rate(&self) -> Bandwidth {
        agg_rate(self.measured.iter().filter(|m| m.op == OpType::Read))
    }

    /// Aggregate application write rate.
    pub fn write_rate(&self) -> Bandwidth {
        agg_rate(self.measured.iter().filter(|m| m.op == OpType::Write))
    }
}

fn agg_rate<'a>(rows: impl Iterator<Item = &'a MeasuredRow>) -> Bandwidth {
    let mut bytes = 0u64;
    let mut secs = 0f64;
    for r in rows {
        bytes += r.bytes;
        if r.rate.bytes_per_sec() > 0 {
            secs += r.bytes as f64 / r.rate.bytes_per_sec() as f64;
        }
    }
    if secs == 0.0 {
        Bandwidth(0)
    } else {
        Bandwidth((bytes as f64 / secs) as u64)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StreamState {
    last_end: Option<u64>,
    last_offset: Option<u64>,
    last_delta: Option<i64>,
    seq: u64,
    strided: u64,
    random: u64,
}

impl StreamState {
    fn observe(&mut self, offset: u64, len: u64) {
        if let (Some(end), Some(last_off)) = (self.last_end, self.last_offset) {
            if offset == end {
                self.seq += 1;
            } else {
                let delta = offset as i64 - last_off as i64;
                if self.last_delta == Some(delta) {
                    self.strided += 1;
                } else {
                    self.random += 1;
                }
                self.last_delta = Some(delta);
            }
        }
        self.last_offset = Some(offset);
        self.last_end = Some(offset + len);
    }
}

#[derive(Clone, Debug, Default)]
struct MeasAgg {
    bytes: u64,
    ops: u64,
    dur: Time,
    /// Per-rank in-op time; the aggregate rate divides by the busiest
    /// rank's time so that P concurrent ranks yield an aggregate rate
    /// (matching how the system characterization measures rates).
    dur_by_rank: Vec<Time>,
}

impl MeasAgg {
    fn add(&mut self, rank: usize, world: usize, bytes: u64, dur: Time) {
        if self.dur_by_rank.is_empty() {
            self.dur_by_rank = vec![Time::ZERO; world];
        }
        self.bytes += bytes;
        self.ops += 1;
        self.dur += dur;
        self.dur_by_rank[rank] += dur;
    }

    fn busiest(&self) -> Time {
        self.dur_by_rank.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// Streaming trace consumer building an [`AppProfile`].
pub struct ProfileSink {
    world: usize,
    rep_rank: usize,
    counts: AppProfile,
    files: std::collections::BTreeSet<u64>,
    streams: HashMap<(usize, u64, OpType), StreamState>,
    measured: BTreeMap<(OpType, u64), MeasAgg>,
    per_marker: BTreeMap<(u32, OpType), MeasAgg>,
    marker_of_rank: Vec<u32>,
    io_time_per_rank: Vec<Time>,
    // Phase accumulation on the representative rank.
    cur_burst: Option<Phase>,
    bursts: Vec<Phase>,
}

impl ProfileSink {
    /// A sink for a `world`-rank run; rank 0 is the phase representative.
    pub fn new(world: usize) -> ProfileSink {
        ProfileSink {
            world,
            rep_rank: 0,
            counts: AppProfile {
                procs: world,
                mode_read: AccessMode::Sequential,
                mode_write: AccessMode::Sequential,
                ..AppProfile::default()
            },
            files: Default::default(),
            streams: HashMap::new(),
            measured: BTreeMap::new(),
            per_marker: BTreeMap::new(),
            marker_of_rank: vec![u32::MAX; world],
            io_time_per_rank: vec![Time::ZERO; world],
            cur_burst: None,
            bursts: Vec::new(),
        }
    }

    fn burst_class(kind: &TraceKind) -> PhaseClass {
        match kind {
            TraceKind::Write { .. } => PhaseClass::Write,
            TraceKind::Read { .. } => PhaseClass::Read,
            _ => PhaseClass::NonIo,
        }
    }

    fn push_burst_event(&mut self, ev: &TraceEvent, bytes: u64) {
        let class = Self::burst_class(&ev.kind);
        let marker = self.marker_of_rank[ev.rank];
        match &mut self.cur_burst {
            Some(b) if b.class == class => {
                b.end = ev.end;
                b.ops += 1;
                b.bytes += bytes;
            }
            _ => {
                if let Some(b) = self.cur_burst.take() {
                    self.bursts.push(b);
                }
                self.cur_burst = Some(Phase {
                    class,
                    start: ev.start,
                    end: ev.end,
                    ops: 1,
                    bytes,
                    marker,
                });
            }
        }
    }

    fn record_io(&mut self, ev: &TraceEvent, op: OpType, file: u64, offset: u64, len: u64) {
        self.files.insert(file);
        let dur = ev.duration();
        self.io_time_per_rank[ev.rank] += dur;
        match op {
            OpType::Read => {
                self.counts.numio_read += 1;
                self.counts.bytes_read += len;
            }
            OpType::Write => {
                self.counts.numio_write += 1;
                self.counts.bytes_written += len;
            }
        }
        self.streams
            .entry((ev.rank, file, op))
            .or_default()
            .observe(offset, len);
        let world = self.world;
        self.measured
            .entry((op, len))
            .or_default()
            .add(ev.rank, world, len, dur);
        let marker = self.marker_of_rank[ev.rank];
        if marker != u32::MAX {
            self.per_marker
                .entry((marker, op))
                .or_default()
                .add(ev.rank, world, len, dur);
        }
    }

    /// Finalizes the profile.
    pub fn finish(mut self) -> AppProfile {
        if let Some(b) = self.cur_burst.take() {
            self.bursts.push(b);
        }
        let mut profile = self.counts.clone();
        profile.num_files = self.files.len();
        profile.io_time = self
            .io_time_per_rank
            .iter()
            .copied()
            .max()
            .unwrap_or(Time::ZERO);

        // Access-mode votes per op type across all streams.
        let mode_of = |op: OpType, streams: &HashMap<(usize, u64, OpType), StreamState>| {
            let (mut seq, mut strided, mut random) = (0u64, 0u64, 0u64);
            for ((_, _, o), s) in streams {
                if *o == op {
                    seq += s.seq;
                    strided += s.strided;
                    random += s.random;
                }
            }
            if seq >= strided && seq >= random {
                AccessMode::Sequential
            } else if strided >= random {
                AccessMode::Strided
            } else {
                AccessMode::Random
            }
        };
        profile.mode_read = mode_of(OpType::Read, &self.streams);
        profile.mode_write = mode_of(OpType::Write, &self.streams);

        for ((op, block), agg) in &self.measured {
            let mode = match op {
                OpType::Read => profile.mode_read,
                OpType::Write => profile.mode_write,
            };
            profile.measured.push(MeasuredRow {
                op: *op,
                block: *block,
                mode,
                rate: Bandwidth::measured(agg.bytes, agg.busiest()),
                ops: agg.ops,
                bytes: agg.bytes,
                iops: if agg.dur == Time::ZERO {
                    0.0
                } else {
                    agg.ops as f64 / agg.dur.as_secs_f64()
                },
                latency: if agg.ops == 0 {
                    Time::ZERO
                } else {
                    agg.dur / agg.ops
                },
            });
        }
        for ((marker, op), agg) in &self.per_marker {
            profile.per_marker.push(MarkerRates {
                marker: *marker,
                op: *op,
                rate: Bandwidth::measured(agg.bytes, agg.busiest()),
                bytes: agg.bytes,
                ops: agg.ops,
            });
        }
        let sizes = |op: OpType, measured: &BTreeMap<(OpType, u64), MeasAgg>| {
            measured
                .iter()
                .filter(|((o, _), _)| *o == op)
                .map(|((_, b), a)| (*b, a.ops))
                .collect::<Vec<_>>()
        };
        profile.read_sizes = sizes(OpType::Read, &self.measured);
        profile.write_sizes = sizes(OpType::Write, &self.measured);
        profile.phases = PhaseReport {
            bursts: self.bursts,
        };
        profile
    }
}

impl TraceSink for ProfileSink {
    fn record(&mut self, ev: TraceEvent) {
        self.counts.exec_time = self.counts.exec_time.max(ev.end);
        match ev.kind {
            TraceKind::Write {
                file, offset, len, ..
            } => {
                self.record_io(&ev, OpType::Write, file.0, offset, len);
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, len);
                }
            }
            TraceKind::Read {
                file, offset, len, ..
            } => {
                self.record_io(&ev, OpType::Read, file.0, offset, len);
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, len);
                }
            }
            TraceKind::Open { .. } => {
                self.counts.numio_open += 1;
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, 0);
                }
            }
            TraceKind::Close { .. } => {
                self.counts.numio_close += 1;
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, 0);
                }
            }
            TraceKind::Sync { .. } => {
                self.counts.numio_sync += 1;
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, 0);
                }
            }
            TraceKind::Meta { .. } => {
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, 0);
                }
            }
            TraceKind::Marker(id) => {
                self.marker_of_rank[ev.rank] = id;
                if ev.rank == self.rep_rank {
                    // A marker always breaks the current burst.
                    if let Some(b) = self.cur_burst.take() {
                        self.bursts.push(b);
                    }
                }
            }
            TraceKind::Compute
            | TraceKind::Send { .. }
            | TraceKind::Recv { .. }
            | TraceKind::Barrier
            | TraceKind::Bcast { .. }
            | TraceKind::Allreduce { .. }
            | TraceKind::Wait => {
                if ev.rank == self.rep_rank {
                    self.push_burst_event(&ev, 0);
                }
            }
        }
        debug_assert!(ev.rank < self.world);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs::FileId;
    use mpisim::TraceEvent;

    fn ev(rank: usize, t0: u64, t1: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            rank,
            start: Time::from_micros(t0),
            end: Time::from_micros(t1),
            kind,
        }
    }

    fn write(rank: usize, t0: u64, t1: u64, offset: u64, len: u64) -> TraceEvent {
        ev(
            rank,
            t0,
            t1,
            TraceKind::Write {
                file: FileId(1),
                offset,
                len,
                collective: false,
            },
        )
    }

    fn read(rank: usize, t0: u64, t1: u64, offset: u64, len: u64) -> TraceEvent {
        ev(
            rank,
            t0,
            t1,
            TraceKind::Read {
                file: FileId(1),
                offset,
                len,
                collective: false,
            },
        )
    }

    #[test]
    fn counts_and_sizes() {
        let mut sink = ProfileSink::new(2);
        sink.record(ev(
            0,
            0,
            1,
            TraceKind::Open {
                file: FileId(1),
                create: true,
            },
        ));
        sink.record(write(0, 1, 2, 0, 100));
        sink.record(write(0, 2, 3, 100, 100));
        sink.record(write(1, 1, 2, 200, 50));
        sink.record(read(0, 3, 5, 0, 100));
        sink.record(ev(0, 5, 6, TraceKind::Close { file: FileId(1) }));
        let p = sink.finish();
        assert_eq!(p.numio_write, 3);
        assert_eq!(p.numio_read, 1);
        assert_eq!(p.numio_open, 1);
        assert_eq!(p.numio_close, 1);
        assert_eq!(p.bytes_written, 250);
        assert_eq!(p.bytes_read, 100);
        assert_eq!(p.num_files, 1);
        assert_eq!(p.write_sizes, vec![(50, 1), (100, 2)]);
        assert_eq!(p.read_sizes, vec![(100, 1)]);
        assert_eq!(p.procs, 2);
    }

    #[test]
    fn sequential_mode_detection() {
        let mut sink = ProfileSink::new(1);
        for i in 0..10u64 {
            sink.record(write(0, i, i + 1, i * 100, 100));
        }
        let p = sink.finish();
        assert_eq!(p.mode_write, AccessMode::Sequential);
    }

    #[test]
    fn strided_mode_detection() {
        let mut sink = ProfileSink::new(1);
        for i in 0..10u64 {
            sink.record(write(0, i, i + 1, i * 1000, 100));
        }
        let p = sink.finish();
        assert_eq!(p.mode_write, AccessMode::Strided);
    }

    #[test]
    fn random_mode_detection() {
        let offs = [0u64, 5000, 200, 9000, 100, 7000, 3000, 8000];
        let mut sink = ProfileSink::new(1);
        for (i, &o) in offs.iter().enumerate() {
            sink.record(read(0, i as u64, i as u64 + 1, o, 10));
        }
        let p = sink.finish();
        assert_eq!(p.mode_read, AccessMode::Random);
    }

    #[test]
    fn measured_rates_per_block_size() {
        let mut sink = ProfileSink::new(1);
        // Two 1 MiB writes, each taking 10 ms → 2 MiB / 20 ms = 100 MiB/s.
        sink.record(write(0, 0, 10_000, 0, 1 << 20));
        sink.record(write(0, 10_000, 20_000, 1 << 20, 1 << 20));
        let p = sink.finish();
        assert_eq!(p.measured.len(), 1);
        let m = &p.measured[0];
        assert_eq!(m.block, 1 << 20);
        assert_eq!(m.ops, 2);
        assert!((m.rate.as_mib_per_sec() - 100.0).abs() < 1.0);
        assert!((m.iops - 100.0).abs() < 1.0);
        assert_eq!(m.latency, Time::from_millis(10));
        assert!((p.write_rate().as_mib_per_sec() - 100.0).abs() < 1.0);
    }

    #[test]
    fn io_time_is_slowest_rank() {
        let mut sink = ProfileSink::new(2);
        sink.record(write(0, 0, 1_000, 0, 10));
        sink.record(write(1, 0, 5_000, 0, 10));
        let p = sink.finish();
        assert_eq!(p.io_time, Time::from_millis(5));
        assert_eq!(p.exec_time, Time::from_millis(5));
    }

    #[test]
    fn bursts_separate_io_from_compute() {
        let mut sink = ProfileSink::new(1);
        sink.record(write(0, 0, 1, 0, 10));
        sink.record(write(0, 1, 2, 10, 10));
        sink.record(ev(0, 2, 10, TraceKind::Compute));
        sink.record(read(0, 10, 11, 0, 10));
        let p = sink.finish();
        let classes: Vec<PhaseClass> = p.phases.bursts.iter().map(|b| b.class).collect();
        assert_eq!(
            classes,
            vec![PhaseClass::Write, PhaseClass::NonIo, PhaseClass::Read]
        );
        assert_eq!(p.phases.bursts[0].ops, 2);
        assert_eq!(p.phases.bursts[0].bytes, 20);
        assert_eq!(p.phases.io_phases().count(), 2);
    }

    #[test]
    fn signature_weights_count_repetitions() {
        let mut sink = ProfileSink::new(1);
        for rep in 0..5u64 {
            let t = rep * 100;
            sink.record(write(0, t, t + 1, rep * 1000, 512));
            sink.record(ev(0, t + 1, t + 50, TraceKind::Compute));
        }
        let p = sink.finish();
        let w = p.phases.signature_weights();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, PhaseClass::Write);
        assert_eq!(w[0].2, 5, "five repetitions of the same write phase");
    }

    #[test]
    fn markers_segment_rates() {
        let mut sink = ProfileSink::new(1);
        sink.record(ev(0, 0, 0, TraceKind::Marker(7)));
        sink.record(write(0, 0, 1000, 0, 1 << 20));
        sink.record(ev(0, 1000, 1000, TraceKind::Marker(8)));
        sink.record(read(0, 1000, 3000, 0, 1 << 20));
        let p = sink.finish();
        assert_eq!(p.per_marker.len(), 2);
        assert_eq!(p.per_marker[0].marker, 7);
        assert_eq!(p.per_marker[0].op, OpType::Write);
        assert_eq!(p.per_marker[1].marker, 8);
        assert_eq!(p.per_marker[1].op, OpType::Read);
        assert_eq!(p.per_marker[1].bytes, 1 << 20);
    }
}
