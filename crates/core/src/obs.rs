//! I/O-path metrics and trace export on top of [`simcore::obs`].
//!
//! [`Collector`] is the methodology's standard sink: it accumulates
//! per-level counters/histograms ([`ObsMetrics`]) and retains the raw
//! event stream (capped) for export. Exports are a schema-versioned
//! JSONL stream ([`to_jsonl`], validated by `scripts/validate_trace.py`)
//! and a Chrome-trace view ([`to_chrome`]) loadable in
//! `chrome://tracing` / Perfetto. [`phase_timeline`] joins the event
//! stream with the traced [`AppProfile`] phases into the paper's Fig. 16
//! per-phase utilization picture.
//!
//! Everything here is deterministic: times are integer nanoseconds of
//! simulated time, and metrics merge in key order, so a campaign's
//! aggregated metrics are identical under `jobs=1` and `jobs=N`.

use crate::perf_table::IoLevel;
use crate::report::TextTable;
use crate::trace::{AppProfile, PhaseClass};
use simcore::obs::{ObsEvent, ObsSink};
use simcore::stats::{OnlineStats, SizeHistogram};
use simcore::{fmt_bytes, Bandwidth, Time};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Mutex;

/// Version of the JSONL trace schema (`schema` field of the header line).
/// Bump when a line shape changes incompatibly.
pub const TRACE_SCHEMA: u32 = 1;

/// Default cap on retained raw events per collector. Metrics keep
/// accumulating past the cap; only the event log stops growing (the
/// number of dropped events is reported in the export header).
pub const DEFAULT_MAX_EVENTS: usize = 1 << 20;

/// Accumulators for one I/O-path level.
#[derive(Clone, Debug, Default)]
pub struct LevelMetrics {
    /// Completed operations.
    pub ops: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Sum of operation durations (overlapping operations counted fully).
    pub busy: Time,
    /// Per-operation service time, seconds.
    pub service: OnlineStats,
    /// Request-size mix.
    pub sizes: SizeHistogram,
}

impl LevelMetrics {
    fn record(&mut self, bytes: u64, start: Time, end: Time) {
        let dur = end.saturating_sub(start);
        self.ops += 1;
        self.bytes += bytes;
        self.busy = self.busy.saturating_add(dur);
        self.service.push(dur.as_secs_f64());
        self.sizes.record(bytes);
    }

    /// Folds another level's accumulators into this one.
    pub fn merge(&mut self, other: &LevelMetrics) {
        self.ops += other.ops;
        self.bytes += other.bytes;
        self.busy = self.busy.saturating_add(other.busy);
        self.service.merge(&other.service);
        self.sizes.merge(&other.sizes);
    }

    /// Mean outstanding operations over `elapsed` (Little's law:
    /// `L = total busy time / elapsed`) — the queue-depth figure of the
    /// metrics table.
    pub fn mean_depth(&self, elapsed: Time) -> f64 {
        if elapsed == Time::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / elapsed.as_secs_f64()
        }
    }

    /// Aggregate throughput over `elapsed`.
    pub fn rate(&self, elapsed: Time) -> Bandwidth {
        Bandwidth::measured(self.bytes, elapsed)
    }
}

/// Aggregated counters out of one (or many merged) observed runs.
#[derive(Clone, Debug, Default)]
pub struct ObsMetrics {
    /// Per-level accumulators (Library = MPI-IO data ops, GlobalFs =
    /// fabric transfers, LocalFs = volume grants).
    pub levels: BTreeMap<IoLevel, LevelMetrics>,
    /// Page-cache bytes served from memory.
    pub cache_hit_bytes: u64,
    /// Page-cache bytes fetched from the device.
    pub cache_miss_bytes: u64,
    /// Dirty bytes evicted under memory pressure.
    pub cache_evict_bytes: u64,
    /// Bytes written back by throttling/fsync/sync drains.
    pub writeback_bytes: u64,
    /// NFS RPC retransmissions.
    pub nfs_retries: u64,
    /// Fabric messages delivered.
    pub net_messages: u64,
    /// Storage runs served by the closed-form bulk path.
    pub bulk_runs: u64,
    /// Storage runs that fell back to the event-granular loop.
    pub granular_runs: u64,
    /// PFS client RPC retransmissions.
    pub pfs_retries: u64,
    /// PFS spans served by a surviving replica after a server failure.
    pub pfs_failovers: u64,
    /// Recovered-PFS-server catch-up episodes.
    pub pfs_resyncs: u64,
    /// Bytes replayed onto recovered PFS servers.
    pub pfs_resync_bytes: u64,
    /// Fault-schedule events applied.
    pub faults: u64,
}

impl ObsMetrics {
    /// Folds one event into the counters.
    pub fn record(&mut self, ev: &ObsEvent) {
        match *ev {
            ObsEvent::MpiOp {
                bytes,
                start,
                end,
                io,
                ..
            } => {
                if io {
                    self.level(IoLevel::Library).record(bytes, start, end);
                }
            }
            ObsEvent::NetSend {
                bytes, start, end, ..
            } => {
                self.net_messages += 1;
                self.level(IoLevel::GlobalFs).record(bytes, start, end);
            }
            ObsEvent::NfsRetry { .. } => self.nfs_retries += 1,
            ObsEvent::CacheAccess {
                hit_bytes,
                miss_bytes,
                ..
            } => {
                self.cache_hit_bytes += hit_bytes;
                self.cache_miss_bytes += miss_bytes;
            }
            ObsEvent::CacheEvict { bytes, .. } => self.cache_evict_bytes += bytes,
            ObsEvent::Writeback { bytes, .. } => self.writeback_bytes += bytes,
            ObsEvent::StorageRun {
                bytes,
                start,
                end,
                bulk,
                ..
            } => {
                if bulk {
                    self.bulk_runs += 1;
                } else {
                    self.granular_runs += 1;
                }
                self.level(IoLevel::LocalFs).record(bytes, start, end);
            }
            ObsEvent::StorageIo {
                bytes, start, end, ..
            } => {
                self.level(IoLevel::LocalFs).record(bytes, start, end);
            }
            ObsEvent::PfsRetry { .. } => self.pfs_retries += 1,
            ObsEvent::PfsFailover { .. } => self.pfs_failovers += 1,
            ObsEvent::PfsResync { bytes, .. } => {
                self.pfs_resyncs += 1;
                self.pfs_resync_bytes += bytes;
            }
            ObsEvent::MetaOp { start, end, .. } => {
                self.level(IoLevel::Metadata).record(0, start, end);
            }
            ObsEvent::FaultApplied { .. } => self.faults += 1,
        }
    }

    fn level(&mut self, level: IoLevel) -> &mut LevelMetrics {
        self.levels.entry(level).or_default()
    }

    /// Folds another run's metrics into this one.
    pub fn merge(&mut self, other: &ObsMetrics) {
        for (level, m) in &other.levels {
            self.levels.entry(*level).or_default().merge(m);
        }
        self.cache_hit_bytes += other.cache_hit_bytes;
        self.cache_miss_bytes += other.cache_miss_bytes;
        self.cache_evict_bytes += other.cache_evict_bytes;
        self.writeback_bytes += other.writeback_bytes;
        self.nfs_retries += other.nfs_retries;
        self.net_messages += other.net_messages;
        self.bulk_runs += other.bulk_runs;
        self.granular_runs += other.granular_runs;
        self.pfs_retries += other.pfs_retries;
        self.pfs_failovers += other.pfs_failovers;
        self.pfs_resyncs += other.pfs_resyncs;
        self.pfs_resync_bytes += other.pfs_resync_bytes;
        self.faults += other.faults;
    }

    /// Total operations across all levels.
    pub fn total_ops(&self) -> u64 {
        self.levels.values().map(|m| m.ops).sum()
    }
}

/// Everything one collector gathered.
#[derive(Clone, Debug)]
pub struct ObsData {
    /// Aggregated counters (never capped).
    pub metrics: ObsMetrics,
    /// Raw events in emission order, up to the cap.
    pub events: Vec<ObsEvent>,
    /// Events beyond the cap (counted, not retained).
    pub dropped: u64,
    max_events: usize,
}

impl ObsData {
    fn new(max_events: usize) -> ObsData {
        ObsData {
            metrics: ObsMetrics::default(),
            events: Vec::new(),
            dropped: 0,
            max_events,
        }
    }
}

/// The standard collecting sink. Create one, [`Collector::install`] it
/// for the duration of a run, then read [`Collector::take`] — the
/// collector and its installed handle share state via `Rc`, so results
/// survive the guard.
#[derive(Clone)]
pub struct Collector {
    shared: Rc<RefCell<ObsData>>,
}

struct Handle(Rc<RefCell<ObsData>>);

impl ObsSink for Handle {
    fn event(&mut self, ev: &ObsEvent) {
        let mut d = self.0.borrow_mut();
        d.metrics.record(ev);
        if d.events.len() < d.max_events {
            d.events.push(*ev);
        } else {
            d.dropped += 1;
        }
    }
}

impl Collector {
    /// A collector retaining up to [`DEFAULT_MAX_EVENTS`] raw events.
    pub fn new() -> Collector {
        Collector::with_capacity(DEFAULT_MAX_EVENTS)
    }

    /// A collector retaining up to `max_events` raw events (metrics are
    /// always complete).
    pub fn with_capacity(max_events: usize) -> Collector {
        Collector {
            shared: Rc::new(RefCell::new(ObsData::new(max_events))),
        }
    }

    /// Installs this collector as the current thread's sink; events
    /// accumulate until the returned guard drops.
    pub fn install(&self) -> simcore::obs::ObsGuard {
        simcore::obs::install(Box::new(Handle(self.shared.clone())))
    }

    /// Takes everything collected so far, leaving the collector empty
    /// (same cap).
    pub fn take(&self) -> ObsData {
        let cap = self.shared.borrow().max_events;
        std::mem::replace(&mut *self.shared.borrow_mut(), ObsData::new(cap))
    }

    /// A copy of the aggregated metrics.
    pub fn metrics(&self) -> ObsMetrics {
        self.shared.borrow().metrics.clone()
    }
}

impl Default for Collector {
    fn default() -> Collector {
        Collector::new()
    }
}

/// Deterministic cross-thread aggregation of per-cell metrics, used by
/// the campaign scheduler: each cell contributes under its identity key,
/// and [`MetricsHub::aggregate`] merges in key order — so `jobs=1` and
/// `jobs=N` campaigns aggregate identically.
#[derive(Debug, Default)]
pub struct MetricsHub {
    cells: Mutex<BTreeMap<String, ObsMetrics>>,
}

impl MetricsHub {
    /// An empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Contributes one cell's metrics under `key` (last write wins, so a
    /// retried cell does not double-count).
    pub fn add(&self, key: impl Into<String>, metrics: ObsMetrics) {
        self.cells
            .lock()
            .expect("metrics hub lock")
            .insert(key.into(), metrics);
    }

    /// Number of contributed cells.
    pub fn len(&self) -> usize {
        self.cells.lock().expect("metrics hub lock").len()
    }

    /// Whether no cell has contributed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges all contributions in key order.
    pub fn aggregate(&self) -> ObsMetrics {
        let cells = self.cells.lock().expect("metrics hub lock");
        let mut out = ObsMetrics::default();
        for m in cells.values() {
            out.merge(m);
        }
        out
    }
}

/// One row of the per-phase utilization timeline: the I/O-path activity
/// that fell inside one traced [`AppProfile`] phase.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseUtilization {
    /// Phase class from the trace.
    pub class: PhaseClass,
    /// Phase start (equals the traced burst's start).
    pub start: Time,
    /// Phase end (equals the traced burst's end).
    pub end: Time,
    /// MPI-IO data bytes whose operation began in the phase.
    pub mpi_bytes: u64,
    /// MPI-IO data operations begun in the phase.
    pub mpi_ops: u64,
    /// Fabric bytes sent during the phase.
    pub net_bytes: u64,
    /// Volume bytes granted during the phase.
    pub storage_bytes: u64,
}

/// Joins the raw event stream with the traced phases: each event is
/// attributed to the phase containing its start instant. Phase bounds are
/// copied verbatim from `profile.phases`, so the timeline reproduces the
/// traced phase boundaries exactly.
pub fn phase_timeline(events: &[ObsEvent], profile: &AppProfile) -> Vec<PhaseUtilization> {
    let mut rows: Vec<PhaseUtilization> = profile
        .phases
        .bursts
        .iter()
        .map(|b| PhaseUtilization {
            class: b.class,
            start: b.start,
            end: b.end,
            mpi_bytes: 0,
            mpi_ops: 0,
            net_bytes: 0,
            storage_bytes: 0,
        })
        .collect();
    for ev in events {
        let (at, mpi, net, storage) = match *ev {
            ObsEvent::MpiOp {
                start, bytes, io, ..
            } if io => (start, bytes, 0, 0),
            ObsEvent::NetSend { start, bytes, .. } => (start, 0, bytes, 0),
            ObsEvent::StorageRun { start, bytes, .. }
            | ObsEvent::StorageIo { start, bytes, .. } => (start, 0, 0, bytes),
            _ => continue,
        };
        // Phases are few (tens); linear scan keeps this simple. A burst
        // interval is [start, end).
        if let Some(row) = rows.iter_mut().find(|r| r.start <= at && at < r.end) {
            row.mpi_bytes += mpi;
            row.mpi_ops += u64::from(mpi > 0);
            row.net_bytes += net;
            row.storage_bytes += storage;
        }
    }
    rows
}

/// Renders the per-phase utilization timeline as a table (the textual
/// Fig. 16: which layers were busy in which traced phase).
pub fn render_phase_utilization(rows: &[PhaseUtilization]) -> String {
    let mut t = TextTable::new(vec!["phase", "start", "end", "mpi_io", "fabric", "storage"]);
    for r in rows {
        let class = match r.class {
            PhaseClass::Write => "write",
            PhaseClass::Read => "read",
            PhaseClass::NonIo => "compute",
        };
        t.row(vec![
            class.to_string(),
            format!("{}", r.start),
            format!("{}", r.end),
            fmt_bytes(r.mpi_bytes),
            fmt_bytes(r.net_bytes),
            fmt_bytes(r.storage_bytes),
        ]);
    }
    t.render()
}

/// Renders the metrics table appended to reports by `--metrics`.
pub fn render_obs_metrics(m: &ObsMetrics, elapsed: Time) -> String {
    let mut t = TextTable::new(vec![
        "level",
        "ops",
        "bytes",
        "rate",
        "mean_svc",
        "max_svc",
        "mean_depth",
    ]);
    for (level, lm) in &m.levels {
        t.row(vec![
            level.label().to_string(),
            lm.ops.to_string(),
            fmt_bytes(lm.bytes),
            format!("{}", lm.rate(elapsed)),
            format!("{}", Time::from_secs_f64(lm.service.mean())),
            format!("{}", Time::from_secs_f64(lm.service.max())),
            format!("{:.2}", lm.mean_depth(elapsed)),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "cache: hit {} / miss {} / evicted {}; writeback {}\n\
         nfs retries {}; fabric msgs {}; storage runs {} bulk / {} granular; faults {}\n",
        fmt_bytes(m.cache_hit_bytes),
        fmt_bytes(m.cache_miss_bytes),
        fmt_bytes(m.cache_evict_bytes),
        fmt_bytes(m.writeback_bytes),
        m.nfs_retries,
        m.net_messages,
        m.bulk_runs,
        m.granular_runs,
        m.faults,
    ));
    if m.pfs_retries + m.pfs_failovers + m.pfs_resyncs > 0 {
        out.push_str(&format!(
            "pfs: retries {}; failovers {}; resyncs {} ({})\n",
            m.pfs_retries,
            m.pfs_failovers,
            m.pfs_resyncs,
            fmt_bytes(m.pfs_resync_bytes),
        ));
    }
    out
}

/// Identity of one traced run (the JSONL header line).
#[derive(Clone, Debug, Default)]
pub struct TraceMeta {
    /// Cluster name.
    pub cluster: String,
    /// Configuration name.
    pub config: String,
    /// Application / cell label.
    pub app: String,
    /// Fault-scenario label.
    pub scenario: String,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serializes one run to schema-versioned JSONL: a header line, then one
/// line per event. All times are integer nanoseconds of simulated time,
/// so the output is byte-deterministic.
pub fn to_jsonl(data: &ObsData, meta: &TraceMeta) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"kind\":\"header\",\"schema\":{},\"cluster\":\"{}\",\"config\":\"{}\",\"app\":\"{}\",\"scenario\":\"{}\",\"events\":{},\"dropped\":{}}}\n",
        TRACE_SCHEMA,
        esc(&meta.cluster),
        esc(&meta.config),
        esc(&meta.app),
        esc(&meta.scenario),
        data.events.len(),
        data.dropped,
    ));
    for ev in &data.events {
        out.push_str(&event_jsonl(ev));
        out.push('\n');
    }
    out
}

fn event_jsonl(ev: &ObsEvent) -> String {
    let kind = ev.kind();
    match *ev {
        ObsEvent::MpiOp {
            rank,
            label,
            start,
            end,
            bytes,
            io,
        } => format!(
            "{{\"kind\":\"{kind}\",\"rank\":{rank},\"label\":\"{label}\",\"start_ns\":{},\"end_ns\":{},\"bytes\":{bytes},\"io\":{io}}}",
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::NetSend {
            from,
            to,
            bytes,
            start,
            end,
        } => format!(
            "{{\"kind\":\"{kind}\",\"from\":{from},\"to\":{to},\"bytes\":{bytes},\"start_ns\":{},\"end_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::NfsRetry { op, at, attempt } => format!(
            "{{\"kind\":\"{kind}\",\"op\":\"{op}\",\"at_ns\":{},\"attempt\":{attempt}}}",
            at.as_nanos()
        ),
        ObsEvent::CacheAccess {
            hit_bytes,
            miss_bytes,
            at,
        } => format!(
            "{{\"kind\":\"{kind}\",\"hit_bytes\":{hit_bytes},\"miss_bytes\":{miss_bytes},\"at_ns\":{}}}",
            at.as_nanos()
        ),
        ObsEvent::CacheEvict { bytes, at } => format!(
            "{{\"kind\":\"{kind}\",\"bytes\":{bytes},\"at_ns\":{}}}",
            at.as_nanos()
        ),
        ObsEvent::Writeback { bytes, start, end } => format!(
            "{{\"kind\":\"{kind}\",\"bytes\":{bytes},\"start_ns\":{},\"end_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::StorageRun {
            volume,
            write,
            bytes,
            ops,
            start,
            end,
            bulk,
        } => format!(
            "{{\"kind\":\"{kind}\",\"volume\":\"{}\",\"write\":{write},\"bytes\":{bytes},\"ops\":{ops},\"start_ns\":{},\"end_ns\":{},\"bulk\":{bulk}}}",
            esc(volume),
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::StorageIo {
            volume,
            write,
            bytes,
            start,
            end,
        } => format!(
            "{{\"kind\":\"{kind}\",\"volume\":\"{}\",\"write\":{write},\"bytes\":{bytes},\"start_ns\":{},\"end_ns\":{}}}",
            esc(volume),
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::PfsRetry {
            op,
            server,
            at,
            attempt,
        } => format!(
            "{{\"kind\":\"{kind}\",\"op\":\"{op}\",\"server\":{server},\"at_ns\":{},\"attempt\":{attempt}}}",
            at.as_nanos()
        ),
        ObsEvent::PfsFailover { op, from, to, at } => format!(
            "{{\"kind\":\"{kind}\",\"op\":\"{op}\",\"from\":{from},\"to\":{to},\"at_ns\":{}}}",
            at.as_nanos()
        ),
        ObsEvent::PfsResync {
            server,
            bytes,
            start,
            end,
        } => format!(
            "{{\"kind\":\"{kind}\",\"server\":{server},\"bytes\":{bytes},\"start_ns\":{},\"end_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::MetaOp { op, start, end } => format!(
            "{{\"kind\":\"{kind}\",\"op\":\"{op}\",\"start_ns\":{},\"end_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos()
        ),
        ObsEvent::FaultApplied { kind: fault, at } => format!(
            "{{\"kind\":\"{kind}\",\"fault\":\"{fault}\",\"at_ns\":{}}}",
            at.as_nanos()
        ),
    }
}

/// Serializes one or more runs as a Chrome trace (JSON array of complete
/// `ph:"X"` and instant `ph:"i"` events; timestamps in integer
/// microseconds). Load in `chrome://tracing` or Perfetto. Layers map to
/// `pid`s; MPI events use the rank as `tid`.
pub fn to_chrome(runs: &[(TraceMeta, ObsData)]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (meta, data) in runs {
        let name_prefix = if meta.app.is_empty() {
            String::new()
        } else {
            format!("{}/", esc(&meta.app))
        };
        for ev in &data.events {
            let line = chrome_event(ev, &name_prefix);
            if !first {
                out.push(',');
            }
            first = false;
            out.push('\n');
            out.push_str(&line);
        }
    }
    out.push_str("\n]\n");
    out
}

fn chrome_event(ev: &ObsEvent, prefix: &str) -> String {
    let us = |t: Time| t.as_nanos() / 1_000;
    let complete = |name: String, pid: u32, tid: usize, start: Time, end: Time, args: String| {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"dur\":{},\"args\":{{{args}}}}}",
            us(start),
            us(end.saturating_sub(start)).max(1)
        )
    };
    let instant = |name: String, pid: u32, at: Time, args: String| {
        format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"args\":{{{args}}}}}",
            us(at)
        )
    };
    // pid 1 = MPI ranks, 2 = fabric, 3 = filesystem, 4 = storage, 5 = faults.
    match *ev {
        ObsEvent::MpiOp {
            rank,
            label,
            start,
            end,
            bytes,
            ..
        } => complete(
            format!("{prefix}{label}"),
            1,
            rank,
            start,
            end,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::NetSend {
            from,
            to,
            bytes,
            start,
            end,
        } => complete(
            format!("{prefix}send {from}->{to}"),
            2,
            from,
            start,
            end,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::NfsRetry { op, at, attempt } => instant(
            format!("{prefix}nfs retry {op}"),
            3,
            at,
            format!("\"attempt\":{attempt}"),
        ),
        ObsEvent::CacheAccess {
            hit_bytes,
            miss_bytes,
            at,
        } => instant(
            format!("{prefix}cache"),
            3,
            at,
            format!("\"hit_bytes\":{hit_bytes},\"miss_bytes\":{miss_bytes}"),
        ),
        ObsEvent::CacheEvict { bytes, at } => instant(
            format!("{prefix}evict"),
            3,
            at,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::Writeback { bytes, start, end } => complete(
            format!("{prefix}writeback"),
            3,
            0,
            start,
            end,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::StorageRun {
            volume,
            write,
            bytes,
            ops,
            start,
            end,
            bulk,
        } => complete(
            format!("{prefix}{} run", esc(volume)),
            4,
            usize::from(write),
            start,
            end,
            format!("\"bytes\":{bytes},\"ops\":{ops},\"bulk\":{bulk}"),
        ),
        ObsEvent::StorageIo {
            volume,
            write,
            bytes,
            start,
            end,
        } => complete(
            format!("{prefix}{} io", esc(volume)),
            4,
            usize::from(write),
            start,
            end,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::PfsRetry {
            op,
            server,
            at,
            attempt,
        } => instant(
            format!("{prefix}pfs retry {op}"),
            3,
            at,
            format!("\"server\":{server},\"attempt\":{attempt}"),
        ),
        ObsEvent::PfsFailover { op, from, to, at } => instant(
            format!("{prefix}pfs failover {op}"),
            3,
            at,
            format!("\"from\":{from},\"to\":{to}"),
        ),
        ObsEvent::PfsResync {
            server,
            bytes,
            start,
            end,
        } => complete(
            format!("{prefix}pfs resync"),
            3,
            server,
            start,
            end,
            format!("\"bytes\":{bytes}"),
        ),
        ObsEvent::MetaOp { op, start, end } => complete(
            format!("{prefix}meta {op}"),
            3,
            0,
            start,
            end,
            String::new(),
        ),
        ObsEvent::FaultApplied { kind, at } => {
            instant(format!("{prefix}fault {kind}"), 5, at, String::new())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Phase, PhaseReport};

    fn mpi(rank: usize, start_s: u64, bytes: u64) -> ObsEvent {
        ObsEvent::MpiOp {
            rank,
            label: "write",
            start: Time::from_secs(start_s),
            end: Time::from_secs(start_s + 1),
            bytes,
            io: true,
        }
    }

    #[test]
    fn collector_accumulates_and_caps() {
        let col = Collector::with_capacity(2);
        {
            let _g = col.install();
            for i in 0..4 {
                simcore::obs::emit(|| mpi(0, i, 100));
            }
        }
        let data = col.take();
        assert_eq!(data.events.len(), 2, "cap respected");
        assert_eq!(data.dropped, 2);
        let lib = &data.metrics.levels[&IoLevel::Library];
        assert_eq!(lib.ops, 4, "metrics are never capped");
        assert_eq!(lib.bytes, 400);
        assert_eq!(lib.service.count(), 4);
        // take() left it empty.
        assert_eq!(col.metrics().total_ops(), 0);
    }

    #[test]
    fn metrics_merge_is_order_independent() {
        let (mut a, mut b) = (ObsMetrics::default(), ObsMetrics::default());
        a.record(&mpi(0, 0, 10));
        a.record(&ObsEvent::NfsRetry {
            op: "WRITE",
            at: Time::ZERO,
            attempt: 1,
        });
        b.record(&mpi(1, 1, 20));
        b.record(&ObsEvent::CacheEvict {
            bytes: 5,
            at: Time::ZERO,
        });
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.total_ops(), ba.total_ops());
        assert_eq!(ab.nfs_retries, 1);
        assert_eq!(ab.cache_evict_bytes, 5);
        assert_eq!(
            ab.levels[&IoLevel::Library].bytes,
            ba.levels[&IoLevel::Library].bytes
        );
    }

    #[test]
    fn hub_aggregate_is_key_ordered_and_jobs_invariant() {
        let mk = |n: u64| {
            let mut m = ObsMetrics::default();
            m.record(&mpi(0, 0, n));
            m
        };
        let h1 = MetricsHub::new();
        h1.add("a", mk(1));
        h1.add("b", mk(2));
        let h2 = MetricsHub::new();
        h2.add("b", mk(2)); // reversed insertion order
        h2.add("a", mk(1));
        assert_eq!(h1.len(), 2);
        assert!(!h1.is_empty());
        let (m1, m2) = (h1.aggregate(), h2.aggregate());
        assert_eq!(
            m1.levels[&IoLevel::Library].bytes,
            m2.levels[&IoLevel::Library].bytes
        );
        assert_eq!(m1.total_ops(), 2);
    }

    #[test]
    fn phase_timeline_reproduces_traced_boundaries() {
        let profile = AppProfile {
            exec_time: Time::from_secs(10),
            phases: PhaseReport {
                bursts: vec![
                    Phase {
                        class: PhaseClass::Write,
                        start: Time::ZERO,
                        end: Time::from_secs(5),
                        ops: 1,
                        bytes: 1,
                        marker: u32::MAX,
                    },
                    Phase {
                        class: PhaseClass::NonIo,
                        start: Time::from_secs(5),
                        end: Time::from_secs(10),
                        ops: 0,
                        bytes: 0,
                        marker: u32::MAX,
                    },
                ],
            },
            ..AppProfile::default()
        };
        let events = vec![
            mpi(0, 1, 100),
            ObsEvent::NetSend {
                from: 0,
                to: 1,
                bytes: 50,
                start: Time::from_secs(6),
                end: Time::from_secs(7),
            },
            ObsEvent::StorageRun {
                volume: "JBOD",
                write: true,
                bytes: 70,
                ops: 2,
                start: Time::from_secs(2),
                end: Time::from_secs(3),
                bulk: true,
            },
        ];
        let rows = phase_timeline(&events, &profile);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].start, Time::ZERO);
        assert_eq!(rows[0].end, Time::from_secs(5));
        assert_eq!(rows[0].mpi_bytes, 100);
        assert_eq!(rows[0].mpi_ops, 1);
        assert_eq!(rows[0].storage_bytes, 70);
        assert_eq!(rows[0].net_bytes, 0);
        assert_eq!(rows[1].net_bytes, 50);
        let rendered = render_phase_utilization(&rows);
        assert!(rendered.contains("write"), "{rendered}");
        assert!(rendered.contains("compute"), "{rendered}");
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_event() {
        let col = Collector::new();
        {
            let _g = col.install();
            simcore::obs::emit(|| mpi(3, 0, 42));
            simcore::obs::emit(|| ObsEvent::FaultApplied {
                kind: "disk_fail",
                at: Time::from_secs(2),
            });
        }
        let data = col.take();
        let meta = TraceMeta {
            cluster: "Aohyper".into(),
            config: "RAID 5".into(),
            app: "ior".into(),
            scenario: "healthy".into(),
        };
        let text = to_jsonl(&data, &meta);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"kind\":\"header\""), "{}", lines[0]);
        assert!(
            lines[0].contains(&format!("\"schema\":{TRACE_SCHEMA}")),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"rank\":3"), "{}", lines[1]);
        assert!(lines[2].contains("\"fault\":\"disk_fail\""), "{}", lines[2]);
        // Every line is valid JSON (vendored parser).
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).expect(line);
            assert!(v.get("kind").is_some());
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let col = Collector::new();
        {
            let _g = col.install();
            simcore::obs::emit(|| mpi(0, 0, 10));
            simcore::obs::emit(|| ObsEvent::Writeback {
                bytes: 10,
                start: Time::from_secs(1),
                end: Time::from_secs(2),
            });
        }
        let runs = vec![(TraceMeta::default(), col.take())];
        let text = to_chrome(&runs);
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"], "X");
    }

    #[test]
    fn meta_ops_land_in_the_metadata_level() {
        let mut m = ObsMetrics::default();
        let ev = ObsEvent::MetaOp {
            op: "create",
            start: Time::from_secs(1),
            end: Time::from_secs(2),
        };
        m.record(&ev);
        m.record(&mpi(0, 0, 10));
        let md = &m.levels[&IoLevel::Metadata];
        assert_eq!(md.ops, 1);
        assert_eq!(md.bytes, 0, "metadata moves no payload bytes");
        assert_eq!(md.busy, Time::from_secs(1));
        // The data-path level is untouched by the metadata op.
        assert_eq!(m.levels[&IoLevel::Library].ops, 1);
        let rendered = render_obs_metrics(&m, Time::from_secs(2));
        assert!(rendered.contains("Metadata"), "{rendered}");
        // JSONL and Chrome lines are well-formed.
        let line = event_jsonl(&ev);
        let v: serde_json::Value = serde_json::from_str(&line).expect(&line);
        assert_eq!(v["kind"], "meta_op");
        assert_eq!(v["op"], "create");
        let chrome = chrome_event(&ev, "");
        let v: serde_json::Value = serde_json::from_str(&chrome).expect(&chrome);
        assert_eq!(v["pid"], 3);
    }

    #[test]
    fn metrics_render_mentions_every_level_seen() {
        let mut m = ObsMetrics::default();
        m.record(&mpi(0, 0, 10));
        m.record(&ObsEvent::StorageIo {
            volume: "JBOD",
            write: false,
            bytes: 4096,
            start: Time::ZERO,
            end: Time::from_millis(1),
        });
        let s = render_obs_metrics(&m, Time::from_secs(1));
        assert!(s.contains("I/O Lib"), "{s}");
        assert!(s.contains("Local FS"), "{s}");
        assert!(s.contains("nfs retries 0"), "{s}");
    }
}
