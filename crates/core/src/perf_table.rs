//! Performance tables (paper Table I) and the search algorithm (Fig. 11).
//!
//! A characterized configuration carries one table per I/O-path level; each
//! row is `{OperationType, Blocksize, AccessType, AccessMode, transferRate}`
//! plus the IOPs and latency the characterization also collects. The search
//! algorithm resolves an application's operation against the table:
//!
//! * block size below the table's minimum → the minimum row's rate;
//! * above the maximum → the maximum row's rate;
//! * exact hit → that row's rate;
//! * otherwise → the **closest upper** characterized block size.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Time};
use std::collections::BTreeMap;
use std::fmt;

/// Operation type (Table I: read = 0, write = 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpType {
    /// Read operations.
    Read,
    /// Write operations.
    Write,
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpType::Read => write!(f, "read"),
            OpType::Write => write!(f, "write"),
        }
    }
}

/// Access type (Table I: Local = 0, Global = 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AccessType {
    /// Node-local access (local filesystem level).
    Local,
    /// Shared/global access (network filesystem, I/O library levels).
    Global,
}

/// Access mode (Table I: Sequential, Strided, Random).
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum AccessMode {
    /// Consecutive offsets.
    #[default]
    Sequential,
    /// Constant-stride offsets.
    Strided,
    /// Unpredictable offsets.
    Random,
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessMode::Sequential => write!(f, "sequential"),
            AccessMode::Strided => write!(f, "strided"),
            AccessMode::Random => write!(f, "random"),
        }
    }
}

/// A level of the I/O path (paper Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IoLevel {
    /// The I/O library (MPI-IO).
    Library,
    /// The network/global filesystem (NFS).
    GlobalFs,
    /// The local filesystem and devices below it.
    LocalFs,
    /// The namespace metadata path (mdtest verbs). Not part of the
    /// paper's Fig. 2 data path, so it is excluded from [`IoLevel::ALL`]:
    /// bandwidth characterization sweeps and usage tables keep their
    /// three-level shape, and metadata appears only in reports that
    /// actually observed metadata operations.
    Metadata,
}

impl IoLevel {
    /// The data-path levels, top-down (the paper's characterization
    /// sweep; excludes [`IoLevel::Metadata`]).
    pub const ALL: [IoLevel; 3] = [IoLevel::Library, IoLevel::GlobalFs, IoLevel::LocalFs];

    /// Report label (matches the paper's table headers).
    pub fn label(self) -> &'static str {
        match self {
            IoLevel::Library => "I/O Lib",
            IoLevel::GlobalFs => "NFS",
            IoLevel::LocalFs => "Local FS",
            IoLevel::Metadata => "Metadata",
        }
    }

    /// The access type this level is characterized with.
    pub fn access_type(self) -> AccessType {
        match self {
            IoLevel::LocalFs => AccessType::Local,
            _ => AccessType::Global,
        }
    }
}

/// One characterized measurement point (a row of Table I).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct PerfRow {
    /// Operation type.
    pub op: OpType,
    /// Block size in bytes.
    pub block: u64,
    /// Access type.
    pub access: AccessType,
    /// Access mode.
    pub mode: AccessMode,
    /// Characterized transfer rate.
    pub rate: Bandwidth,
    /// Characterized I/O operations per second.
    pub iops: f64,
    /// Characterized mean operation latency.
    pub latency: Time,
}

/// The characterization of one I/O-path level of one configuration.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PerfTable {
    rows: Vec<PerfRow>,
}

impl PerfTable {
    /// An empty table.
    pub fn new() -> PerfTable {
        PerfTable::default()
    }

    /// Adds a row, keeping rows sorted by (op, access, mode, block).
    /// A row with the same key replaces the previous one.
    pub fn insert(&mut self, row: PerfRow) {
        let key = |r: &PerfRow| (r.op, r.access, r.mode, r.block);
        match self.rows.binary_search_by(|r| key(r).cmp(&key(&row))) {
            Ok(i) => self.rows[i] = row,
            Err(i) => self.rows.insert(i, row),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates rows in key order.
    pub fn rows(&self) -> impl Iterator<Item = &PerfRow> {
        self.rows.iter()
    }

    /// Restores the `(op, access, mode, block)` sort order [`Self::insert`]
    /// maintains. Deserialized tables must pass through this before
    /// [`Self::search`]: external JSON may list rows in any order, and the
    /// search's closest-upper-block rule relies on the invariant.
    fn resort(&mut self) {
        self.rows.sort_by_key(|r| (r.op, r.access, r.mode, r.block));
        // Duplicate keys keep the last occurrence, matching insert's
        // replace-on-collision semantics (sort_by_key is stable).
        self.rows.reverse();
        self.rows
            .dedup_by_key(|r| (r.op, r.access, r.mode, r.block));
        self.rows.reverse();
    }

    /// The paper's Fig. 11 search: resolves `(op, block, access, mode)` to
    /// the characterized row per the closest-upper-block-size rule.
    /// Returns `None` when no row matches the non-block key at all.
    pub fn search(
        &self,
        op: OpType,
        block: u64,
        access: AccessType,
        mode: AccessMode,
    ) -> Option<&PerfRow> {
        let candidates: Vec<&PerfRow> = self
            .rows
            .iter()
            .filter(|r| r.op == op && r.access == access && r.mode == mode)
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Rows are block-sorted within the key (insert keeps them so).
        let min = candidates.first().expect("nonempty");
        let max = candidates.last().expect("nonempty");
        if block <= min.block {
            return Some(min);
        }
        if block >= max.block {
            return Some(max);
        }
        // Exact hit, else the closest upper characterized block size.
        for r in &candidates {
            if r.block >= block {
                return Some(r);
            }
        }
        unreachable!("block < max yet no upper row found");
    }

    /// Like [`Self::search`] but falls back to any access mode (preferring
    /// the searched one) — used when the characterization did not sweep the
    /// application's exact mode.
    pub fn search_lenient(
        &self,
        op: OpType,
        block: u64,
        access: AccessType,
        mode: AccessMode,
    ) -> Option<&PerfRow> {
        self.search(op, block, access, mode).or_else(|| {
            [
                AccessMode::Sequential,
                AccessMode::Strided,
                AccessMode::Random,
            ]
            .into_iter()
            .filter(|&m| m != mode)
            .find_map(|m| self.search(op, block, access, m))
        })
    }
}

/// All levels of one configuration's characterization.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PerfTableSet {
    /// Cluster name.
    pub cluster: String,
    /// Configuration name (e.g. `"RAID 5"`).
    pub config: String,
    /// One table per characterized level.
    pub tables: BTreeMap<IoLevel, PerfTable>,
}

impl PerfTableSet {
    /// An empty set for a (cluster, config) pair.
    pub fn new(cluster: impl Into<String>, config: impl Into<String>) -> PerfTableSet {
        PerfTableSet {
            cluster: cluster.into(),
            config: config.into(),
            tables: BTreeMap::new(),
        }
    }

    /// The table of a level, if characterized.
    pub fn get(&self, level: IoLevel) -> Option<&PerfTable> {
        self.tables.get(&level)
    }

    /// Inserts/replaces a level's table.
    pub fn set(&mut self, level: IoLevel, table: PerfTable) {
        self.tables.insert(level, table);
    }

    /// Serializes to JSON (the persisted "performance table file" the
    /// paper's flowcharts read back in the evaluation phase).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("PerfTableSet serializes")
    }

    /// Parses a JSON performance-table file. Rows are re-sorted into the
    /// `(op, access, mode, block)` order [`PerfTable::search`] requires —
    /// hand-edited or externally generated files may list them in any
    /// order.
    pub fn from_json(s: &str) -> Result<PerfTableSet, serde_json::Error> {
        let mut set: PerfTableSet = serde_json::from_str(s)?;
        for table in set.tables.values_mut() {
            table.resort();
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(op: OpType, block: u64, rate_mib: u64) -> PerfRow {
        PerfRow {
            op,
            block,
            access: AccessType::Global,
            mode: AccessMode::Sequential,
            rate: Bandwidth::from_mib_per_sec(rate_mib),
            iops: 100.0,
            latency: Time::from_millis(1),
        }
    }

    fn table() -> PerfTable {
        let mut t = PerfTable::new();
        // Inserted out of order on purpose.
        t.insert(row(OpType::Write, 1024, 50));
        t.insert(row(OpType::Write, 4096, 80));
        t.insert(row(OpType::Write, 256, 20));
        t.insert(row(OpType::Read, 1024, 70));
        t
    }

    #[test]
    fn rows_are_key_sorted() {
        let t = table();
        let blocks: Vec<u64> = t
            .rows()
            .filter(|r| r.op == OpType::Write)
            .map(|r| r.block)
            .collect();
        assert_eq!(blocks, vec![256, 1024, 4096]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut t = table();
        t.insert(row(OpType::Write, 1024, 99));
        assert_eq!(t.len(), 4);
        let r = t
            .search(
                OpType::Write,
                1024,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.rate, Bandwidth::from_mib_per_sec(99));
    }

    #[test]
    fn search_below_min_selects_min() {
        let t = table();
        let r = t
            .search(
                OpType::Write,
                64,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 256);
    }

    #[test]
    fn search_above_max_selects_max() {
        let t = table();
        let r = t
            .search(
                OpType::Write,
                1 << 30,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 4096);
    }

    #[test]
    fn search_exact_hit() {
        let t = table();
        let r = t
            .search(
                OpType::Write,
                1024,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 1024);
        assert_eq!(r.rate, Bandwidth::from_mib_per_sec(50));
    }

    #[test]
    fn search_between_selects_closest_upper() {
        let t = table();
        let r = t
            .search(
                OpType::Write,
                2000,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 4096, "closest upper value per Fig. 11");
        let r = t
            .search(
                OpType::Write,
                300,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 1024);
    }

    #[test]
    fn search_respects_op_and_access() {
        let t = table();
        assert!(t
            .search(
                OpType::Read,
                1024,
                AccessType::Global,
                AccessMode::Sequential
            )
            .is_some());
        assert!(t
            .search(
                OpType::Read,
                1024,
                AccessType::Local,
                AccessMode::Sequential
            )
            .is_none());
        assert!(t
            .search(OpType::Read, 1024, AccessType::Global, AccessMode::Random)
            .is_none());
    }

    #[test]
    fn lenient_search_falls_back_across_modes() {
        let t = table();
        let r = t
            .search_lenient(OpType::Read, 1024, AccessType::Global, AccessMode::Random)
            .unwrap();
        assert_eq!(r.mode, AccessMode::Sequential);
    }

    #[test]
    fn set_roundtrips_through_json() {
        let mut set = PerfTableSet::new("Aohyper", "RAID 5");
        set.set(IoLevel::GlobalFs, table());
        let json = set.to_json();
        let back = PerfTableSet::from_json(&json).unwrap();
        assert_eq!(back.cluster, "Aohyper");
        assert_eq!(back.config, "RAID 5");
        assert_eq!(back.get(IoLevel::GlobalFs).unwrap().len(), 4);
        assert!(back.get(IoLevel::LocalFs).is_none());
    }

    /// A `PerfTableSet` JSON file whose `GlobalFs` rows appear in the
    /// given order (as a hand-edited or externally generated table file
    /// might list them).
    fn table_file_json(rows: &[PerfRow]) -> String {
        let rows = rows
            .iter()
            .map(|r| serde_json::to_string(r).unwrap())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            r#"{{"cluster":"Aohyper","config":"RAID 5","tables":{{"GlobalFs":{{"rows":[{rows}]}}}}}}"#
        )
    }

    #[test]
    fn from_json_resorts_shuffled_rows() {
        // Rows arrive block-unsorted; search must still follow Fig. 11.
        let json = table_file_json(&[
            row(OpType::Write, 4096, 80),
            row(OpType::Write, 256, 20),
            row(OpType::Write, 16384, 90),
            row(OpType::Write, 1024, 50),
        ]);
        let back = PerfTableSet::from_json(&json).unwrap();
        let t = back.get(IoLevel::GlobalFs).unwrap();
        let blocks: Vec<u64> = t.rows().map(|r| r.block).collect();
        assert_eq!(blocks, vec![256, 1024, 4096, 16384], "re-sorted on load");
        // The closest-upper-block rule works on the re-sorted rows (it
        // would pick a wrong row — or hit the unreachable! — unsorted).
        let r = t
            .search(
                OpType::Write,
                2000,
                AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap();
        assert_eq!(r.block, 4096);
        // And the round trip is stable from here on.
        let again = PerfTableSet::from_json(&back.to_json()).unwrap();
        let blocks: Vec<u64> = again
            .get(IoLevel::GlobalFs)
            .unwrap()
            .rows()
            .map(|r| r.block)
            .collect();
        assert_eq!(blocks, vec![256, 1024, 4096, 16384]);
    }

    #[test]
    fn from_json_keeps_last_duplicate_key() {
        // Duplicate key: the later row wins, matching insert's
        // replace-on-collision behavior.
        let json = table_file_json(&[row(OpType::Write, 1024, 50), row(OpType::Write, 1024, 99)]);
        let back = PerfTableSet::from_json(&json).unwrap();
        let t = back.get(IoLevel::GlobalFs).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.rows().next().unwrap().rate,
            Bandwidth::from_mib_per_sec(99)
        );
    }

    #[test]
    fn level_labels_and_access() {
        assert_eq!(IoLevel::Library.label(), "I/O Lib");
        assert_eq!(IoLevel::GlobalFs.label(), "NFS");
        assert_eq!(IoLevel::LocalFs.label(), "Local FS");
        assert_eq!(IoLevel::LocalFs.access_type(), AccessType::Local);
        assert_eq!(IoLevel::Library.access_type(), AccessType::Global);
        assert_eq!(IoLevel::Metadata.label(), "Metadata");
        assert_eq!(IoLevel::Metadata.access_type(), AccessType::Global);
        assert!(!IoLevel::ALL.contains(&IoLevel::Metadata));
    }
}
