//! A full methodology campaign in one call — supervised and resumable.
//!
//! The paper's workflow (Fig. 1) iterates: characterize each candidate
//! configuration, characterize the application(s), evaluate every
//! (application × configuration) pair, and read the used-percentage tables
//! to pick a configuration. [`run_campaign`] packages that loop; the
//! [`Campaign`] result carries every intermediate artifact plus the
//! advisor's prediction quality, so the whole study is reproducible from
//! one value.
//!
//! Real campaigns of this shape are long-running and frequently
//! interrupted, so the runner is *supervised*: every cell executes isolated
//! (a panic costs one cell, not the campaign), under optional watchdog
//! budgets (a livelocked or runaway simulation becomes a
//! [`CellOutcome::TimedOut`] cell), with bounded retry and per-configuration
//! quarantine, and with every completed artifact offered to a [`CellStore`]
//! so a killed campaign resumes instead of restarting. The campaign always
//! completes with whatever cells survived — graceful degradation to partial
//! results, reported in the outcome table.

use crate::advisor::{predict, Prediction};
use crate::charact::{characterize_system, CharacterizeOptions};
use crate::eval::{evaluate, EvalError, EvalOptions, EvalReport};
use crate::perf_table::PerfTableSet;
use crate::report::{render_metrics, TextTable};
use crate::supervise::run_isolated;
use cluster::{ClusterSpec, IoConfig};
use serde::{Deserialize, Serialize};
use simcore::{Abort, WatchdogSpec};
use std::collections::HashMap;
use std::time::{Duration, Instant};
use workloads::Scenario;

/// A named application factory: campaigns run each scenario on several
/// configurations, so the workload must be constructible repeatedly.
pub type AppFactory<'a> = (&'a str, &'a dyn Fn() -> Scenario);

/// One successfully evaluated (application × configuration) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Application label.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// The full evaluation report.
    pub report: EvalReport,
    /// The advisor's prediction for this cell (from the tables alone).
    pub prediction: Option<Prediction>,
}

impl CampaignCell {
    /// Relative error of the predicted I/O time vs the simulated one
    /// (`None` when no prediction was possible).
    pub fn prediction_error(&self) -> Option<f64> {
        let p = self.prediction.as_ref()?;
        let actual = self.report.io_time.as_secs_f64();
        if actual == 0.0 {
            return None;
        }
        Some((p.io_time.as_secs_f64() - actual).abs() / actual)
    }
}

/// What happened to one campaign cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell evaluated successfully.
    Ok(Box<CampaignCell>),
    /// The cell failed (panic or invalid configuration) after `attempts`
    /// tries.
    Failed {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// What went wrong (panic message or typed-error rendering).
        error: String,
        /// How many times the cell was attempted.
        attempts: u32,
    },
    /// The watchdog aborted the cell's run.
    TimedOut {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// Why the watchdog stopped the run.
        abort: Abort,
        /// How many times the cell was attempted.
        attempts: u32,
    },
    /// The cell never ran (quarantined configuration, failed
    /// characterization, or exhausted campaign wall budget).
    Skipped {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// Why the cell was skipped.
        reason: String,
    },
}

impl CellOutcome {
    /// Application label of the cell.
    pub fn app(&self) -> &str {
        match self {
            CellOutcome::Ok(c) => &c.app,
            CellOutcome::Failed { app, .. }
            | CellOutcome::TimedOut { app, .. }
            | CellOutcome::Skipped { app, .. } => app,
        }
    }

    /// Configuration name of the cell.
    pub fn config(&self) -> &str {
        match self {
            CellOutcome::Ok(c) => &c.config,
            CellOutcome::Failed { config, .. }
            | CellOutcome::TimedOut { config, .. }
            | CellOutcome::Skipped { config, .. } => config,
        }
    }

    /// Whether the cell produced a report.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// Short status label for the outcome table.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Failed { .. } => "failed",
            CellOutcome::TimedOut { .. } => "timed out",
            CellOutcome::Skipped { .. } => "skipped",
        }
    }

    /// Whether a checkpoint may record this outcome. `Skipped` cells and
    /// wall-clock aborts depend on host conditions, not the simulation, so
    /// persisting them would make a resumed campaign diverge from an
    /// uninterrupted one; they are recomputed on resume instead.
    pub fn is_persistable(&self) -> bool {
        match self {
            CellOutcome::Skipped { .. } => false,
            CellOutcome::TimedOut { abort, .. } => abort.is_deterministic(),
            CellOutcome::Ok(_) | CellOutcome::Failed { .. } => true,
        }
    }
}

/// Where a supervised campaign checkpoints completed artifacts and looks
/// them up on resume. Implementations must only return artifacts they can
/// vouch for — a store backed by disk verifies integrity digests and treats
/// any corrupt or unreadable entry as absent (recompute, never trust).
pub trait CellStore {
    /// A previously checkpointed characterization for `(cluster, config)`.
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet>;
    /// Checkpoints a completed characterization.
    fn save_tables(&mut self, tables: &PerfTableSet);
    /// A previously checkpointed outcome for `(app, config)`.
    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome>;
    /// Checkpoints a completed cell outcome.
    fn save_outcome(&mut self, outcome: &CellOutcome);
}

/// A store that never remembers anything: every run starts fresh.
pub struct NoStore;

impl CellStore for NoStore {
    fn load_tables(&mut self, _cluster: &str, _config: &str) -> Option<PerfTableSet> {
        None
    }
    fn save_tables(&mut self, _tables: &PerfTableSet) {}
    fn load_outcome(&mut self, _app: &str, _config: &str) -> Option<CellOutcome> {
        None
    }
    fn save_outcome(&mut self, _outcome: &CellOutcome) {}
}

/// An in-memory store (tests and same-process resume).
#[derive(Default)]
pub struct MemStore {
    tables: HashMap<(String, String), PerfTableSet>,
    outcomes: HashMap<(String, String), CellOutcome>,
    /// Characterizations served from the store.
    pub table_hits: u32,
    /// Outcomes served from the store.
    pub outcome_hits: u32,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of checkpointed outcomes.
    pub fn outcome_count(&self) -> usize {
        self.outcomes.len()
    }
}

impl CellStore for MemStore {
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet> {
        let hit = self
            .tables
            .get(&(cluster.to_string(), config.to_string()))
            .cloned();
        if hit.is_some() {
            self.table_hits += 1;
        }
        hit
    }
    fn save_tables(&mut self, tables: &PerfTableSet) {
        self.tables.insert(
            (tables.cluster.clone(), tables.config.clone()),
            tables.clone(),
        );
    }
    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome> {
        let hit = self
            .outcomes
            .get(&(app.to_string(), config.to_string()))
            .cloned();
        if hit.is_some() {
            self.outcome_hits += 1;
        }
        hit
    }
    fn save_outcome(&mut self, outcome: &CellOutcome) {
        self.outcomes.insert(
            (outcome.app().to_string(), outcome.config().to_string()),
            outcome.clone(),
        );
    }
}

/// Supervision policy for a campaign.
#[derive(Clone, Debug)]
pub struct SuperviseOptions {
    /// Watchdog budgets applied to every characterization and evaluation
    /// run (`None`: none). A `CharacterizeOptions`/`EvalOptions` watchdog,
    /// when set, takes precedence for its phase.
    pub watchdog: Option<WatchdogSpec>,
    /// How many times a panicking cell is retried before it is recorded as
    /// `Failed` (typed errors and aborts are deterministic and never
    /// retried).
    pub max_retries: u32,
    /// Quarantine a configuration after this many *consecutive* failed or
    /// timed-out cells: its remaining cells are skipped instead of burning
    /// the rest of the campaign's budget.
    pub quarantine_after: u32,
    /// Optional wall-clock budget for the whole campaign; once exhausted,
    /// remaining cells are skipped (and never persisted, so a resumed run
    /// computes them).
    pub wall_budget: Option<Duration>,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            watchdog: None,
            max_retries: 1,
            quarantine_after: 3,
            wall_budget: None,
        }
    }
}

impl SuperviseOptions {
    /// Sets the per-run watchdog budgets.
    pub fn with_watchdog(mut self, watchdog: WatchdogSpec) -> SuperviseOptions {
        self.watchdog = Some(watchdog);
        self
    }

    /// Sets the whole-campaign wall-clock budget.
    pub fn with_wall_budget(mut self, budget: Duration) -> SuperviseOptions {
        self.wall_budget = Some(budget);
        self
    }
}

/// The outcome of a whole methodology campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Cluster name.
    pub cluster: String,
    /// Characterizations of the successfully characterized configurations,
    /// in input order.
    pub tables: Vec<PerfTableSet>,
    /// Successfully evaluated cells, application-major (the `Ok` subset of
    /// `outcomes`).
    pub cells: Vec<CampaignCell>,
    /// Every cell's outcome, application-major.
    pub outcomes: Vec<CellOutcome>,
    /// Configurations whose characterization failed, with the reason.
    pub charact_errors: Vec<(String, String)>,
}

impl Campaign {
    /// The fastest configuration for `app` by simulated execution time.
    pub fn best_config(&self, app: &str) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.app == app)
            .min_by_key(|c| c.report.exec_time)
    }

    /// Mean advisor prediction error across all predicted cells.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| c.prediction_error())
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Whether any cell failed, timed out, or was skipped — i.e. the
    /// campaign degraded to partial results.
    pub fn is_degraded(&self) -> bool {
        !self.charact_errors.is_empty() || self.outcomes.iter().any(|o| !o.is_ok())
    }

    /// One line counting outcomes by kind, e.g. `3 ok, 1 failed,
    /// 1 timed out, 2 skipped`.
    pub fn error_summary(&self) -> String {
        let count = |label: &str| self.outcomes.iter().filter(|o| o.label() == label).count();
        format!(
            "{} ok, {} failed, {} timed out, {} skipped",
            count("ok"),
            count("failed"),
            count("timed out"),
            count("skipped")
        )
    }

    /// Renders the campaign summary: metrics per cell plus the winner and
    /// prediction quality per application; degraded campaigns additionally
    /// report every failed/timed-out/skipped cell.
    pub fn render(&self) -> String {
        let mut out = format!("=== Campaign on {} ===\n", self.cluster);
        let mut apps: Vec<&str> = self.cells.iter().map(|c| c.app.as_str()).collect();
        apps.dedup();
        for app in apps {
            let rows: Vec<(&str, &str, &EvalReport)> = self
                .cells
                .iter()
                .filter(|c| c.app == app)
                .map(|c| (c.config.as_str(), "", &c.report))
                .collect();
            out.push_str(&format!("\n-- {app} --\n{}", render_metrics(&rows)));
            if let Some(best) = self.best_config(app) {
                out.push_str(&format!(
                    "fastest configuration: {} ({})\n",
                    best.config, best.report.exec_time
                ));
            }
            let mut t = TextTable::new(vec!["config", "predicted io", "simulated io", "error"]);
            for c in self.cells.iter().filter(|c| c.app == app) {
                if let (Some(p), Some(e)) = (&c.prediction, c.prediction_error()) {
                    t.row(vec![
                        c.config.clone(),
                        format!("{}", p.io_time),
                        format!("{}", c.report.io_time),
                        format!("{:.1}%", e * 100.0),
                    ]);
                }
            }
            if !t.is_empty() {
                out.push_str("advisor check:\n");
                out.push_str(&t.render());
            }
        }
        if self.is_degraded() {
            out.push_str(&format!(
                "\n-- degraded campaign: partial results ({}) --\n",
                self.error_summary()
            ));
            for (config, error) in &self.charact_errors {
                out.push_str(&format!("characterization of {config} failed: {error}\n"));
            }
            let mut t = TextTable::new(vec!["app", "config", "outcome", "detail"]);
            for o in self.outcomes.iter().filter(|o| !o.is_ok()) {
                let detail = match o {
                    CellOutcome::Failed {
                        error, attempts, ..
                    } => format!("{error} (attempt {attempts})"),
                    CellOutcome::TimedOut {
                        abort, attempts, ..
                    } => format!("{abort} (attempt {attempts})"),
                    CellOutcome::Skipped { reason, .. } => reason.clone(),
                    CellOutcome::Ok(_) => unreachable!("filtered"),
                };
                t.row(vec![
                    o.app().to_string(),
                    o.config().to_string(),
                    o.label().to_string(),
                    detail,
                ]);
            }
            if !t.is_empty() {
                out.push_str(&t.render());
            }
        }
        out
    }
}

/// Runs the full methodology: characterize every configuration, evaluate
/// every application on every configuration, and validate the advisor's
/// table-only predictions against the simulated outcomes.
///
/// Equivalent to [`run_campaign_supervised`] with default supervision and
/// no checkpoint store: cells are still panic-isolated, so a bad cell
/// degrades the campaign instead of aborting it.
pub fn run_campaign(
    spec: &ClusterSpec,
    configs: &[IoConfig],
    apps: &[AppFactory<'_>],
    opts: &CharacterizeOptions,
) -> Campaign {
    run_campaign_supervised(
        spec,
        configs,
        apps,
        opts,
        &SuperviseOptions::default(),
        &mut NoStore,
    )
}

/// Runs a supervised, resumable campaign.
///
/// Per configuration, the characterization is loaded from `store` when a
/// valid checkpoint covers every requested level, otherwise computed
/// (isolated, watchdog-supervised) and checkpointed. Per cell, a
/// checkpointed outcome is replayed; otherwise the evaluation runs
/// isolated with bounded retry, and the resulting outcome is checkpointed
/// when deterministic. A configuration whose characterization fails — or
/// that accumulates `quarantine_after` consecutive cell failures — is
/// quarantined: its remaining cells are skipped. The campaign always
/// returns; inspect [`Campaign::is_degraded`] and [`Campaign::outcomes`]
/// for what survived.
pub fn run_campaign_supervised(
    spec: &ClusterSpec,
    configs: &[IoConfig],
    apps: &[AppFactory<'_>],
    opts: &CharacterizeOptions,
    sup: &SuperviseOptions,
    store: &mut dyn CellStore,
) -> Campaign {
    let started = Instant::now();
    let over_budget = |started: &Instant| {
        sup.wall_budget
            .map(|b| started.elapsed() >= b)
            .unwrap_or(false)
    };
    const BUDGET_REASON: &str = "campaign wall-clock budget exhausted";

    let mut copts = opts.clone();
    if copts.watchdog.is_none() {
        copts.watchdog = sup.watchdog.clone();
    }

    // Phase 1: characterize (or restore) every configuration.
    let mut tables: Vec<PerfTableSet> = Vec::new();
    let mut table_of: Vec<Option<usize>> = Vec::with_capacity(configs.len());
    let mut charact_errors: Vec<(String, String)> = Vec::new();
    let mut quarantined: Vec<Option<String>> = vec![None; configs.len()];
    for (ci, config) in configs.iter().enumerate() {
        if over_budget(&started) {
            quarantined[ci] = Some(BUDGET_REASON.to_string());
            table_of.push(None);
            continue;
        }
        // A checkpointed characterization is only trusted when it covers
        // every requested level; a partial or stale one is recomputed.
        let restored = store
            .load_tables(&spec.name, &config.name)
            .filter(|t| opts.levels.iter().all(|&l| t.get(l).is_some()));
        let tset = match restored {
            Some(t) => Some(t),
            None => match run_isolated(|| characterize_system(spec, config, &copts)) {
                Ok(Ok(t)) => {
                    store.save_tables(&t);
                    Some(t)
                }
                Ok(Err(e)) => {
                    charact_errors.push((config.name.clone(), e.to_string()));
                    None
                }
                Err(panic) => {
                    charact_errors.push((config.name.clone(), format!("panic: {panic}")));
                    None
                }
            },
        };
        match tset {
            Some(t) => {
                table_of.push(Some(tables.len()));
                tables.push(t);
            }
            None => {
                quarantined[ci] = Some("characterization failed".to_string());
                table_of.push(None);
            }
        }
    }

    // Phase 3: evaluate every (application × configuration) cell.
    let mut outcomes: Vec<CellOutcome> = Vec::new();
    let mut consecutive_failures: Vec<u32> = vec![0; configs.len()];
    for (app_name, factory) in apps {
        for (ci, config) in configs.iter().enumerate() {
            let app = app_name.to_string();
            let cfg = config.name.clone();
            if let Some(reason) = &quarantined[ci] {
                outcomes.push(CellOutcome::Skipped {
                    app,
                    config: cfg,
                    reason: reason.clone(),
                });
                continue;
            }
            if over_budget(&started) {
                outcomes.push(CellOutcome::Skipped {
                    app,
                    config: cfg,
                    reason: BUDGET_REASON.to_string(),
                });
                continue;
            }
            let tset = &tables[table_of[ci].expect("non-quarantined configs are characterized")];
            let outcome = match store.load_outcome(&app, &cfg) {
                Some(stored) => stored,
                None => {
                    let eopts = EvalOptions {
                        watchdog: sup.watchdog.clone(),
                        ..EvalOptions::default()
                    };
                    let mut attempts = 0u32;
                    let outcome = loop {
                        attempts += 1;
                        match run_isolated(|| evaluate(spec, config, factory(), tset, &eopts)) {
                            Ok(Ok(report)) => {
                                let prediction = predict(&report.profile, tset);
                                break CellOutcome::Ok(Box::new(CampaignCell {
                                    app: app.clone(),
                                    config: cfg.clone(),
                                    report,
                                    prediction,
                                }));
                            }
                            Ok(Err(EvalError::Aborted { abort, .. })) => {
                                break CellOutcome::TimedOut {
                                    app: app.clone(),
                                    config: cfg.clone(),
                                    abort,
                                    attempts,
                                };
                            }
                            Ok(Err(e @ EvalError::Config(_))) => {
                                break CellOutcome::Failed {
                                    app: app.clone(),
                                    config: cfg.clone(),
                                    error: e.to_string(),
                                    attempts,
                                };
                            }
                            // Panics may be transient (e.g. a capacity race
                            // in a model): bounded retry.
                            Err(_) if attempts <= sup.max_retries => continue,
                            Err(panic) => {
                                break CellOutcome::Failed {
                                    app: app.clone(),
                                    config: cfg.clone(),
                                    error: format!("panic: {panic}"),
                                    attempts,
                                };
                            }
                        }
                    };
                    if outcome.is_persistable() {
                        store.save_outcome(&outcome);
                    }
                    outcome
                }
            };
            match &outcome {
                CellOutcome::Ok(_) => consecutive_failures[ci] = 0,
                CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. } => {
                    consecutive_failures[ci] += 1;
                    if consecutive_failures[ci] >= sup.quarantine_after {
                        quarantined[ci] = Some(format!(
                            "quarantined after {} consecutive failures",
                            consecutive_failures[ci]
                        ));
                    }
                }
                CellOutcome::Skipped { .. } => {}
            }
            outcomes.push(outcome);
        }
    }

    let cells = outcomes
        .iter()
        .filter_map(|o| match o {
            CellOutcome::Ok(c) => Some((**c).clone()),
            _ => None,
        })
        .collect();
    Campaign {
        cluster: spec.name.clone(),
        tables,
        cells,
        outcomes,
        charact_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use mpisim::{MpiOp, OpStream};
    use simcore::KIB;
    use workloads::{BtClass, BtIo, BtSubtype};

    fn quick_configs() -> Vec<IoConfig> {
        vec![
            IoConfigBuilder::new(DeviceLayout::Jbod)
                .write_cache_mib(0)
                .build(),
            IoConfigBuilder::new(DeviceLayout::Raid5 {
                disks: 5,
                stripe: 256 * KIB,
            })
            .build(),
        ]
    }

    fn bt_scenario() -> Scenario {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    }

    fn quick_campaign() -> Campaign {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick())
    }

    #[test]
    fn campaign_covers_every_cell() {
        let c = quick_campaign();
        assert_eq!(c.tables.len(), 2);
        assert_eq!(c.cells.len(), 2);
        assert!(c.cells.iter().all(|cell| cell.app == "btio-full"));
        assert!(c.best_config("btio-full").is_some());
        assert!(c.best_config("unknown").is_none());
        assert!(!c.is_degraded());
        assert_eq!(c.outcomes.len(), 2);
        assert!(c.outcomes.iter().all(CellOutcome::is_ok));
    }

    #[test]
    fn predictions_are_present_and_bounded() {
        let c = quick_campaign();
        for cell in &c.cells {
            assert!(
                cell.prediction.is_some(),
                "no prediction for {}",
                cell.config
            );
        }
        let err = c.mean_prediction_error().expect("errors computed");
        // The advisor models only the I/O path; an order of magnitude is
        // the sanity bound, typical errors are far smaller.
        assert!(err < 10.0, "mean prediction error {err}");
    }

    #[test]
    fn render_contains_all_sections() {
        let c = quick_campaign();
        let s = c.render();
        assert!(s.contains("Campaign on test"));
        assert!(s.contains("btio-full"));
        assert!(s.contains("fastest configuration"));
        assert!(s.contains("advisor check"));
        assert!(
            !s.contains("degraded campaign"),
            "healthy campaign must not report degradation"
        );
    }

    /// A rank that forever yields zero-cost ops: a livelocked cell.
    struct LivelockStream;

    impl OpStream for LivelockStream {
        fn next_op(&mut self) -> Option<MpiOp> {
            Some(MpiOp::Marker(0))
        }
    }

    fn livelock_scenario() -> Scenario {
        Scenario {
            name: "livelock".into(),
            programs: vec![Box::new(LivelockStream)],
            mounts: vec![],
            prealloc: vec![],
        }
    }

    fn panic_scenario() -> Scenario {
        panic!("injected factory failure")
    }

    #[test]
    fn panicking_and_livelocked_cells_degrade_not_abort() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let healthy = bt_scenario;
        let bad = panic_scenario;
        let locked = livelock_scenario;
        let apps: Vec<AppFactory> = vec![
            ("btio-full", &healthy),
            ("bad-app", &bad),
            ("livelocked-app", &locked),
        ];
        let sup = SuperviseOptions::default()
            .with_watchdog(WatchdogSpec::default().with_stall_limit(100_000));
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert!(c.is_degraded());
        assert_eq!(c.outcomes.len(), 3);
        assert_eq!(c.cells.len(), 1, "only the healthy cell produced a report");
        assert_eq!(c.cells[0].app, "btio-full");
        let by_app = |app: &str| {
            c.outcomes
                .iter()
                .find(|o| o.app() == app)
                .expect("outcome present")
        };
        match by_app("bad-app") {
            CellOutcome::Failed {
                error, attempts, ..
            } => {
                assert!(error.contains("injected factory failure"), "{error}");
                assert_eq!(*attempts, 2, "one retry by default");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        match by_app("livelocked-app") {
            CellOutcome::TimedOut { abort, .. } => {
                assert!(matches!(abort, Abort::Stalled { .. }), "{abort:?}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        let rendered = c.render();
        assert!(rendered.contains("degraded campaign"));
        assert!(rendered.contains("1 ok, 1 failed, 1 timed out, 0 skipped"));
        assert!(rendered.contains("injected factory failure"));
    }

    #[test]
    fn failed_characterization_quarantines_the_config() {
        let spec = presets::test_cluster();
        let configs = vec![
            IoConfigBuilder::new(DeviceLayout::Raid5 {
                disks: 1,
                stripe: 1,
            })
            .build(),
            IoConfigBuilder::new(DeviceLayout::Jbod).build(),
        ];
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let c = run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick());
        assert_eq!(c.tables.len(), 1, "only the valid config characterized");
        assert_eq!(c.charact_errors.len(), 1);
        assert!(c.charact_errors[0]
            .1
            .contains("invalid cluster configuration"));
        assert_eq!(c.cells.len(), 1);
        assert!(matches!(
            c.outcomes[0],
            CellOutcome::Skipped { ref reason, .. } if reason.contains("characterization failed")
        ));
        assert!(c.render().contains("characterization of"));
    }

    #[test]
    fn resumed_campaign_replays_checkpointed_cells_byte_identically() {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let opts = CharacterizeOptions::quick();
        let sup = SuperviseOptions::default();

        let mut store = MemStore::new();
        let first = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut store);
        assert_eq!(store.outcome_count(), 2);
        assert_eq!(store.table_hits, 0);
        assert_eq!(store.outcome_hits, 0);

        let resumed = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut store);
        assert_eq!(store.table_hits, 2, "characterizations restored");
        assert_eq!(store.outcome_hits, 2, "outcomes replayed");
        assert_eq!(
            first.render(),
            resumed.render(),
            "resume must be byte-identical"
        );
    }

    #[test]
    fn quarantine_after_consecutive_failures() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bad = panic_scenario;
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![
            ("bad-1", &bad),
            ("bad-2", &bad),
            ("late-healthy", &bt), // skipped: config quarantined by then
        ];
        let sup = SuperviseOptions {
            max_retries: 0,
            quarantine_after: 2,
            ..SuperviseOptions::default()
        };
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert_eq!(c.outcomes.len(), 3);
        assert!(matches!(
            c.outcomes[0],
            CellOutcome::Failed { attempts: 1, .. }
        ));
        assert!(matches!(c.outcomes[1], CellOutcome::Failed { .. }));
        assert!(matches!(
            c.outcomes[2],
            CellOutcome::Skipped { ref reason, .. } if reason.contains("quarantined")
        ));
        assert!(c.cells.is_empty());
    }

    #[test]
    fn exhausted_wall_budget_skips_remaining_cells() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let sup = SuperviseOptions::default().with_wall_budget(Duration::ZERO);
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert!(c.cells.is_empty());
        assert!(c.outcomes.iter().all(
            |o| matches!(o, CellOutcome::Skipped { reason, .. } if reason.contains("budget"))
        ));
        // Budget skips are host-dependent: never checkpointed.
        assert!(!c.outcomes[0].is_persistable());
    }

    #[test]
    fn outcomes_roundtrip_through_serde() {
        let o = CellOutcome::TimedOut {
            app: "a".into(),
            config: "c".into(),
            abort: Abort::Stalled {
                events: 9,
                at: simcore::Time(5),
            },
            attempts: 1,
        };
        let json = serde_json::to_string(&o).unwrap();
        let back: CellOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.app(), "a");
        assert_eq!(back.label(), "timed out");
        assert!(back.is_persistable());
    }
}
