//! A full methodology campaign in one call.
//!
//! The paper's workflow (Fig. 1) iterates: characterize each candidate
//! configuration, characterize the application(s), evaluate every
//! (application × configuration) pair, and read the used-percentage tables
//! to pick a configuration. [`run_campaign`] packages that loop; the
//! [`Campaign`] result carries every intermediate artifact plus the
//! advisor's prediction quality, so the whole study is reproducible from
//! one value.

use crate::advisor::{predict, Prediction};
use crate::charact::{characterize_system, CharacterizeOptions};
use crate::eval::{evaluate, EvalOptions, EvalReport};
use crate::perf_table::PerfTableSet;
use crate::report::{render_metrics, TextTable};
use cluster::{ClusterSpec, IoConfig};
use workloads::Scenario;

/// A named application factory: campaigns run each scenario on several
/// configurations, so the workload must be constructible repeatedly.
pub type AppFactory<'a> = (&'a str, &'a dyn Fn() -> Scenario);

/// One (application × configuration) cell of the campaign.
#[derive(Clone, Debug)]
pub struct CampaignCell {
    /// Application label.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// The full evaluation report.
    pub report: EvalReport,
    /// The advisor's prediction for this cell (from the tables alone).
    pub prediction: Option<Prediction>,
}

impl CampaignCell {
    /// Relative error of the predicted I/O time vs the simulated one
    /// (`None` when no prediction was possible).
    pub fn prediction_error(&self) -> Option<f64> {
        let p = self.prediction.as_ref()?;
        let actual = self.report.io_time.as_secs_f64();
        if actual == 0.0 {
            return None;
        }
        Some((p.io_time.as_secs_f64() - actual).abs() / actual)
    }
}

/// The outcome of a whole methodology campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Cluster name.
    pub cluster: String,
    /// Characterizations per configuration, in input order.
    pub tables: Vec<PerfTableSet>,
    /// Evaluation cells, application-major.
    pub cells: Vec<CampaignCell>,
}

impl Campaign {
    /// The fastest configuration for `app` by simulated execution time.
    pub fn best_config(&self, app: &str) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.app == app)
            .min_by_key(|c| c.report.exec_time)
    }

    /// Mean advisor prediction error across all predicted cells.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| c.prediction_error())
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Renders the campaign summary: metrics per cell plus the winner and
    /// prediction quality per application.
    pub fn render(&self) -> String {
        let mut out = format!("=== Campaign on {} ===\n", self.cluster);
        let mut apps: Vec<&str> = self.cells.iter().map(|c| c.app.as_str()).collect();
        apps.dedup();
        for app in apps {
            let rows: Vec<(&str, &str, &EvalReport)> = self
                .cells
                .iter()
                .filter(|c| c.app == app)
                .map(|c| (c.config.as_str(), "", &c.report))
                .collect();
            out.push_str(&format!("\n-- {app} --\n{}", render_metrics(&rows)));
            if let Some(best) = self.best_config(app) {
                out.push_str(&format!(
                    "fastest configuration: {} ({})\n",
                    best.config, best.report.exec_time
                ));
            }
            let mut t = TextTable::new(vec!["config", "predicted io", "simulated io", "error"]);
            for c in self.cells.iter().filter(|c| c.app == app) {
                if let (Some(p), Some(e)) = (&c.prediction, c.prediction_error()) {
                    t.row(vec![
                        c.config.clone(),
                        format!("{}", p.io_time),
                        format!("{}", c.report.io_time),
                        format!("{:.1}%", e * 100.0),
                    ]);
                }
            }
            if !t.is_empty() {
                out.push_str("advisor check:\n");
                out.push_str(&t.render());
            }
        }
        out
    }
}

/// Runs the full methodology: characterize every configuration, evaluate
/// every application on every configuration, and validate the advisor's
/// table-only predictions against the simulated outcomes.
pub fn run_campaign(
    spec: &ClusterSpec,
    configs: &[IoConfig],
    apps: &[AppFactory<'_>],
    opts: &CharacterizeOptions,
) -> Campaign {
    let tables: Vec<PerfTableSet> = configs
        .iter()
        .map(|c| characterize_system(spec, c, opts))
        .collect();

    let mut cells = Vec::new();
    for (app_name, factory) in apps {
        for (config, tset) in configs.iter().zip(&tables) {
            let report = evaluate(spec, config, factory(), tset, &EvalOptions::default());
            let prediction = predict(&report.profile, tset);
            cells.push(CampaignCell {
                app: app_name.to_string(),
                config: config.name.clone(),
                report,
                prediction,
            });
        }
    }
    Campaign {
        cluster: spec.name.clone(),
        tables,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use simcore::KIB;
    use workloads::{BtClass, BtIo, BtSubtype};

    fn quick_campaign() -> Campaign {
        let spec = presets::test_cluster();
        let configs = vec![
            IoConfigBuilder::new(DeviceLayout::Jbod)
                .write_cache_mib(0)
                .build(),
            IoConfigBuilder::new(DeviceLayout::Raid5 {
                disks: 5,
                stripe: 256 * KIB,
            })
            .build(),
        ];
        let bt = || {
            BtIo::new(BtClass::S, 4, BtSubtype::Full)
                .with_dumps(3)
                .gflops(20.0)
                .scenario()
        };
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick())
    }

    #[test]
    fn campaign_covers_every_cell() {
        let c = quick_campaign();
        assert_eq!(c.tables.len(), 2);
        assert_eq!(c.cells.len(), 2);
        assert!(c.cells.iter().all(|cell| cell.app == "btio-full"));
        assert!(c.best_config("btio-full").is_some());
        assert!(c.best_config("unknown").is_none());
    }

    #[test]
    fn predictions_are_present_and_bounded() {
        let c = quick_campaign();
        for cell in &c.cells {
            assert!(
                cell.prediction.is_some(),
                "no prediction for {}",
                cell.config
            );
        }
        let err = c.mean_prediction_error().expect("errors computed");
        // The advisor models only the I/O path; an order of magnitude is
        // the sanity bound, typical errors are far smaller.
        assert!(err < 10.0, "mean prediction error {err}");
    }

    #[test]
    fn render_contains_all_sections() {
        let c = quick_campaign();
        let s = c.render();
        assert!(s.contains("Campaign on test"));
        assert!(s.contains("btio-full"));
        assert!(s.contains("fastest configuration"));
        assert!(s.contains("advisor check"));
    }
}
