//! A full methodology campaign in one call — supervised and resumable.
//!
//! The paper's workflow (Fig. 1) iterates: characterize each candidate
//! configuration, characterize the application(s), evaluate every
//! (application × configuration) pair, and read the used-percentage tables
//! to pick a configuration. [`run_campaign`] packages that loop; the
//! [`Campaign`] result carries every intermediate artifact plus the
//! advisor's prediction quality, so the whole study is reproducible from
//! one value.
//!
//! Real campaigns of this shape are long-running and frequently
//! interrupted, so the runner is *supervised*: every cell executes isolated
//! (a panic costs one cell, not the campaign), under optional watchdog
//! budgets (a livelocked or runaway simulation becomes a
//! [`CellOutcome::TimedOut`] cell), with bounded retry and per-configuration
//! quarantine, and with every completed artifact offered to a [`CellStore`]
//! so a killed campaign resumes instead of restarting. The campaign always
//! completes with whatever cells survived — graceful degradation to partial
//! results, reported in the outcome table.

use crate::advisor::{predict, Prediction};
use crate::charact::{characterize_system_memo, CharacterizeOptions};
use crate::eval::{evaluate, EvalError, EvalOptions, EvalReport, FaultScenario};
use crate::memo::CharactMemo;
use crate::perf_table::PerfTableSet;
use crate::report::{render_metrics, TextTable};
use crate::supervise::run_isolated;
use cluster::{ClusterSpec, IoConfig};
use serde::{Deserialize, Serialize};
use simcore::{Abort, FaultProfile, FaultSchedule, Time, WatchdogSpec};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use workloads::Scenario;

/// A named application factory: campaigns run each scenario on several
/// configurations (possibly from several worker threads at once), so the
/// workload must be constructible repeatedly from any thread.
pub type AppFactory<'a> = (&'a str, &'a (dyn Fn() -> Scenario + Sync));

/// One successfully evaluated (application × configuration) cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignCell {
    /// Application label.
    pub app: String,
    /// Configuration name.
    pub config: String,
    /// The full evaluation report.
    pub report: EvalReport,
    /// The advisor's prediction for this cell (from the tables alone).
    pub prediction: Option<Prediction>,
}

impl CampaignCell {
    /// Relative error of the predicted I/O time vs the simulated one
    /// (`None` when no prediction was possible).
    pub fn prediction_error(&self) -> Option<f64> {
        let p = self.prediction.as_ref()?;
        let actual = self.report.io_time.as_secs_f64();
        if actual == 0.0 {
            return None;
        }
        Some((p.io_time.as_secs_f64() - actual).abs() / actual)
    }
}

/// What happened to one campaign cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum CellOutcome {
    /// The cell evaluated successfully.
    Ok(Box<CampaignCell>),
    /// The cell failed (panic or invalid configuration) after `attempts`
    /// tries.
    Failed {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// What went wrong (panic message or typed-error rendering).
        error: String,
        /// How many times the cell was attempted.
        attempts: u32,
    },
    /// The watchdog aborted the cell's run.
    TimedOut {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// Why the watchdog stopped the run.
        abort: Abort,
        /// How many times the cell was attempted.
        attempts: u32,
    },
    /// The cell never ran (quarantined configuration, failed
    /// characterization, or exhausted campaign wall budget).
    Skipped {
        /// Application label.
        app: String,
        /// Configuration name.
        config: String,
        /// Why the cell was skipped.
        reason: String,
    },
}

impl CellOutcome {
    /// Application label of the cell.
    pub fn app(&self) -> &str {
        match self {
            CellOutcome::Ok(c) => &c.app,
            CellOutcome::Failed { app, .. }
            | CellOutcome::TimedOut { app, .. }
            | CellOutcome::Skipped { app, .. } => app,
        }
    }

    /// Configuration name of the cell.
    pub fn config(&self) -> &str {
        match self {
            CellOutcome::Ok(c) => &c.config,
            CellOutcome::Failed { config, .. }
            | CellOutcome::TimedOut { config, .. }
            | CellOutcome::Skipped { config, .. } => config,
        }
    }

    /// Whether the cell produced a report.
    pub fn is_ok(&self) -> bool {
        matches!(self, CellOutcome::Ok(_))
    }

    /// Short status label for the outcome table.
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Ok(_) => "ok",
            CellOutcome::Failed { .. } => "failed",
            CellOutcome::TimedOut { .. } => "timed out",
            CellOutcome::Skipped { .. } => "skipped",
        }
    }

    /// Whether a checkpoint may record this outcome. `Skipped` cells and
    /// wall-clock aborts depend on host conditions, not the simulation, so
    /// persisting them would make a resumed campaign diverge from an
    /// uninterrupted one; they are recomputed on resume instead.
    pub fn is_persistable(&self) -> bool {
        match self {
            CellOutcome::Skipped { .. } => false,
            CellOutcome::TimedOut { abort, .. } => abort.is_deterministic(),
            CellOutcome::Ok(_) | CellOutcome::Failed { .. } => true,
        }
    }
}

/// Typed health counters for a [`CellStore`]: what went wrong on the host
/// side while persisting or loading campaign artifacts. Store failures are
/// never fatal to a campaign (the self-healing paths retry, quarantine, or
/// degrade to memory), but they must not be silent either — the counters
/// are surfaced in the campaign summary and drive the `--strict-store`
/// exit code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreHealth {
    /// Artifacts that could not be serialized (never reached disk).
    pub serialize_errors: u64,
    /// Write attempts that failed and were retried with backoff.
    pub write_retries: u64,
    /// Writes that exhausted their retries (artifact kept in memory only).
    pub write_failures: u64,
    /// Corrupt checkpoint files quarantined on load (renamed aside and
    /// recomputed).
    pub quarantined: u64,
    /// Whether the store degraded to in-memory operation for at least one
    /// artifact — a resumed run will recompute those artifacts.
    pub degraded: bool,
}

impl StoreHealth {
    /// Whether anything at all went wrong.
    pub fn any(&self) -> bool {
        self.serialize_errors > 0
            || self.write_retries > 0
            || self.write_failures > 0
            || self.quarantined > 0
            || self.degraded
    }

    /// One line of counters, e.g.
    /// `1 serialize error, 2 write retries, 1 write failure (degraded to in-memory), 1 quarantined checkpoint`.
    pub fn summary(&self) -> String {
        fn part(n: u64, one: &str, many: &str) -> Option<String> {
            (n > 0).then(|| format!("{n} {}", if n == 1 { one } else { many }))
        }
        let mut parts: Vec<String> = Vec::new();
        parts.extend(part(
            self.serialize_errors,
            "serialize error",
            "serialize errors",
        ));
        parts.extend(part(self.write_retries, "write retry", "write retries"));
        if let Some(mut s) = part(self.write_failures, "write failure", "write failures") {
            if self.degraded {
                s.push_str(" (degraded to in-memory)");
            }
            parts.push(s);
        } else if self.degraded {
            parts.push("degraded to in-memory".to_string());
        }
        parts.extend(part(
            self.quarantined,
            "quarantined checkpoint",
            "quarantined checkpoints",
        ));
        if parts.is_empty() {
            "healthy".to_string()
        } else {
            parts.join(", ")
        }
    }
}

/// Where a supervised campaign checkpoints completed artifacts and looks
/// them up on resume. Implementations must only return artifacts they can
/// vouch for — a store backed by disk verifies integrity digests and treats
/// any corrupt or unreadable entry as absent (recompute, never trust).
pub trait CellStore {
    /// A previously checkpointed characterization for `(cluster, config)`.
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet>;
    /// Checkpoints a completed characterization.
    fn save_tables(&mut self, tables: &PerfTableSet);
    /// A previously checkpointed outcome for `(app, config)`.
    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome>;
    /// Checkpoints a completed cell outcome.
    fn save_outcome(&mut self, outcome: &CellOutcome);
    /// Host-side failure counters accumulated so far (see [`StoreHealth`]).
    /// Infallible in-memory stores report the healthy default.
    fn health(&self) -> StoreHealth {
        StoreHealth::default()
    }
}

/// A store that never remembers anything: every run starts fresh.
pub struct NoStore;

impl CellStore for NoStore {
    fn load_tables(&mut self, _cluster: &str, _config: &str) -> Option<PerfTableSet> {
        None
    }
    fn save_tables(&mut self, _tables: &PerfTableSet) {}
    fn load_outcome(&mut self, _app: &str, _config: &str) -> Option<CellOutcome> {
        None
    }
    fn save_outcome(&mut self, _outcome: &CellOutcome) {}
}

/// An in-memory store (tests and same-process resume).
#[derive(Default)]
pub struct MemStore {
    tables: HashMap<(String, String), PerfTableSet>,
    outcomes: HashMap<(String, String), CellOutcome>,
    /// Characterizations served from the store.
    pub table_hits: u32,
    /// Outcomes served from the store.
    pub outcome_hits: u32,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> MemStore {
        MemStore::default()
    }

    /// Number of checkpointed outcomes.
    pub fn outcome_count(&self) -> usize {
        self.outcomes.len()
    }

    /// Every checkpointed outcome for `app`, sorted by configuration name
    /// (the backing map is unordered, so the sort keeps inspection
    /// deterministic).
    pub fn outcomes_for(&self, app: &str) -> Vec<&CellOutcome> {
        let mut v: Vec<&CellOutcome> = self
            .outcomes
            .iter()
            .filter(|((a, _), _)| a == app)
            .map(|(_, o)| o)
            .collect();
        v.sort_by(|a, b| a.config().cmp(b.config()));
        v
    }
}

impl CellStore for MemStore {
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet> {
        let hit = self
            .tables
            .get(&(cluster.to_string(), config.to_string()))
            .cloned();
        if hit.is_some() {
            self.table_hits += 1;
        }
        hit
    }
    fn save_tables(&mut self, tables: &PerfTableSet) {
        self.tables.insert(
            (tables.cluster.clone(), tables.config.clone()),
            tables.clone(),
        );
    }
    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome> {
        let hit = self
            .outcomes
            .get(&(app.to_string(), config.to_string()))
            .cloned();
        if hit.is_some() {
            self.outcome_hits += 1;
        }
        hit
    }
    fn save_outcome(&mut self, outcome: &CellOutcome) {
        self.outcomes.insert(
            (outcome.app().to_string(), outcome.config().to_string()),
            outcome.clone(),
        );
    }
}

/// Per-cell fault injection for stochastic resilience campaigns: every
/// (application × configuration) cell draws its own [`FaultSchedule`] from
/// a seed derived from the campaign seed and the cell's identity
/// (`"app::config"`), never from a shared RNG stream. Cells are therefore
/// order-independent — evaluating them in any order, on any number of
/// worker threads, injects identical faults per cell.
#[derive(Clone, Debug)]
pub struct CellFaultPolicy {
    /// Campaign-level base seed.
    pub seed: u64,
    /// Simulated-time window faults are drawn over.
    pub horizon: Time,
    /// What kinds of faults to draw, and how many.
    pub profile: FaultProfile,
}

impl CellFaultPolicy {
    /// The fault scenario for one named cell.
    fn scenario_for(&self, app: &str, config: &str) -> FaultScenario {
        FaultScenario::Custom {
            label: "injected".to_string(),
            schedule: FaultSchedule::random_for(
                self.seed,
                &format!("{app}::{config}"),
                self.horizon,
                &self.profile,
            ),
        }
    }
}

/// Supervision policy for a campaign.
#[derive(Clone, Debug)]
pub struct SuperviseOptions {
    /// Watchdog budgets applied to every characterization and evaluation
    /// run (`None`: none). A `CharacterizeOptions`/`EvalOptions` watchdog,
    /// when set, takes precedence for its phase.
    pub watchdog: Option<WatchdogSpec>,
    /// How many times a panicking cell is retried before it is recorded as
    /// `Failed` (typed errors and aborts are deterministic and never
    /// retried).
    pub max_retries: u32,
    /// Quarantine a configuration after this many *consecutive* failed or
    /// timed-out cells: its remaining cells are skipped instead of burning
    /// the rest of the campaign's budget.
    pub quarantine_after: u32,
    /// Optional wall-clock budget for the whole campaign; once exhausted,
    /// remaining cells are skipped (and never persisted, so a resumed run
    /// computes them).
    pub wall_budget: Option<Duration>,
    /// Worker threads evaluating cells (and characterizing configurations).
    /// `1` (the default) runs strictly sequentially on the caller's thread;
    /// any higher value runs a bounded pool of scoped workers whose merged
    /// output is byte-identical to the sequential run (see
    /// [`CellMerger`]).
    pub jobs: usize,
    /// Optional per-cell stochastic fault injection (seeded by cell
    /// identity, so parallel and sequential campaigns inject identically).
    pub cell_faults: Option<CellFaultPolicy>,
    /// Optional in-process characterization memo: repeated characterization
    /// points replay from memory instead of re-running the sweep. A pure
    /// cache — campaigns render and checkpoint byte-identically with or
    /// without it (characterization is deterministic).
    pub memo: Option<Arc<CharactMemo>>,
    /// Optional observability aggregation: when set, every evaluation cell
    /// runs under a [`crate::obs::Collector`] and contributes its
    /// per-level metrics to the hub keyed by cell identity, so
    /// [`crate::obs::MetricsHub::aggregate`] is identical for `jobs = 1`
    /// and `jobs = N`. Pure observation — campaign results render and
    /// checkpoint byte-identically with or without it.
    pub metrics: Option<Arc<crate::obs::MetricsHub>>,
}

impl Default for SuperviseOptions {
    fn default() -> Self {
        SuperviseOptions {
            watchdog: None,
            max_retries: 1,
            quarantine_after: 3,
            wall_budget: None,
            jobs: 1,
            cell_faults: None,
            memo: None,
            metrics: None,
        }
    }
}

impl SuperviseOptions {
    /// Sets the per-run watchdog budgets.
    pub fn with_watchdog(mut self, watchdog: WatchdogSpec) -> SuperviseOptions {
        self.watchdog = Some(watchdog);
        self
    }

    /// Sets the whole-campaign wall-clock budget.
    pub fn with_wall_budget(mut self, budget: Duration) -> SuperviseOptions {
        self.wall_budget = Some(budget);
        self
    }

    /// Sets the worker-pool width (`0` is treated as `1`).
    pub fn with_jobs(mut self, jobs: usize) -> SuperviseOptions {
        self.jobs = jobs.max(1);
        self
    }

    /// Enables per-cell stochastic fault injection.
    pub fn with_cell_faults(mut self, policy: CellFaultPolicy) -> SuperviseOptions {
        self.cell_faults = Some(policy);
        self
    }
}

/// The outcome of a whole methodology campaign.
#[derive(Clone, Debug)]
pub struct Campaign {
    /// Cluster name.
    pub cluster: String,
    /// Characterizations of the successfully characterized configurations,
    /// in input order.
    pub tables: Vec<PerfTableSet>,
    /// Successfully evaluated cells, application-major (the `Ok` subset of
    /// `outcomes`).
    pub cells: Vec<CampaignCell>,
    /// Every cell's outcome, application-major.
    pub outcomes: Vec<CellOutcome>,
    /// Configurations whose characterization failed, with the reason.
    pub charact_errors: Vec<(String, String)>,
    /// Host-side store failure counters for the run (see [`StoreHealth`]).
    /// All-zero for in-memory stores and healthy disk stores; surfaced in
    /// [`Campaign::render`] only when something went wrong, so healthy runs
    /// render byte-identically to runs of older versions.
    pub store_health: StoreHealth,
}

impl Campaign {
    /// The fastest configuration for `app` by simulated execution time.
    pub fn best_config(&self, app: &str) -> Option<&CampaignCell> {
        self.cells
            .iter()
            .filter(|c| c.app == app)
            .min_by_key(|c| c.report.exec_time)
    }

    /// Mean advisor prediction error across all predicted cells.
    pub fn mean_prediction_error(&self) -> Option<f64> {
        let errs: Vec<f64> = self
            .cells
            .iter()
            .filter_map(|c| c.prediction_error())
            .collect();
        if errs.is_empty() {
            None
        } else {
            Some(errs.iter().sum::<f64>() / errs.len() as f64)
        }
    }

    /// Whether any cell failed, timed out, or was skipped — i.e. the
    /// campaign degraded to partial results.
    pub fn is_degraded(&self) -> bool {
        !self.charact_errors.is_empty() || self.outcomes.iter().any(|o| !o.is_ok())
    }

    /// One line counting outcomes by kind, e.g. `3 ok, 1 failed,
    /// 1 timed out, 2 skipped`.
    pub fn error_summary(&self) -> String {
        let count = |label: &str| self.outcomes.iter().filter(|o| o.label() == label).count();
        format!(
            "{} ok, {} failed, {} timed out, {} skipped",
            count("ok"),
            count("failed"),
            count("timed out"),
            count("skipped")
        )
    }

    /// Renders the campaign summary: metrics per cell plus the winner and
    /// prediction quality per application; degraded campaigns additionally
    /// report every failed/timed-out/skipped cell.
    pub fn render(&self) -> String {
        let mut out = format!("=== Campaign on {} ===\n", self.cluster);
        let mut apps: Vec<&str> = self.cells.iter().map(|c| c.app.as_str()).collect();
        apps.dedup();
        for app in apps {
            let rows: Vec<(&str, &str, &EvalReport)> = self
                .cells
                .iter()
                .filter(|c| c.app == app)
                .map(|c| (c.config.as_str(), "", &c.report))
                .collect();
            out.push_str(&format!("\n-- {app} --\n{}", render_metrics(&rows)));
            if let Some(best) = self.best_config(app) {
                out.push_str(&format!(
                    "fastest configuration: {} ({})\n",
                    best.config, best.report.exec_time
                ));
            }
            let mut t = TextTable::new(vec!["config", "predicted io", "simulated io", "error"]);
            for c in self.cells.iter().filter(|c| c.app == app) {
                if let (Some(p), Some(e)) = (&c.prediction, c.prediction_error()) {
                    t.row(vec![
                        c.config.clone(),
                        format!("{}", p.io_time),
                        format!("{}", c.report.io_time),
                        format!("{:.1}%", e * 100.0),
                    ]);
                }
            }
            if !t.is_empty() {
                out.push_str("advisor check:\n");
                out.push_str(&t.render());
            }
        }
        if self.is_degraded() {
            out.push_str(&format!(
                "\n-- degraded campaign: partial results ({}) --\n",
                self.error_summary()
            ));
            for (config, error) in &self.charact_errors {
                out.push_str(&format!("characterization of {config} failed: {error}\n"));
            }
            let mut t = TextTable::new(vec!["app", "config", "outcome", "detail"]);
            for o in self.outcomes.iter().filter(|o| !o.is_ok()) {
                let detail = match o {
                    CellOutcome::Failed {
                        error, attempts, ..
                    } => format!("{error} (attempt {attempts})"),
                    CellOutcome::TimedOut {
                        abort, attempts, ..
                    } => format!("{abort} (attempt {attempts})"),
                    CellOutcome::Skipped { reason, .. } => reason.clone(),
                    CellOutcome::Ok(_) => unreachable!("filtered"),
                };
                t.row(vec![
                    o.app().to_string(),
                    o.config().to_string(),
                    o.label().to_string(),
                    detail,
                ]);
            }
            if !t.is_empty() {
                out.push_str(&t.render());
            }
        }
        // Quarantine-on-load is *successful healing* of damage left by an
        // earlier run: the quarantined artifact is recomputed to an
        // identical value, so it must not perturb the rendered campaign
        // (resume-after-fault renders byte-identical to an uninterrupted
        // run). It is logged when it happens and still counts toward
        // `store_health.any()` for `--strict-store`.
        let rendered = StoreHealth {
            quarantined: 0,
            ..self.store_health
        };
        if rendered.any() {
            out.push_str(&format!("{STORE_HEALTH_MARKER}{} --\n", rendered.summary()));
        }
        out
    }
}

/// Opening marker of the store-health footer appended by
/// [`Campaign::render`]. The footer is operational state of the process
/// that rendered it — artifact caches that persist rendered output should
/// strip it (see [`strip_store_health`]), or a later healthy run would
/// replay a long-gone store problem.
pub const STORE_HEALTH_MARKER: &str = "\n-- store health: ";

/// `rendered` without its trailing store-health footer, if any.
pub fn strip_store_health(rendered: &str) -> &str {
    rendered
        .rfind(STORE_HEALTH_MARKER)
        .map_or(rendered, |i| &rendered[..i])
}

/// Identity of a sampled scenario grid: the grammar's source digest, the
/// sampler seed, and the sample count. Everything that determines which
/// workload variants a campaign sweeps is pinned by these three values,
/// so the rendered key is safe to use as a checkpoint namespace — change
/// the grammar text (beyond comments/whitespace), the seed, or the count
/// and the key moves with it, keeping stale checkpoints from replaying
/// into a different grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GridKey {
    /// Normalized-source digest of the grammar (see
    /// `workloads::grammar::Grammar::digest`).
    pub grammar: u64,
    /// Sampler seed.
    pub seed: u64,
    /// Number of variants drawn.
    pub sample: usize,
}

impl std::fmt::Display for GridKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scenario-{:016x}-s{}-n{}",
            self.grammar, self.seed, self.sample
        )
    }
}

/// What a worker learned about one cell, before the deterministic merge.
/// Workers never decide a cell's *final* outcome — that is the
/// [`CellMerger`]'s job, performed strictly in input order so the merged
/// campaign is independent of completion order.
#[derive(Clone, Debug)]
pub enum CellAttempt {
    /// The worker produced an outcome, either by running the cell or by
    /// replaying a checkpointed one (`from_store`).
    Ran {
        /// The outcome the worker computed or replayed.
        outcome: CellOutcome,
        /// Whether it came from the [`CellStore`] (replays are never
        /// re-persisted).
        from_store: bool,
    },
    /// The worker skipped the cell without running it (it observed a
    /// confirmed quarantine, or the campaign wall budget was exhausted at
    /// dispatch time).
    NotRun {
        /// Why the worker did not run the cell.
        reason: String,
    },
}

/// Deterministic, input-ordered merge of per-cell worker results.
///
/// Cells are indexed application-major (`idx = app_index × configs +
/// config_index`), exactly the order a sequential campaign evaluates them.
/// Workers [`offer`](CellMerger::offer) attempts in *any* completion
/// order; [`merge_ready`](CellMerger::merge_ready) consumes the ready
/// prefix in input order, applying the sequential campaign's quarantine
/// semantics (consecutive-failure counting, permanent per-configuration
/// poisoning) and serializing every checkpoint write through the single
/// caller-provided store. Because quarantine is decided only from
/// already-merged (strictly earlier) cells, and a confirmed quarantine is
/// permanent, the merged outcome vector — and the set of persisted
/// checkpoints — is byte-identical whatever order attempts arrive in.
pub struct CellMerger {
    /// `(app, config)` labels per cell, input order.
    ids: Vec<(String, String)>,
    configs: usize,
    quarantine_after: u32,
    quarantined: Vec<Option<String>>,
    consecutive_failures: Vec<u32>,
    pending: Vec<Option<CellAttempt>>,
    merged: Vec<CellOutcome>,
}

impl CellMerger {
    /// A merger over `apps × configs` cells. `quarantined` carries the
    /// per-configuration poisoning decided before evaluation began
    /// (failed characterizations, exhausted budget).
    pub fn new(
        apps: &[&str],
        configs: &[&str],
        quarantined: Vec<Option<String>>,
        quarantine_after: u32,
    ) -> CellMerger {
        assert_eq!(quarantined.len(), configs.len());
        let ids: Vec<(String, String)> = apps
            .iter()
            .flat_map(|a| configs.iter().map(|c| (a.to_string(), c.to_string())))
            .collect();
        let pending = ids.iter().map(|_| None).collect();
        CellMerger {
            ids,
            configs: configs.len(),
            quarantine_after,
            quarantined,
            consecutive_failures: vec![0; configs.len()],
            pending,
            merged: Vec::new(),
        }
    }

    /// Total number of cells.
    pub fn total(&self) -> usize {
        self.ids.len()
    }

    /// Number of cells merged so far.
    pub fn merged_count(&self) -> usize {
        self.merged.len()
    }

    /// The *confirmed* quarantine reason for a configuration — confirmed
    /// means decided by merged (input-order-earlier) cells only, so a
    /// worker consulting it before dispatch can never skip a cell the
    /// sequential campaign would have run.
    pub fn quarantine_reason(&self, ci: usize) -> Option<&str> {
        self.quarantined[ci].as_deref()
    }

    /// Records a worker's attempt for cell `idx`. Each cell may be offered
    /// exactly once.
    pub fn offer(&mut self, idx: usize, attempt: CellAttempt) {
        assert!(
            self.pending[idx].is_none() && idx >= self.merged.len(),
            "cell {idx} offered twice"
        );
        self.pending[idx] = Some(attempt);
    }

    /// Merges every ready cell in input order, persisting newly computed
    /// deterministic outcomes through `store` (the single serialized
    /// writer). Returns the number of cells merged by this call.
    pub fn merge_ready(&mut self, store: &mut dyn CellStore) -> usize {
        let mut n = 0;
        while self.merged.len() < self.ids.len() {
            let idx = self.merged.len();
            if self.pending[idx].is_none() {
                break;
            }
            let attempt = self.pending[idx].take().expect("checked above");
            let (app, cfg) = self.ids[idx].clone();
            let ci = idx % self.configs;
            let outcome = if let Some(reason) = self.quarantined[ci].clone() {
                // Quarantine wins even when a racing worker already ran the
                // cell: the sequential campaign would have skipped it.
                CellOutcome::Skipped {
                    app,
                    config: cfg,
                    reason,
                }
            } else {
                match attempt {
                    CellAttempt::NotRun { reason } => CellOutcome::Skipped {
                        app,
                        config: cfg,
                        reason,
                    },
                    CellAttempt::Ran {
                        outcome,
                        from_store,
                    } => {
                        if !from_store && outcome.is_persistable() {
                            store.save_outcome(&outcome);
                        }
                        outcome
                    }
                }
            };
            match &outcome {
                CellOutcome::Ok(_) => self.consecutive_failures[ci] = 0,
                CellOutcome::Failed { .. } | CellOutcome::TimedOut { .. } => {
                    self.consecutive_failures[ci] += 1;
                    if self.consecutive_failures[ci] >= self.quarantine_after {
                        self.quarantined[ci] = Some(format!(
                            "quarantined after {} consecutive failures",
                            self.consecutive_failures[ci]
                        ));
                    }
                }
                CellOutcome::Skipped { .. } => {}
            }
            self.merged.push(outcome);
            n += 1;
        }
        n
    }

    /// The merged outcome vector; panics unless every cell was merged.
    pub fn finish(self) -> Vec<CellOutcome> {
        assert_eq!(
            self.merged.len(),
            self.ids.len(),
            "merger finished with unmerged cells"
        );
        self.merged
    }
}

/// Runs `work(i)` for every `i in 0..total` on a pool of `jobs` scoped
/// worker threads pulling indices from a shared counter. `jobs <= 1` runs
/// inline on the caller's thread (identical code path, no spawn).
fn for_each_cell(total: usize, jobs: usize, work: &(impl Fn(usize) + Sync)) {
    let jobs = jobs.clamp(1, total.max(1));
    if jobs == 1 {
        for i in 0..total {
            work(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                work(i);
            });
        }
    });
}

/// Runs one evaluation cell (isolated, watchdog-supervised, with bounded
/// panic retry) to a [`CellOutcome`]. Pure with respect to campaign state:
/// workers call this concurrently, each constructing its own
/// `ClusterMachine` inside [`evaluate`] (machines are not `Sync`).
#[allow(clippy::too_many_arguments)]
fn evaluate_cell(
    spec: &ClusterSpec,
    config: &IoConfig,
    factory: &(dyn Fn() -> Scenario + Sync),
    tset: &PerfTableSet,
    sup: &SuperviseOptions,
    app: &str,
    cfg: &str,
) -> CellOutcome {
    let eopts = EvalOptions {
        watchdog: sup.watchdog.clone(),
        faults: sup
            .cell_faults
            .as_ref()
            .map(|p| p.scenario_for(app, cfg))
            .unwrap_or_default(),
        ..EvalOptions::default()
    };
    // Each attempt observes into a fresh thread-local collector; only the
    // successful attempt's metrics reach the hub (keyed by cell identity,
    // so a retry never double-counts).
    let collector = sup.metrics.as_ref().map(|_| crate::obs::Collector::new());
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let result = {
            let _guard = collector.as_ref().map(crate::obs::Collector::install);
            run_isolated(|| {
                // Chaos cell boundary: an installed host-fault plan may kill
                // this worker here, exactly as a crashed worker thread would.
                simcore::chaos::panic_point(simcore::chaos::ChaosSite::WorkerPanic);
                evaluate(spec, config, factory(), tset, &eopts)
            })
        };
        let observed = collector.as_ref().map(|c| c.take());
        match result {
            Ok(Ok(report)) => {
                if let (Some(hub), Some(data)) = (&sup.metrics, observed) {
                    hub.add(format!("{app}::{cfg}"), data.metrics);
                }
                let prediction = predict(&report.profile, tset);
                break CellOutcome::Ok(Box::new(CampaignCell {
                    app: app.to_string(),
                    config: cfg.to_string(),
                    report,
                    prediction,
                }));
            }
            Ok(Err(EvalError::Aborted { abort, .. })) => {
                break CellOutcome::TimedOut {
                    app: app.to_string(),
                    config: cfg.to_string(),
                    abort,
                    attempts,
                };
            }
            // Config and program errors are deterministic: the same cell
            // fails identically on every attempt, so they break straight to
            // a typed failure without touching the panic-retry budget.
            Ok(Err(e @ (EvalError::Config(_) | EvalError::Program { .. }))) => {
                break CellOutcome::Failed {
                    app: app.to_string(),
                    config: cfg.to_string(),
                    error: e.to_string(),
                    attempts,
                };
            }
            // Injected host faults are transient by construction (a plan is
            // a finite set of hit indices, so the retry terminates): always
            // re-run, and keep the retry invisible to attempt accounting so
            // outcomes — and anything persisted from them — are identical
            // to a fault-free run.
            Err(panic) if simcore::chaos::is_host_fault_panic(&panic) => {
                attempts -= 1;
                continue;
            }
            // Panics may be transient (e.g. a capacity race in a model):
            // bounded retry.
            Err(_) if attempts <= sup.max_retries => continue,
            Err(panic) => {
                break CellOutcome::Failed {
                    app: app.to_string(),
                    config: cfg.to_string(),
                    error: format!("panic: {panic}"),
                    attempts,
                };
            }
        }
    }
}

/// Runs the full methodology: characterize every configuration, evaluate
/// every application on every configuration, and validate the advisor's
/// table-only predictions against the simulated outcomes.
///
/// Equivalent to [`run_campaign_supervised`] with default supervision and
/// no checkpoint store: cells are still panic-isolated, so a bad cell
/// degrades the campaign instead of aborting it.
pub fn run_campaign(
    spec: &ClusterSpec,
    configs: &[IoConfig],
    apps: &[AppFactory<'_>],
    opts: &CharacterizeOptions,
) -> Campaign {
    run_campaign_supervised(
        spec,
        configs,
        apps,
        opts,
        &SuperviseOptions::default(),
        &mut NoStore,
    )
}

/// What a worker learned about one configuration's characterization.
enum CharAttempt {
    /// Replayed from the store (never re-persisted).
    Restored(PerfTableSet),
    /// Computed this run (already persisted by the worker; checkpoint
    /// files are independent per configuration, so write order is
    /// irrelevant to digest stability).
    Computed(PerfTableSet),
    /// Characterization failed (typed error or panic message).
    Failed(String),
    /// The campaign wall budget was exhausted before this configuration
    /// was dispatched.
    Budget,
}

/// Runs a supervised, resumable, optionally parallel campaign.
///
/// Per configuration, the characterization is loaded from `store` when a
/// valid checkpoint covers every requested level, otherwise computed
/// (isolated, watchdog-supervised) and checkpointed. Per cell, a
/// checkpointed outcome is replayed; otherwise the evaluation runs
/// isolated with bounded retry, and the resulting outcome is checkpointed
/// when deterministic. A configuration whose characterization fails — or
/// that accumulates `quarantine_after` consecutive cell failures — is
/// quarantined: its remaining cells are skipped. The campaign always
/// returns; inspect [`Campaign::is_degraded`] and [`Campaign::outcomes`]
/// for what survived.
///
/// With `sup.jobs > 1` the independent cells run on a bounded pool of
/// scoped worker threads. Each worker constructs its own machines (they
/// are not `Sync`); quarantine/retry state and the store sit behind one
/// mutex; and every result flows through the input-ordered [`CellMerger`],
/// so the rendered campaign and the persisted checkpoints are
/// byte-identical to a `jobs = 1` run. The only permitted divergence is
/// wasted work: a worker may *evaluate* a cell that merge-order quarantine
/// then discards (recorded as `Skipped`, never persisted), and may read
/// the store for such a cell; outputs never differ. Wall-budget skips
/// remain host-dependent in either mode and are never persisted.
pub fn run_campaign_supervised(
    spec: &ClusterSpec,
    configs: &[IoConfig],
    apps: &[AppFactory<'_>],
    opts: &CharacterizeOptions,
    sup: &SuperviseOptions,
    store: &mut (dyn CellStore + Send),
) -> Campaign {
    let started = Instant::now();
    let over_budget = || {
        sup.wall_budget
            .map(|b| started.elapsed() >= b)
            .unwrap_or(false)
    };
    const BUDGET_REASON: &str = "campaign wall-clock budget exhausted";

    let mut copts = opts.clone();
    if copts.watchdog.is_none() {
        copts.watchdog = sup.watchdog.clone();
    }

    // Phase 1: characterize (or restore) every configuration. Each
    // configuration is independent, so the pool fans out over them; the
    // input-order merge below rebuilds the exact sequential bookkeeping.
    let char_attempts: Vec<Option<CharAttempt>> = {
        let slots: Mutex<Vec<Option<CharAttempt>>> =
            Mutex::new((0..configs.len()).map(|_| None).collect());
        let store_mx: Mutex<&mut (dyn CellStore + Send)> = Mutex::new(store);
        for_each_cell(configs.len(), sup.jobs, &|ci| {
            let config = &configs[ci];
            let attempt = if over_budget() {
                CharAttempt::Budget
            } else {
                // A checkpointed characterization is only trusted when it
                // covers every requested level; a partial or stale one is
                // recomputed.
                let restored = store_mx
                    .lock()
                    .expect("store lock")
                    .load_tables(&spec.name, &config.name)
                    .filter(|t| opts.levels.iter().all(|&l| t.get(l).is_some()));
                match restored {
                    Some(t) => CharAttempt::Restored(t),
                    None => {
                        // The memo replays a previously computed identical
                        // point; a hit still checkpoints, so the store ends
                        // up byte-identical to a memo-less run.
                        let memo_key = sup
                            .memo
                            .as_deref()
                            .map(|m| (m, CharactMemo::key(spec, config, &copts)));
                        let replayed = memo_key.and_then(|(m, k)| m.get(k));
                        match replayed {
                            Some(t) => {
                                store_mx.lock().expect("store lock").save_tables(&t);
                                CharAttempt::Computed(t)
                            }
                            None => {
                                // Whole-triple miss: compute, consulting the
                                // phase memo so points shared with earlier
                                // (differently keyed) sweeps still replay.
                                let phase_memo = sup.memo.as_deref();
                                match run_isolated(|| {
                                    characterize_system_memo(spec, config, &copts, phase_memo)
                                }) {
                                    Ok(Ok(t)) => {
                                        store_mx.lock().expect("store lock").save_tables(&t);
                                        if let Some((m, k)) = memo_key {
                                            m.put(k, t.clone());
                                        }
                                        CharAttempt::Computed(t)
                                    }
                                    Ok(Err(e)) => CharAttempt::Failed(e.to_string()),
                                    Err(panic) => CharAttempt::Failed(format!("panic: {panic}")),
                                }
                            }
                        }
                    }
                }
            };
            slots.lock().expect("slot lock")[ci] = Some(attempt);
        });
        slots.into_inner().expect("workers joined")
    };

    let mut tables: Vec<PerfTableSet> = Vec::new();
    let mut table_of: Vec<Option<usize>> = Vec::with_capacity(configs.len());
    let mut charact_errors: Vec<(String, String)> = Vec::new();
    let mut quarantined: Vec<Option<String>> = vec![None; configs.len()];
    for (ci, attempt) in char_attempts.into_iter().enumerate() {
        match attempt.expect("every config characterized") {
            CharAttempt::Restored(t) | CharAttempt::Computed(t) => {
                table_of.push(Some(tables.len()));
                tables.push(t);
            }
            CharAttempt::Failed(e) => {
                charact_errors.push((configs[ci].name.clone(), e));
                quarantined[ci] = Some("characterization failed".to_string());
                table_of.push(None);
            }
            CharAttempt::Budget => {
                quarantined[ci] = Some(BUDGET_REASON.to_string());
                table_of.push(None);
            }
        }
    }

    // Phase 3: evaluate every (application × configuration) cell,
    // application-major. Workers pull cells from a shared counter; every
    // store access and all quarantine state sit behind one mutex; the
    // merger replays results in input order (see `CellMerger`), so the
    // parallel output is byte-identical to the sequential one.
    struct Coord<'s> {
        merger: CellMerger,
        store: &'s mut (dyn CellStore + Send),
    }
    let app_names: Vec<&str> = apps.iter().map(|(n, _)| *n).collect();
    let config_names: Vec<&str> = configs.iter().map(|c| c.name.as_str()).collect();
    let merger = CellMerger::new(&app_names, &config_names, quarantined, sup.quarantine_after);
    let total = merger.total();
    let coord = Mutex::new(Coord { merger, store });
    for_each_cell(total, sup.jobs, &|idx| {
        let (ai, ci) = (idx / configs.len(), idx % configs.len());
        let (app, factory) = apps[ai];
        let config = &configs[ci];
        let cfg = config.name.as_str();
        // Dispatch-time checks and the store read share the coordination
        // lock, so replayed outcomes and quarantine observations are
        // consistent with the merge order.
        let early = {
            let mut c = coord.lock().expect("coord lock");
            if let Some(reason) = c.merger.quarantine_reason(ci) {
                Some(CellAttempt::NotRun {
                    reason: reason.to_string(),
                })
            } else if over_budget() {
                Some(CellAttempt::NotRun {
                    reason: BUDGET_REASON.to_string(),
                })
            } else {
                c.store
                    .load_outcome(app, cfg)
                    .map(|stored| CellAttempt::Ran {
                        outcome: stored,
                        from_store: true,
                    })
            }
        };
        let attempt = early.unwrap_or_else(|| {
            let tset = &tables[table_of[ci].expect("non-quarantined configs are characterized")];
            CellAttempt::Ran {
                outcome: evaluate_cell(spec, config, factory, tset, sup, app, cfg),
                from_store: false,
            }
        });
        let mut c = coord.lock().expect("coord lock");
        let Coord { merger, store } = &mut *c;
        merger.offer(idx, attempt);
        merger.merge_ready(*store);
    });
    let Coord { merger, store } = coord.into_inner().expect("workers joined");
    let outcomes = merger.finish();
    let store_health = store.health();

    let cells = outcomes
        .iter()
        .filter_map(|o| match o {
            CellOutcome::Ok(c) => Some((**c).clone()),
            _ => None,
        })
        .collect();
    Campaign {
        cluster: spec.name.clone(),
        tables,
        cells,
        outcomes,
        charact_errors,
        store_health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use mpisim::{MpiOp, OpStream};
    use simcore::KIB;
    use workloads::{BtClass, BtIo, BtSubtype};

    fn quick_configs() -> Vec<IoConfig> {
        vec![
            IoConfigBuilder::new(DeviceLayout::Jbod)
                .write_cache_mib(0)
                .build(),
            IoConfigBuilder::new(DeviceLayout::Raid5 {
                disks: 5,
                stripe: 256 * KIB,
            })
            .build(),
        ]
    }

    fn bt_scenario() -> Scenario {
        BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(3)
            .gflops(20.0)
            .scenario()
    }

    fn quick_campaign() -> Campaign {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick())
    }

    #[test]
    fn campaign_covers_every_cell() {
        let c = quick_campaign();
        assert_eq!(c.tables.len(), 2);
        assert_eq!(c.cells.len(), 2);
        assert!(c.cells.iter().all(|cell| cell.app == "btio-full"));
        assert!(c.best_config("btio-full").is_some());
        assert!(c.best_config("unknown").is_none());
        assert!(!c.is_degraded());
        assert_eq!(c.outcomes.len(), 2);
        assert!(c.outcomes.iter().all(CellOutcome::is_ok));
    }

    #[test]
    fn predictions_are_present_and_bounded() {
        let c = quick_campaign();
        for cell in &c.cells {
            assert!(
                cell.prediction.is_some(),
                "no prediction for {}",
                cell.config
            );
        }
        let err = c.mean_prediction_error().expect("errors computed");
        // The advisor models only the I/O path; an order of magnitude is
        // the sanity bound, typical errors are far smaller.
        assert!(err < 10.0, "mean prediction error {err}");
    }

    #[test]
    fn render_contains_all_sections() {
        let c = quick_campaign();
        let s = c.render();
        assert!(s.contains("Campaign on test"));
        assert!(s.contains("btio-full"));
        assert!(s.contains("fastest configuration"));
        assert!(s.contains("advisor check"));
        assert!(
            !s.contains("degraded campaign"),
            "healthy campaign must not report degradation"
        );
    }

    /// A rank that forever yields zero-cost ops: a livelocked cell.
    struct LivelockStream;

    impl OpStream for LivelockStream {
        fn next_op(&mut self) -> Option<MpiOp> {
            Some(MpiOp::Marker(0))
        }
    }

    fn livelock_scenario() -> Scenario {
        Scenario {
            name: "livelock".into(),
            programs: vec![Box::new(LivelockStream)],
            mounts: vec![],
            prealloc: vec![],
        }
    }

    fn panic_scenario() -> Scenario {
        panic!("injected factory failure")
    }

    #[test]
    fn panicking_and_livelocked_cells_degrade_not_abort() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let healthy = bt_scenario;
        let bad = panic_scenario;
        let locked = livelock_scenario;
        let apps: Vec<AppFactory> = vec![
            ("btio-full", &healthy),
            ("bad-app", &bad),
            ("livelocked-app", &locked),
        ];
        let sup = SuperviseOptions::default()
            .with_watchdog(WatchdogSpec::default().with_stall_limit(100_000));
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert!(c.is_degraded());
        assert_eq!(c.outcomes.len(), 3);
        assert_eq!(c.cells.len(), 1, "only the healthy cell produced a report");
        assert_eq!(c.cells[0].app, "btio-full");
        let by_app = |app: &str| {
            c.outcomes
                .iter()
                .find(|o| o.app() == app)
                .expect("outcome present")
        };
        match by_app("bad-app") {
            CellOutcome::Failed {
                error, attempts, ..
            } => {
                assert!(error.contains("injected factory failure"), "{error}");
                assert_eq!(*attempts, 2, "one retry by default");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        match by_app("livelocked-app") {
            CellOutcome::TimedOut { abort, .. } => {
                assert!(matches!(abort, Abort::Stalled { .. }), "{abort:?}");
            }
            other => panic!("expected TimedOut, got {other:?}"),
        }
        let rendered = c.render();
        assert!(rendered.contains("degraded campaign"));
        assert!(rendered.contains("1 ok, 1 failed, 1 timed out, 0 skipped"));
        assert!(rendered.contains("injected factory failure"));
    }

    /// One rank blocks on a receive that can never match: a structurally
    /// broken program, the kind a buggy scenario grammar could emit.
    fn deadlock_scenario() -> Scenario {
        Scenario {
            name: "deadlock".into(),
            programs: vec![Box::new(mpisim::VecStream::new(vec![MpiOp::Recv {
                src: 0,
                tag: 9,
            }]))],
            mounts: vec![],
            prealloc: vec![],
        }
    }

    #[test]
    fn invalid_program_cell_fails_typed_without_burning_retries() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bad = deadlock_scenario;
        let apps: Vec<AppFactory> = vec![("generated-bad", &bad)];
        let sup = SuperviseOptions::default(); // max_retries = 1
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        match &c.outcomes[0] {
            CellOutcome::Failed {
                error, attempts, ..
            } => {
                assert!(error.contains("deadlock"), "{error}");
                assert!(error.contains("invalid op program"), "{error}");
                assert_eq!(
                    *attempts, 1,
                    "typed program faults are deterministic: no retry"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn failed_characterization_quarantines_the_config() {
        let spec = presets::test_cluster();
        let configs = vec![
            IoConfigBuilder::new(DeviceLayout::Raid5 {
                disks: 1,
                stripe: 1,
            })
            .build(),
            IoConfigBuilder::new(DeviceLayout::Jbod).build(),
        ];
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let c = run_campaign(&spec, &configs, &apps, &CharacterizeOptions::quick());
        assert_eq!(c.tables.len(), 1, "only the valid config characterized");
        assert_eq!(c.charact_errors.len(), 1);
        assert!(c.charact_errors[0]
            .1
            .contains("invalid cluster configuration"));
        assert_eq!(c.cells.len(), 1);
        assert!(matches!(
            c.outcomes[0],
            CellOutcome::Skipped { ref reason, .. } if reason.contains("characterization failed")
        ));
        assert!(c.render().contains("characterization of"));
    }

    #[test]
    fn resumed_campaign_replays_checkpointed_cells_byte_identically() {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let opts = CharacterizeOptions::quick();
        let sup = SuperviseOptions::default();

        let mut store = MemStore::new();
        let first = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut store);
        assert_eq!(store.outcome_count(), 2);
        assert_eq!(store.table_hits, 0);
        assert_eq!(store.outcome_hits, 0);

        let resumed = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut store);
        assert_eq!(store.table_hits, 2, "characterizations restored");
        assert_eq!(store.outcome_hits, 2, "outcomes replayed");
        assert_eq!(
            first.render(),
            resumed.render(),
            "resume must be byte-identical"
        );
    }

    #[test]
    fn quarantine_after_consecutive_failures() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bad = panic_scenario;
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![
            ("bad-1", &bad),
            ("bad-2", &bad),
            ("late-healthy", &bt), // skipped: config quarantined by then
        ];
        let sup = SuperviseOptions {
            max_retries: 0,
            quarantine_after: 2,
            ..SuperviseOptions::default()
        };
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert_eq!(c.outcomes.len(), 3);
        assert!(matches!(
            c.outcomes[0],
            CellOutcome::Failed { attempts: 1, .. }
        ));
        assert!(matches!(c.outcomes[1], CellOutcome::Failed { .. }));
        assert!(matches!(
            c.outcomes[2],
            CellOutcome::Skipped { ref reason, .. } if reason.contains("quarantined")
        ));
        assert!(c.cells.is_empty());
    }

    #[test]
    fn exhausted_wall_budget_skips_remaining_cells() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let sup = SuperviseOptions::default().with_wall_budget(Duration::ZERO);
        let c = run_campaign_supervised(
            &spec,
            &configs,
            &apps,
            &CharacterizeOptions::quick(),
            &sup,
            &mut NoStore,
        );
        assert!(c.cells.is_empty());
        assert!(c.outcomes.iter().all(
            |o| matches!(o, CellOutcome::Skipped { reason, .. } if reason.contains("budget"))
        ));
        // Budget skips are host-dependent: never checkpointed.
        assert!(!c.outcomes[0].is_persistable());
    }

    #[test]
    fn parallel_jobs_render_byte_identical_to_sequential() {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let healthy = bt_scenario;
        let bad = panic_scenario;
        // A failing app in the middle exercises quarantine bookkeeping
        // under concurrency, not just the happy path.
        let apps: Vec<AppFactory> = vec![
            ("btio-full", &healthy),
            ("bad-app", &bad),
            ("btio-late", &healthy),
        ];
        let opts = CharacterizeOptions::quick();
        let run = |jobs: usize| {
            let sup = SuperviseOptions {
                max_retries: 0,
                quarantine_after: 1,
                ..SuperviseOptions::default()
            }
            .with_jobs(jobs);
            let mut store = MemStore::new();
            let c = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut store);
            let persisted: Vec<String> = ["btio-full", "bad-app", "btio-late"]
                .iter()
                .flat_map(|app| store.outcomes_for(app))
                .map(|o| serde_json::to_string(o).expect("outcome serializes"))
                .collect();
            (c.render(), persisted)
        };
        let (seq_render, seq_persisted) = run(1);
        for jobs in [4, 8] {
            let (render, persisted) = run(jobs);
            assert_eq!(seq_render, render, "jobs={jobs} render differs");
            assert_eq!(
                seq_persisted, persisted,
                "jobs={jobs} persisted checkpoints differ"
            );
        }
        // The quarantine actually bit: everything after bad-app's failure
        // on each config is skipped, in both modes.
        assert!(seq_render.contains("quarantined"));
    }

    #[test]
    fn parallel_jobs_aggregate_identical_metrics() {
        let spec = presets::test_cluster();
        let configs = quick_configs();
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-a", &bt), ("btio-b", &bt)];
        let opts = CharacterizeOptions::quick();
        let run = |jobs: usize| {
            let hub = Arc::new(crate::obs::MetricsHub::new());
            let sup = SuperviseOptions {
                metrics: Some(hub.clone()),
                ..SuperviseOptions::default()
            }
            .with_jobs(jobs);
            let c = run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore);
            assert_eq!(c.cells.len(), hub.len(), "one hub entry per cell");
            crate::obs::render_obs_metrics(&hub.aggregate(), simcore::Time::from_secs(1))
        };
        let seq = run(1);
        assert!(seq.contains("I/O Lib"), "{seq}");
        assert_eq!(seq, run(4), "metrics aggregate must not depend on jobs");
    }

    #[test]
    fn cell_fault_policy_is_jobs_invariant() {
        let spec = presets::test_cluster();
        let configs = vec![IoConfigBuilder::new(DeviceLayout::Jbod).build()];
        let bt = bt_scenario;
        let apps: Vec<AppFactory> = vec![("btio-full", &bt)];
        let opts = CharacterizeOptions::quick();
        let policy = CellFaultPolicy {
            seed: 11,
            horizon: simcore::Time::from_secs(20),
            profile: FaultProfile {
                disks: 4,
                slowdowns: 1,
                ..FaultProfile::default()
            },
        };
        let run = |jobs: usize| {
            let sup = SuperviseOptions::default()
                .with_jobs(jobs)
                .with_cell_faults(policy.clone());
            run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore).render()
        };
        assert_eq!(
            run(1),
            run(4),
            "per-cell fault injection must not depend on jobs"
        );
    }

    #[test]
    fn outcomes_roundtrip_through_serde() {
        let o = CellOutcome::TimedOut {
            app: "a".into(),
            config: "c".into(),
            abort: Abort::Stalled {
                events: 9,
                at: simcore::Time(5),
            },
            attempts: 1,
        };
        let json = serde_json::to_string(&o).unwrap();
        let back: CellOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back.app(), "a");
        assert_eq!(back.label(), "timed out");
        assert!(back.is_persistable());
    }
}
