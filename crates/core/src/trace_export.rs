//! Trace export in the Chrome tracing format.
//!
//! The paper inspects application behaviour with Jumpshot over MPE logs
//! (Figs. 8 and 16). The modern equivalent is the Chrome trace-event JSON
//! consumed by `chrome://tracing` / [Perfetto](https://ui.perfetto.dev):
//! one lane per rank, one slice per MPI/MPI-IO primitive, zoomable.
//!
//! [`ChromeTraceSink`] implements [`TraceSink`], so it can be attached to
//! any run (alone or via `TeeSink` next to a profiling sink).

use mpisim::{TraceEvent, TraceKind, TraceSink};

/// Collects trace events and serializes them as a Chrome trace JSON array.
///
/// Events beyond `max_events` are dropped (and counted) so that pathological
/// multi-million-op applications cannot exhaust memory; the truncation is
/// reported in the trace metadata.
pub struct ChromeTraceSink {
    events: Vec<TraceEvent>,
    max_events: usize,
    dropped: u64,
}

impl ChromeTraceSink {
    /// A sink holding at most `max_events` events.
    pub fn new(max_events: usize) -> ChromeTraceSink {
        ChromeTraceSink {
            events: Vec::new(),
            max_events,
            dropped: 0,
        }
    }

    /// Number of events dropped after the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of events retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn slice_name(kind: &TraceKind) -> String {
        match kind {
            TraceKind::Compute => "compute".into(),
            TraceKind::Send { dst, bytes } => format!("send→{dst} ({bytes}B)"),
            TraceKind::Recv { src } => format!("recv←{src}"),
            TraceKind::Barrier => "barrier".into(),
            TraceKind::Bcast { root, .. } => format!("bcast(root {root})"),
            TraceKind::Allreduce { .. } => "allreduce".into(),
            TraceKind::Wait => "waitall".into(),
            TraceKind::Open { file, create } => {
                format!("open {file}{}", if *create { " (create)" } else { "" })
            }
            TraceKind::Close { file } => format!("close {file}"),
            TraceKind::Write {
                file,
                len,
                collective,
                ..
            } => format!(
                "write{} {file} {}",
                if *collective { "_all" } else { "" },
                simcore::fmt_bytes(*len)
            ),
            TraceKind::Read {
                file,
                len,
                collective,
                ..
            } => format!(
                "read{} {file} {}",
                if *collective { "_all" } else { "" },
                simcore::fmt_bytes(*len)
            ),
            TraceKind::Sync { file } => format!("sync {file}"),
            TraceKind::Marker(id) => format!("marker {id}"),
            TraceKind::Meta { verb, file, .. } => format!("{} {file}", verb.label()),
        }
    }

    fn category(kind: &TraceKind) -> &'static str {
        if kind.is_io_data() {
            "io"
        } else if kind.is_comm() {
            "comm"
        } else if matches!(kind, TraceKind::Compute) {
            "compute"
        } else {
            "meta"
        }
    }

    /// Serializes the collected events as Chrome trace-event JSON.
    pub fn to_json(&self) -> String {
        let mut entries: Vec<serde_json::Value> = self
            .events
            .iter()
            .filter(|ev| ev.end > ev.start || matches!(ev.kind, TraceKind::Marker(_)))
            .map(|ev| {
                serde_json::json!({
                    "name": Self::slice_name(&ev.kind),
                    "cat": Self::category(&ev.kind),
                    "ph": "X",
                    "ts": ev.start.as_micros_f64(),
                    "dur": ev.duration().as_micros_f64(),
                    "pid": 0,
                    "tid": ev.rank,
                })
            })
            .collect();
        if self.dropped > 0 {
            entries.push(serde_json::json!({
                "name": format!("[{} events dropped past the cap]", self.dropped),
                "cat": "meta",
                "ph": "i",
                "ts": 0.0,
                "pid": 0,
                "tid": 0,
            }));
        }
        serde_json::to_string(&entries).expect("trace serializes")
    }
}

impl TraceSink for ChromeTraceSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fs::FileId;
    use simcore::Time;

    fn ev(rank: usize, t0: u64, t1: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            rank,
            start: Time::from_micros(t0),
            end: Time::from_micros(t1),
            kind,
        }
    }

    #[test]
    fn exports_valid_json_with_one_slice_per_event() {
        let mut sink = ChromeTraceSink::new(100);
        sink.record(ev(0, 0, 10, TraceKind::Compute));
        sink.record(ev(
            1,
            5,
            9,
            TraceKind::Write {
                file: FileId(3),
                offset: 0,
                len: 4096,
                collective: true,
            },
        ));
        let json = sink.to_json();
        let parsed: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["cat"], "compute");
        assert_eq!(arr[1]["cat"], "io");
        assert_eq!(arr[1]["tid"], 1);
        assert_eq!(arr[1]["dur"], 4.0);
        assert!(arr[1]["name"].as_str().unwrap().contains("write_all"));
    }

    #[test]
    fn cap_drops_and_reports() {
        let mut sink = ChromeTraceSink::new(2);
        for i in 0..5u64 {
            sink.record(ev(0, i, i + 1, TraceKind::Compute));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let json = sink.to_json();
        assert!(json.contains("3 events dropped"));
    }

    #[test]
    fn zero_duration_non_marker_events_are_skipped() {
        let mut sink = ChromeTraceSink::new(10);
        sink.record(ev(0, 5, 5, TraceKind::Barrier)); // zero duration
        sink.record(ev(0, 5, 5, TraceKind::Marker(1))); // markers kept
        let parsed: serde_json::Value = serde_json::from_str(&sink.to_json()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 1);
    }

    #[test]
    fn end_to_end_trace_of_a_small_run() {
        use cluster::{presets, ClusterMachine, DeviceLayout, IoConfigBuilder};
        use mpisim::Runtime;
        use workloads::{BtClass, BtIo, BtSubtype};

        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut machine =
            ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let sc = BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(2)
            .gflops(50.0)
            .scenario();
        let programs = sc.install(&mut machine);
        let mut sink = ChromeTraceSink::new(100_000);
        Runtime::default().run(&mut machine, &spec.placement(4), programs, &mut sink);
        assert!(sink.len() > 100, "trace captured {} events", sink.len());
        let parsed: serde_json::Value = serde_json::from_str(&sink.to_json()).unwrap();
        let arr = parsed.as_array().unwrap();
        // Four rank lanes present.
        let lanes: std::collections::BTreeSet<u64> =
            arr.iter().filter_map(|e| e["tid"].as_u64()).collect();
        assert_eq!(lanes.len(), 4);
    }
}
