//! A characterization memo cache.
//!
//! Characterization is deterministic: the same `(spec, config, options)`
//! triple always produces the same [`PerfTableSet`]. Campaigns frequently
//! revisit the same point — resumed runs, repeated-point sweeps, studies
//! sharing a configuration grid — and each revisit costs a full simulated
//! IOzone/IOR sweep. [`CharactMemo`] keys completed characterizations by a
//! digest of the triple and replays them in O(1).
//!
//! The memo is shared across worker threads via [`std::sync::Arc`] (the
//! table sits behind a mutex, the hit/miss counters are atomic) and is a
//! pure cache: campaigns that use it render byte-identically to campaigns
//! that do not, because a hit replays the exact value a recomputation
//! would produce. Hit/miss counters are surfaced out of band (reported to
//! stderr by the reproduction driver), never in rendered campaign tables.

use crate::charact::CharacterizeOptions;
use crate::perf_table::{PerfRow, PerfTableSet};
use cluster::{ClusterSpec, IoConfig};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a over a byte string; collisions across the handful of distinct
/// characterization points a campaign visits are not a practical concern,
/// and the digest stays stable within a process run (which is the memo's
/// lifetime — it is never persisted).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One memoized result plus the integrity digest captured when it was
/// stored. The digest covers the canonical JSON rendering, so any
/// corruption of the cached value between `put` and `get` (or an injected
/// [`simcore::chaos::ChaosSite::MemoLoad`] fault) is detected on load and
/// treated as a miss — the point is recomputed, never trusted.
struct MemoEntry {
    digest: u64,
    tables: PerfTableSet,
}

/// One memoized measurement *phase* — a single `(workload, point)` run
/// inside a characterization sweep — with the same digest-on-store,
/// verify-on-load discipline as [`MemoEntry`]. Phase entries let partially
/// overlapping sweeps (a different block list sharing some points, a
/// resumed run with a changed level set) replay the points they share even
/// when the whole-triple key misses.
struct PhaseEntry {
    digest: u64,
    row: PerfRow,
}

/// Memoized characterization results, keyed by `(spec, config, options)`.
#[derive(Default)]
pub struct CharactMemo {
    tables: Mutex<HashMap<u64, MemoEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    phases: Mutex<HashMap<u64, PhaseEntry>>,
    phase_hits: AtomicU64,
    phase_misses: AtomicU64,
    quarantined: AtomicU64,
}

impl CharactMemo {
    /// An empty memo.
    pub fn new() -> CharactMemo {
        CharactMemo::default()
    }

    /// Digest of one characterization point. Every field that influences
    /// the result participates via the `Debug` rendering of the three
    /// inputs (all three types derive exhaustive `Debug`).
    pub fn key(spec: &ClusterSpec, config: &IoConfig, opts: &CharacterizeOptions) -> u64 {
        fnv1a(format!("{spec:?}|{config:?}|{opts:?}").as_bytes())
    }

    /// The memoized result for `key`, counting a hit or a miss. An entry
    /// whose integrity digest no longer matches its value is quarantined
    /// (evicted and counted) and reported as a miss, so the caller
    /// recomputes it — a corrupt cache can cost time, never correctness.
    pub fn get(&self, key: u64) -> Option<PerfTableSet> {
        let mut map = self.tables.lock().expect("memo lock");
        let verified = match map.get(&key) {
            None => None,
            Some(entry) => {
                let mut digest = fnv1a(entry.tables.to_json().as_bytes());
                if simcore::chaos::decide(simcore::chaos::ChaosSite::MemoLoad).is_some() {
                    // Injected corruption: flip the digest so the entry
                    // fails verification exactly as a real bit-flip would.
                    digest ^= 1;
                }
                if digest == entry.digest {
                    Some(entry.tables.clone())
                } else {
                    map.remove(&key);
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[memo] quarantined corrupt entry {key:016x} (digest mismatch); recomputing"
                    );
                    None
                }
            }
        };
        drop(map);
        match verified {
            Some(t) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(t)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a freshly computed result with its integrity digest.
    pub fn put(&self, key: u64, tables: PerfTableSet) {
        let digest = fnv1a(tables.to_json().as_bytes());
        self.tables
            .lock()
            .expect("memo lock")
            .insert(key, MemoEntry { digest, tables });
    }

    /// Digest of one measurement phase. `descriptor` must spell out every
    /// input that shapes the row — the cluster spec, the I/O
    /// configuration, the workload point (record/block, mode, op) and the
    /// watchdog budget — exactly as the whole-triple [`Self::key`] does,
    /// only at phase granularity.
    pub fn phase_key(descriptor: &str) -> u64 {
        fnv1a(descriptor.as_bytes())
    }

    /// The memoized row for a phase, counting a phase hit or miss. The
    /// same quarantine rule as [`Self::get`] applies: a digest mismatch
    /// (real corruption or an injected
    /// [`simcore::chaos::ChaosSite::MemoLoad`] fault) evicts the entry and
    /// reports a miss.
    pub fn phase_get(&self, key: u64) -> Option<PerfRow> {
        let mut map = self.phases.lock().expect("memo lock");
        let verified = match map.get(&key) {
            None => None,
            Some(entry) => {
                let mut digest = fnv1a(format!("{:?}", entry.row).as_bytes());
                if simcore::chaos::decide(simcore::chaos::ChaosSite::MemoLoad).is_some() {
                    digest ^= 1;
                }
                if digest == entry.digest {
                    Some(entry.row)
                } else {
                    map.remove(&key);
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "[memo] quarantined corrupt phase {key:016x} (digest mismatch); recomputing"
                    );
                    None
                }
            }
        };
        drop(map);
        match verified {
            Some(row) => {
                self.phase_hits.fetch_add(1, Ordering::Relaxed);
                Some(row)
            }
            None => {
                self.phase_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores one freshly measured phase row with its integrity digest.
    pub fn phase_put(&self, key: u64, row: PerfRow) {
        let digest = fnv1a(format!("{row:?}").as_bytes());
        self.phases
            .lock()
            .expect("memo lock")
            .insert(key, PhaseEntry { digest, row });
    }

    /// `(phase hits, phase misses)` so far.
    pub fn phase_stats(&self) -> (u64, u64) {
        (
            self.phase_hits.load(Ordering::Relaxed),
            self.phase_misses.load(Ordering::Relaxed),
        )
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries evicted because their digest no longer matched (real
    /// corruption or injected [`simcore::chaos::ChaosSite::MemoLoad`]
    /// faults).
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Flips the stored digest of `key`, simulating in-memory corruption
    /// of the cached value (tests only).
    #[cfg(test)]
    fn corrupt(&self, key: u64) {
        if let Some(entry) = self.tables.lock().expect("memo lock").get_mut(&key) {
            entry.digest ^= 1;
        }
    }

    /// [`Self::corrupt`] for a phase entry (tests only).
    #[cfg(test)]
    fn corrupt_phase(&self, key: u64) {
        if let Some(entry) = self.phases.lock().expect("memo lock").get_mut(&key) {
            entry.digest ^= 1;
        }
    }
}

impl fmt::Debug for CharactMemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (hits, misses) = self.stats();
        let (phase_hits, phase_misses) = self.phase_stats();
        let entries = self.tables.lock().map(|t| t.len()).unwrap_or(0);
        let phases = self.phases.lock().map(|t| t.len()).unwrap_or(0);
        f.debug_struct("CharactMemo")
            .field("entries", &entries)
            .field("hits", &hits)
            .field("misses", &misses)
            .field("phases", &phases)
            .field("phase_hits", &phase_hits)
            .field("phase_misses", &phase_misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_distinguishes_every_input() {
        let spec = cluster::presets::test_cluster();
        let mut spec2 = spec.clone();
        spec2.seed ^= 1;
        let config = cluster::IoConfigBuilder::new(cluster::DeviceLayout::Jbod).build();
        let config2 = cluster::IoConfigBuilder::new(cluster::DeviceLayout::Raid1).build();
        let opts = CharacterizeOptions::quick();
        let mut opts2 = opts.clone();
        opts2.ior_ranks += 1;

        let base = CharactMemo::key(&spec, &config, &opts);
        assert_eq!(base, CharactMemo::key(&spec, &config, &opts));
        assert_ne!(base, CharactMemo::key(&spec2, &config, &opts));
        assert_ne!(base, CharactMemo::key(&spec, &config2, &opts));
        assert_ne!(base, CharactMemo::key(&spec, &config, &opts2));
    }

    #[test]
    fn get_and_put_count_hits_and_misses() {
        let memo = CharactMemo::new();
        let key = 42;
        assert!(memo.get(key).is_none());
        memo.put(key, PerfTableSet::new("s", "c"));
        let replay = memo.get(key).expect("memoized");
        assert_eq!(replay.cluster, "s");
        assert_eq!(memo.stats(), (1, 1));
    }

    fn sample_row() -> PerfRow {
        use crate::perf_table::{AccessMode, AccessType, OpType};
        PerfRow {
            op: OpType::Write,
            block: 1024,
            access: AccessType::Local,
            mode: AccessMode::Sequential,
            rate: simcore::Bandwidth::from_mib_per_sec(42),
            iops: 17.5,
            latency: simcore::Time::from_micros(90),
        }
    }

    #[test]
    fn phase_get_and_put_count_phase_hits_and_misses() {
        let memo = CharactMemo::new();
        let key = CharactMemo::phase_key("spec|config|fs|LocalFs|1024|Sequential|Write");
        assert!(memo.phase_get(key).is_none());
        memo.phase_put(key, sample_row());
        let replay = memo.phase_get(key).expect("memoized phase");
        assert_eq!(format!("{replay:?}"), format!("{:?}", sample_row()));
        assert_eq!(memo.phase_stats(), (1, 1));
        // Whole-triple counters are untouched by phase traffic.
        assert_eq!(memo.stats(), (0, 0));
    }

    #[test]
    fn corrupt_phase_entries_are_quarantined_not_served() {
        let memo = CharactMemo::new();
        let key = 11;
        memo.phase_put(key, sample_row());
        memo.corrupt_phase(key);
        assert!(
            memo.phase_get(key).is_none(),
            "corrupt phase must not be served"
        );
        assert_eq!(memo.quarantined(), 1);
        memo.phase_put(key, sample_row());
        assert!(memo.phase_get(key).is_some());
        assert_eq!(memo.quarantined(), 1);
    }

    #[test]
    fn corrupt_entries_are_quarantined_not_served() {
        let memo = CharactMemo::new();
        let key = 7;
        memo.put(key, PerfTableSet::new("s", "c"));
        memo.corrupt(key);
        assert!(memo.get(key).is_none(), "corrupt entry must not be served");
        assert_eq!(memo.quarantined(), 1);
        // The entry was evicted: a recomputed value replays cleanly.
        memo.put(key, PerfTableSet::new("s", "c"));
        assert!(memo.get(key).is_some());
        assert_eq!(memo.quarantined(), 1);
    }
}
