//! Phase 1 — characterization (paper §III-A).
//!
//! *System side*: run IOzone-like sweeps against the local-filesystem level
//! (the I/O node's devices, accessed locally) and the network-filesystem
//! level (through an NFS mount), and IOR-like sweeps against the I/O
//! library level, recording transfer rate / IOPs / latency per
//! (operation, block size, access mode) into [`PerfTable`]s. Every
//! measurement point runs on a *fresh* machine ("the characterized values
//! were measured under stressed I/O system" — and with cold caches, the
//! 2×RAM file-size rule doing the stressing).
//!
//! *Application side*: run the application once with a [`ProfileSink`]
//! attached and collect its [`AppProfile`].

use crate::memo::CharactMemo;
use crate::perf_table::{AccessMode, IoLevel, OpType, PerfRow, PerfTable, PerfTableSet};
use crate::trace::{AppProfile, ProfileSink};
use cluster::{ClusterMachine, ClusterSpec, ConfigError, IoConfig, Mount};
use fs::FileId;
use mpisim::{NullSink, RunStats, Runtime};
use simcore::{Abort, Bandwidth, Time, WatchdogSpec, KIB, MIB};
use workloads::ior::{paper_block_sweep, Ior, IorOp};
use workloads::iozone::{paper_record_sweep, IozonePattern, IozoneRun};
use workloads::Scenario;

/// Why a characterization could not produce a table set.
#[derive(Clone, Debug, PartialEq)]
pub enum CharactError {
    /// The cluster configuration failed validation.
    Config(ConfigError),
    /// A measurement run was aborted by the watchdog.
    Aborted {
        /// The workload that was running.
        workload: String,
        /// Why the watchdog stopped it.
        abort: Abort,
    },
    /// A required level is absent from a table set (e.g. a checkpoint
    /// written by an older sweep that skipped it).
    MissingLevel {
        /// The absent level.
        level: IoLevel,
    },
}

impl From<ConfigError> for CharactError {
    fn from(e: ConfigError) -> Self {
        CharactError::Config(e)
    }
}

impl std::fmt::Display for CharactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CharactError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            CharactError::Aborted { workload, abort } => {
                write!(f, "characterization run '{workload}' aborted: {abort}")
            }
            CharactError::MissingLevel { level } => {
                write!(f, "characterization is missing the {level:?} level")
            }
        }
    }
}

impl std::error::Error for CharactError {}

/// The `level` table of `set`, or a typed [`CharactError::MissingLevel`] —
/// so an incomplete characterization fails its cell instead of the process.
pub fn require_level(set: &PerfTableSet, level: IoLevel) -> Result<&PerfTable, CharactError> {
    set.get(level).ok_or(CharactError::MissingLevel { level })
}

/// What to sweep during system characterization.
#[derive(Clone, Debug)]
pub struct CharacterizeOptions {
    /// IOzone record sizes.
    pub records: Vec<u64>,
    /// IOzone file size; `None` applies the paper's 2×RAM rule.
    pub iozone_file_size: Option<u64>,
    /// Access modes to sweep at the filesystem levels.
    pub modes: Vec<AccessMode>,
    /// IOR per-rank block sizes.
    pub ior_blocks: Vec<u64>,
    /// IOR process count (the paper uses 8).
    pub ior_ranks: usize,
    /// IOR transfer size (the paper uses 256 KiB).
    pub ior_transfer: u64,
    /// Levels to characterize.
    pub levels: Vec<IoLevel>,
    /// Watchdog budgets applied to every measurement run (`None`: none).
    pub watchdog: Option<WatchdogSpec>,
}

impl CharacterizeOptions {
    /// The paper's published sweep: records 32 KiB–16 MiB, file 2×RAM,
    /// sequential access (the mode the paper's Figs. 5/6/13/14 report),
    /// IOR blocks 1 MiB–1 GiB at 256 KiB transfers with 8 processes, all
    /// three levels. Use [`Self::all_modes`] to add the strided/random
    /// sweeps Table I's `AccessesMode` attribute supports.
    pub fn paper() -> CharacterizeOptions {
        CharacterizeOptions {
            records: paper_record_sweep(),
            iozone_file_size: None,
            modes: vec![AccessMode::Sequential],
            ior_blocks: paper_block_sweep(),
            ior_ranks: 8,
            ior_transfer: 256 * KIB,
            levels: IoLevel::ALL.to_vec(),
            watchdog: None,
        }
    }

    /// Extends the sweep to every access mode of Table I.
    pub fn all_modes(mut self) -> CharacterizeOptions {
        self.modes = vec![
            AccessMode::Sequential,
            AccessMode::Strided,
            AccessMode::Random,
        ];
        self
    }

    /// A reduced sweep for tests and doctests.
    pub fn quick() -> CharacterizeOptions {
        CharacterizeOptions {
            records: vec![64 * KIB, MIB],
            iozone_file_size: Some(64 * MIB),
            modes: vec![AccessMode::Sequential],
            ior_blocks: vec![4 * MIB],
            ior_ranks: 2,
            ior_transfer: 256 * KIB,
            levels: IoLevel::ALL.to_vec(),
            watchdog: None,
        }
    }

    /// Sets the per-run watchdog budgets.
    pub fn with_watchdog(mut self, watchdog: WatchdogSpec) -> CharacterizeOptions {
        self.watchdog = Some(watchdog);
        self
    }
}

/// File ids reserved for characterization workloads.
const CHARACT_FILE: FileId = FileId(0xC4A2);

/// Runs one scenario on a fresh machine; returns the run stats.
fn run_fresh(
    spec: &ClusterSpec,
    config: &IoConfig,
    scenario: Scenario,
    watchdog: Option<&WatchdogSpec>,
) -> Result<RunStats, CharactError> {
    let ranks = scenario.ranks();
    let workload = scenario.name.clone();
    let mut machine = ClusterMachine::try_new(spec, config)?;
    let programs = scenario.install(&mut machine);
    let placement = spec.placement(ranks);
    let mut sink = NullSink;
    Runtime::default()
        .run_supervised(
            &mut machine,
            &placement,
            programs,
            &mut sink,
            watchdog.map(WatchdogSpec::arm),
        )
        .map_err(|e| match e {
            mpisim::RunError::Aborted(abort) => CharactError::Aborted { workload, abort },
            // Characterization scenarios are built internally from already
            // validated configurations; an invalid program here is a bug in
            // this crate, not an input error.
            mpisim::RunError::Invalid(fault) => {
                unreachable!(
                    "characterization workload '{workload}' built an invalid program: {fault}"
                )
            }
        })
}

/// Extracts (rate, iops, latency) from a measurement run.
fn point_metrics(stats: &RunStats) -> (Bandwidth, f64, Time) {
    let bytes: u64 = stats.total_bytes();
    let rate = Bandwidth::measured(bytes, stats.wall_time);
    let ops: u64 = stats.per_rank.iter().map(|r| r.io_ops).sum();
    let io_time: Time = stats.per_rank.iter().map(|r| r.io_time).sum();
    let iops = if stats.max_io_time() == Time::ZERO {
        0.0
    } else {
        ops as f64 / stats.max_io_time().as_secs_f64()
    };
    let latency = if ops == 0 { Time::ZERO } else { io_time / ops };
    (rate, iops, latency)
}

fn iozone_pattern(op: OpType, mode: AccessMode) -> IozonePattern {
    match (op, mode) {
        (OpType::Write, AccessMode::Sequential) => IozonePattern::SeqWrite,
        (OpType::Read, AccessMode::Sequential) => IozonePattern::SeqRead,
        (OpType::Write, AccessMode::Strided) => IozonePattern::StridedWrite,
        (OpType::Read, AccessMode::Strided) => IozonePattern::StridedRead,
        (OpType::Write, AccessMode::Random) => IozonePattern::RandWrite,
        (OpType::Read, AccessMode::Random) => IozonePattern::RandRead,
    }
}

/// Characterizes one filesystem level with the IOzone sweep.
fn characterize_fs_level(
    spec: &ClusterSpec,
    config: &IoConfig,
    opts: &CharacterizeOptions,
    level: IoLevel,
    memo: Option<&CharactMemo>,
) -> Result<PerfTable, CharactError> {
    let mount = match level {
        IoLevel::LocalFs => Mount::ServerLocal,
        // The global-filesystem level is whatever shared filesystem the
        // configuration deploys: the NFS export, or the parallel FS when
        // one is configured.
        IoLevel::GlobalFs if config.pfs_servers > 0 => Mount::Pfs,
        IoLevel::GlobalFs => Mount::Nfs,
        IoLevel::Library => unreachable!("library level uses IOR"),
        IoLevel::Metadata => unreachable!("metadata level has no bandwidth sweep"),
    };
    // The paper's rule: a file twice the main memory of the machine under
    // test, so the page cache cannot hide the device.
    let ram = match level {
        IoLevel::LocalFs => spec.io_node_ram,
        _ => spec.node_ram.max(spec.io_node_ram),
    };
    let file_size = opts.iozone_file_size.unwrap_or(2 * ram);

    let mut table = PerfTable::new();
    for &record in &opts.records {
        if record > file_size {
            continue;
        }
        for &mode in &opts.modes {
            for op in [OpType::Write, OpType::Read] {
                // The phase key names everything that shapes this one
                // measurement: the machine, the point, and the watchdog
                // budget (an aborted sweep must not alias a finished one).
                let key = CharactMemo::phase_key(&format!(
                    "fs|{spec:?}|{config:?}|{level:?}|{mode:?}|{op:?}|record={record}|file={file_size}|wd={:?}",
                    opts.watchdog
                ));
                if let Some(row) = memo.and_then(|m| m.phase_get(key)) {
                    table.insert(row);
                    continue;
                }
                let run = IozoneRun::new(CHARACT_FILE, file_size, record, iozone_pattern(op, mode))
                    .on(mount);
                let stats = run_fresh(spec, config, run.scenario(), opts.watchdog.as_ref())?;
                let (rate, iops, latency) = point_metrics(&stats);
                let row = PerfRow {
                    op,
                    block: record,
                    access: level.access_type(),
                    mode,
                    rate,
                    iops,
                    latency,
                };
                if let Some(m) = memo {
                    m.phase_put(key, row);
                }
                table.insert(row);
            }
        }
    }
    Ok(table)
}

/// Characterizes the I/O library level with the IOR sweep.
fn characterize_library_level(
    spec: &ClusterSpec,
    config: &IoConfig,
    opts: &CharacterizeOptions,
    memo: Option<&CharactMemo>,
) -> Result<PerfTable, CharactError> {
    let mut table = PerfTable::new();
    for &block in &opts.ior_blocks {
        for op in [OpType::Write, OpType::Read] {
            let key = CharactMemo::phase_key(&format!(
                "lib|{spec:?}|{config:?}|{op:?}|block={block}|ranks={}|transfer={}|wd={:?}",
                opts.ior_ranks, opts.ior_transfer, opts.watchdog
            ));
            if let Some(row) = memo.and_then(|m| m.phase_get(key)) {
                table.insert(row);
                continue;
            }
            let ior = Ior {
                ranks: opts.ior_ranks,
                file: CHARACT_FILE,
                block,
                transfer: opts.ior_transfer,
                collective: false,
                op: if op == OpType::Write {
                    IorOp::Write
                } else {
                    IorOp::Read
                },
                // The library level is MPI-IO: on NFS it pays the ROMIO
                // discipline (locking, synchronous transfers); on a
                // parallel FS it runs natively.
                mount: if config.pfs_servers > 0 {
                    Mount::Pfs
                } else {
                    Mount::NfsDirect
                },
            };
            let stats = run_fresh(spec, config, ior.scenario(), opts.watchdog.as_ref())?;
            let (rate, iops, latency) = point_metrics(&stats);
            let row = PerfRow {
                op,
                block,
                access: IoLevel::Library.access_type(),
                mode: AccessMode::Sequential,
                rate,
                iops,
                latency,
            };
            if let Some(m) = memo {
                m.phase_put(key, row);
            }
            table.insert(row);
        }
    }
    Ok(table)
}

/// Phase 1a: characterizes the I/O system of `spec` under `config` at every
/// requested level (paper Figs. 3, 5, 6, 13, 14).
pub fn characterize_system(
    spec: &ClusterSpec,
    config: &IoConfig,
    opts: &CharacterizeOptions,
) -> Result<PerfTableSet, CharactError> {
    characterize_system_memo(spec, config, opts, None)
}

/// [`characterize_system`] with phase-granular memoization: each
/// `(workload, point)` measurement consults `memo` before simulating and
/// stores its row after. A memo hit replays the exact row a recomputation
/// would produce (digest-verified on load), so memoized and fresh
/// characterizations render byte-identically — including across sweeps
/// that only partially overlap, where the whole-triple cache misses.
pub fn characterize_system_memo(
    spec: &ClusterSpec,
    config: &IoConfig,
    opts: &CharacterizeOptions,
    memo: Option<&CharactMemo>,
) -> Result<PerfTableSet, CharactError> {
    let mut set = PerfTableSet::new(spec.name.clone(), config.name.clone());
    for &level in &opts.levels {
        let table = match level {
            IoLevel::Library => characterize_library_level(spec, config, opts, memo)?,
            IoLevel::GlobalFs | IoLevel::LocalFs => {
                characterize_fs_level(spec, config, opts, level, memo)?
            }
            // The metadata path is rate-characterized by the mdtest
            // workloads, not the IOzone/IOR bandwidth sweep.
            IoLevel::Metadata => continue,
        };
        set.set(level, table);
    }
    Ok(set)
}

/// Phase 1b: characterizes an application by running its scenario under
/// `config` with the tracing sink attached (paper Fig. 7; Tables II/V/VIII).
pub fn characterize_app(
    spec: &ClusterSpec,
    config: &IoConfig,
    scenario: Scenario,
    placement: Option<Vec<usize>>,
) -> Result<AppProfile, CharactError> {
    let ranks = scenario.ranks();
    let mut machine = ClusterMachine::try_new(spec, config)?;
    let programs = scenario.install(&mut machine);
    let placement = placement.unwrap_or_else(|| spec.placement(ranks));
    let mut sink = ProfileSink::new(ranks);
    Runtime::default().run(&mut machine, &placement, programs, &mut sink);
    Ok(sink.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use workloads::{BtClass, BtIo, BtSubtype};

    fn quick_setup() -> (ClusterSpec, IoConfig) {
        (
            presets::test_cluster(),
            IoConfigBuilder::new(DeviceLayout::Jbod).build(),
        )
    }

    #[test]
    fn quick_characterization_produces_all_levels() {
        let (spec, config) = quick_setup();
        let set = characterize_system(&spec, &config, &CharacterizeOptions::quick())
            .expect("characterization succeeds");
        for level in IoLevel::ALL {
            let t = require_level(&set, level).expect("level characterized");
            assert!(!t.is_empty(), "{level:?} table is empty");
            for row in t.rows() {
                assert!(
                    row.rate.bytes_per_sec() > 0,
                    "{level:?} {:?} {} has zero rate",
                    row.op,
                    row.block
                );
            }
        }
        assert_eq!(set.cluster, "test");
        assert_eq!(set.config, "JBOD");
    }

    #[test]
    fn local_fs_is_at_least_as_fast_as_nfs_for_streaming() {
        let (spec, config) = quick_setup();
        let set = characterize_system(&spec, &config, &CharacterizeOptions::quick())
            .expect("characterization succeeds");
        let local = set
            .get(IoLevel::LocalFs)
            .unwrap()
            .search(
                OpType::Read,
                MIB,
                crate::perf_table::AccessType::Local,
                AccessMode::Sequential,
            )
            .unwrap()
            .rate;
        let nfs = set
            .get(IoLevel::GlobalFs)
            .unwrap()
            .search(
                OpType::Read,
                MIB,
                crate::perf_table::AccessType::Global,
                AccessMode::Sequential,
            )
            .unwrap()
            .rate;
        assert!(
            local.bytes_per_sec() >= nfs.bytes_per_sec(),
            "local {local} vs nfs {nfs}: NFS cannot beat its own backend"
        );
    }

    #[test]
    fn app_characterization_matches_generator_counts() {
        let (spec, config) = quick_setup();
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple)
            .with_dumps(2)
            .gflops(50.0);
        let expected_writes: u64 = (0..4).map(|r| bt.simple_ops_per_rank_per_dump(r) * 2).sum();
        let profile =
            characterize_app(&spec, &config, bt.scenario(), None).expect("profiling succeeds");
        assert_eq!(profile.numio_write, expected_writes);
        assert_eq!(profile.numio_read, expected_writes);
        assert_eq!(profile.procs, 4);
        assert_eq!(profile.num_files, 1);
        assert!(profile.exec_time > Time::ZERO);
        assert!(profile.io_time > Time::ZERO);
        // Class S / 4 procs: line sizes 5×8×12 = 480 bytes only.
        assert_eq!(profile.write_sizes.len(), 1);
        assert_eq!(profile.write_sizes[0].0, 480);
    }

    #[test]
    fn deterministic_characterization() {
        let (spec, config) = quick_setup();
        let a = characterize_system(&spec, &config, &CharacterizeOptions::quick()).unwrap();
        let b = characterize_system(&spec, &config, &CharacterizeOptions::quick()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn memoized_characterization_renders_byte_identical_and_hits_phases() {
        let (spec, config) = quick_setup();
        let opts = CharacterizeOptions::quick();
        let fresh = characterize_system(&spec, &config, &opts).unwrap();

        let memo = crate::memo::CharactMemo::new();
        let first = characterize_system_memo(&spec, &config, &opts, Some(&memo)).unwrap();
        let (h0, m0) = memo.phase_stats();
        assert_eq!(h0, 0, "cold memo cannot hit");
        assert!(m0 > 0, "every point is a phase miss on a cold memo");
        let warm = characterize_system_memo(&spec, &config, &opts, Some(&memo)).unwrap();
        let (h1, m1) = memo.phase_stats();
        assert_eq!(h1, m0, "warm rerun must replay every point");
        assert_eq!(m1, m0);

        assert_eq!(fresh.to_json(), first.to_json());
        assert_eq!(fresh.to_json(), warm.to_json());
    }

    #[test]
    fn partially_overlapping_sweeps_share_phases() {
        let (spec, config) = quick_setup();
        let memo = crate::memo::CharactMemo::new();
        let narrow = CharacterizeOptions::quick();
        characterize_system_memo(&spec, &config, &narrow, Some(&memo)).unwrap();
        let (_, misses) = memo.phase_stats();

        // A wider sweep sharing the narrow one's points: the shared points
        // replay (whole-triple keys would differ, phase keys match), only
        // the new block pays a simulation.
        let mut wide = CharacterizeOptions::quick();
        wide.ior_blocks = vec![2 * MIB, 4 * MIB];
        let set = characterize_system_memo(&spec, &config, &wide, Some(&memo)).unwrap();
        let (hits2, misses2) = memo.phase_stats();
        assert_eq!(hits2, misses, "every shared point must be a phase hit");
        assert_eq!(misses2 - misses, 2, "only the new block's two ops run");

        // And the memo-assisted wide sweep matches a fresh wide sweep.
        let fresh = characterize_system(&spec, &config, &wide).unwrap();
        assert_eq!(fresh.to_json(), set.to_json());
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let spec = presets::test_cluster();
        let bad = IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 1,
            stripe: 1,
        })
        .build();
        let err = characterize_system(&spec, &bad, &CharacterizeOptions::quick())
            .expect_err("invalid config must fail");
        assert!(matches!(err, CharactError::Config(_)), "{err:?}");
        assert!(err.to_string().contains("invalid cluster configuration"));
    }

    #[test]
    fn missing_level_is_a_typed_error() {
        let set = PerfTableSet::new("test", "JBOD");
        let err = require_level(&set, IoLevel::Library).expect_err("empty set has no levels");
        assert_eq!(
            err,
            CharactError::MissingLevel {
                level: IoLevel::Library
            }
        );
        assert!(err.to_string().contains("missing"));
    }

    #[test]
    fn watchdog_abort_surfaces_as_typed_charact_error() {
        let (spec, config) = quick_setup();
        // A 1ns simulated deadline: the very first measurement run aborts.
        let opts = CharacterizeOptions::quick().with_watchdog(WatchdogSpec::sim_deadline(Time(1)));
        let err = characterize_system(&spec, &config, &opts).expect_err("deadline must trip");
        match err {
            CharactError::Aborted { workload, abort } => {
                assert!(!workload.is_empty());
                assert!(abort.is_deterministic());
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
