//! Panic isolation for supervised campaign cells.
//!
//! A campaign cell that panics (a workload generator bug, an overflow in a
//! model, an assertion inside the simulator) must cost *one cell*, not the
//! whole campaign. [`run_isolated`] runs a closure under
//! [`std::panic::catch_unwind`] and converts the panic payload into a
//! plain-text error the campaign records in its outcome table.
//!
//! The default panic hook prints a backtrace to stderr before unwinding,
//! which would spray expected-failure noise over campaign output and test
//! runs. A process-wide wrapper hook (installed once) consults a
//! thread-local flag: while a supervised cell runs on this thread the
//! message is suppressed; every other panic still reaches the previously
//! installed hook unchanged, so unrelated threads and genuine crashes keep
//! their diagnostics.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    /// True while this thread runs inside [`run_isolated`].
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_wrapper_hook() {
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Extracts the human-readable message from a panic payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs `f`, converting a panic into `Err(message)` instead of unwinding
/// the caller. Panic-hook output is suppressed for the duration (on this
/// thread only), so expected cell failures don't spray stderr.
pub fn run_isolated<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_wrapper_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = catch_unwind(AssertUnwindSafe(f));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_results_pass_through() {
        assert_eq!(run_isolated(|| 41 + 1), Ok(42));
    }

    #[test]
    fn str_panics_become_messages() {
        let err = run_isolated(|| -> u32 { panic!("boom at cell 3") }).unwrap_err();
        assert_eq!(err, "boom at cell 3");
    }

    #[test]
    fn formatted_panics_become_messages() {
        let n = 7;
        let err = run_isolated(|| -> u32 { panic!("bad level {n}") }).unwrap_err();
        assert_eq!(err, "bad level 7");
    }

    #[test]
    fn panics_outside_run_isolated_still_unwind_normally() {
        // After a suppressed panic, the flag must be cleared again.
        let _ = run_isolated(|| -> u32 { panic!("suppressed") });
        assert!(!SUPPRESS_PANIC_OUTPUT.with(Cell::get));
    }

    #[test]
    fn nested_state_is_reset_even_when_closure_returns_ok() {
        assert_eq!(run_isolated(|| "fine"), Ok("fine"));
        assert!(!SUPPRESS_PANIC_OUTPUT.with(Cell::get));
    }
}
