//! Text rendering of methodology artifacts (for the `repro` harness and
//! examples).

use crate::eval::EvalReport;
use crate::perf_table::{IoLevel, OpType, PerfTable, PerfTableSet};
use crate::trace::AppProfile;
use simcore::fmt_bytes;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded to the header width; rows wider than the
    /// header are a caller bug).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        debug_assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but the table has {} columns: {:?}",
            cells.len(),
            self.header.len(),
            cells
        );
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns. Widths are measured in characters,
    /// not bytes, so non-ASCII cells (`µs`, `≈`) stay aligned.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let width_of = |c: &str| c.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(|h| width_of(h)).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(width_of(c));
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(c);
                for _ in width_of(c)..widths[i] {
                    out.push(' ');
                }
            }
            // Trim trailing pad.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

/// Renders one performance table (paper Table I layout).
pub fn render_perf_table(table: &PerfTable) -> String {
    let mut t = TextTable::new(vec![
        "OperationType",
        "Blocksize",
        "AccessType",
        "AccessMode",
        "transferRate",
        "IOPs",
        "latency",
    ]);
    for r in table.rows() {
        t.row(vec![
            r.op.to_string(),
            fmt_bytes(r.block),
            format!("{:?}", r.access),
            r.mode.to_string(),
            format!("{}", r.rate),
            format!("{:.0}", r.iops),
            format!("{}", r.latency),
        ]);
    }
    t.render()
}

/// Renders a whole characterized configuration.
pub fn render_table_set(set: &PerfTableSet) -> String {
    let mut out = format!(
        "=== Characterization: cluster {}, configuration {} ===\n",
        set.cluster, set.config
    );
    for level in IoLevel::ALL {
        if let Some(t) = set.get(level) {
            out.push_str(&format!("\n-- level: {} --\n", level.label()));
            out.push_str(&render_perf_table(t));
        }
    }
    out
}

/// Renders an application profile (paper Tables II/V/VIII layout).
pub fn render_app_profile(p: &AppProfile) -> String {
    let fmt_sizes = |sizes: &[(u64, u64)]| {
        sizes
            .iter()
            .map(|(s, n)| format!("{} x{}", fmt_bytes(*s), n))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut t = TextTable::new(vec!["Parameter", "Value"]);
    t.row(vec!["numProcs".to_string(), p.procs.to_string()]);
    t.row(vec!["numFiles".to_string(), p.num_files.to_string()]);
    t.row(vec!["numIO_read".to_string(), p.numio_read.to_string()]);
    t.row(vec!["numIO_write".to_string(), p.numio_write.to_string()]);
    t.row(vec!["numIO_open".to_string(), p.numio_open.to_string()]);
    t.row(vec!["numIO_close".to_string(), p.numio_close.to_string()]);
    t.row(vec!["bk_read".to_string(), fmt_sizes(&p.read_sizes)]);
    t.row(vec!["bk_write".to_string(), fmt_sizes(&p.write_sizes)]);
    t.row(vec!["mode_read".to_string(), p.mode_read.to_string()]);
    t.row(vec!["mode_write".to_string(), p.mode_write.to_string()]);
    t.row(vec!["exec_time".to_string(), format!("{}", p.exec_time)]);
    t.row(vec!["io_time".to_string(), format!("{}", p.io_time)]);
    t.render()
}

/// Renders the paper's usage-table layout: one row per
/// (configuration, variant), one column per I/O-path level.
pub fn render_usage_matrix(
    title: &str,
    op: OpType,
    reports: &[(&str, &str, &EvalReport)],
) -> String {
    let mut t = TextTable::new(vec![
        "I/O configuration".to_string(),
        "I/O Lib %".to_string(),
        "NFS %".to_string(),
        "Local FS %".to_string(),
        "VARIANT".to_string(),
    ]);
    for (config, variant, report) in reports {
        let cell = |level| match report.usage_summary(op, level) {
            Some(v) => format!("{v:.1}"),
            // Measured but undefined (zero characterized rate) is `n/a`;
            // a level with no rows at all stays `-`.
            None if report.has_usage_rows(op, level) => "n/a".to_string(),
            None => "-".to_string(),
        };
        t.row(vec![
            config.to_string(),
            cell(IoLevel::Library),
            cell(IoLevel::GlobalFs),
            cell(IoLevel::LocalFs),
            variant.to_string(),
        ]);
    }
    format!("=== {title} ({op} operations) ===\n{}", t.render())
}

/// Renders the representative rank's phase structure as a proportional
/// text timeline — the information of the paper's Jumpshot screenshots
/// (Figs. 8/16): `W` = write burst, `R` = read burst, `.` = computation /
/// communication.
pub fn render_phase_timeline(p: &AppProfile, width: usize) -> String {
    use crate::trace::PhaseClass;
    let width = width.max(10);
    let total = p.exec_time.as_nanos().max(1);
    let mut cells = vec![' '; width];
    for burst in &p.phases.bursts {
        let from = (burst.start.as_nanos() as u128 * width as u128 / total as u128) as usize;
        let to = (burst.end.as_nanos() as u128 * width as u128 / total as u128) as usize;
        let ch = match burst.class {
            PhaseClass::Write => 'W',
            PhaseClass::Read => 'R',
            PhaseClass::NonIo => '.',
        };
        let from = from.min(width - 1);
        let to = to.clamp(from + 1, width); // at least one cell, exclusive end
        for cell in cells.iter_mut().take(to).skip(from) {
            // I/O bursts paint over compute, not the other way round.
            if *cell == ' ' || (*cell == '.' && ch != '.') {
                *cell = ch;
            }
        }
    }
    let line: String = cells
        .into_iter()
        .map(|c| if c == ' ' { '.' } else { c })
        .collect();
    format!(
        "|{line}| 0 .. {}\n(W = write burst, R = read burst, . = compute/comm)\n",
        p.exec_time
    )
}

/// Renders the resilience comparison: the same workload under each fault
/// scenario, with throughput retained relative to the first (healthy) row,
/// surfaced I/O errors / RPC retransmissions, PFS replica failovers and
/// resynced bytes, and the rebuild window. Pass the healthy run first — it
/// is the 100% baseline.
pub fn render_resilience_table(reports: &[&EvalReport]) -> String {
    let retained = |rate: simcore::Bandwidth, base: simcore::Bandwidth| {
        if base.bytes_per_sec() == 0 {
            "-".to_string()
        } else {
            format!(
                "{:.1}%",
                rate.bytes_per_sec() as f64 / base.bytes_per_sec() as f64 * 100.0
            )
        }
    };
    let mut t = TextTable::new(vec![
        "scenario",
        "exec_time",
        "write_rate",
        "read_rate",
        "w_retained",
        "r_retained",
        "io_errors",
        "retries",
        "failovers",
        "resync",
        "rebuild",
    ]);
    let base = reports.first();
    for r in reports {
        let (w_ret, r_ret) = match base {
            Some(b) => (
                retained(r.write_rate, b.write_rate),
                retained(r.read_rate, b.read_rate),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        let rebuild = match &r.rebuild {
            Some(rb) => format!("{}", rb.duration(r.exec_time)),
            None => "-".to_string(),
        };
        t.row(vec![
            r.scenario.clone(),
            format!("{}", r.exec_time),
            format!("{}", r.write_rate),
            format!("{}", r.read_rate),
            w_ret,
            r_ret,
            format!("{}", r.io_errors),
            format!("{}", r.client_retries),
            format!("{}", r.pfs_failovers),
            if r.pfs_resync_bytes == 0 {
                "-".to_string()
            } else {
                simcore::fmt_bytes(r.pfs_resync_bytes)
            },
            rebuild,
        ]);
    }
    t.render()
}

/// Renders the run metrics the paper plots in Figs. 12/15/17/18.
pub fn render_metrics(reports: &[(&str, &str, &EvalReport)]) -> String {
    let mut t = TextTable::new(vec![
        "config",
        "variant",
        "exec_time",
        "io_time",
        "io_frac",
        "write_rate",
        "read_rate",
    ]);
    for (config, variant, r) in reports {
        t.row(vec![
            config.to_string(),
            variant.to_string(),
            format!("{}", r.exec_time),
            format!("{}", r.io_time),
            format!("{:.1}%", r.io_fraction() * 100.0),
            format!("{}", r.write_rate),
            format!("{}", r.read_rate),
        ]);
    }
    let mut out = t.render();
    // Metadata rates render only for runs that performed metadata ops, so
    // pure data-path reports (and their goldens) are byte-identical to the
    // pre-metadata layout.
    for (config, variant, r) in reports {
        if r.meta_ops > 0 {
            out.push_str(&format!(
                "metadata: {config} {variant}: {} ops, {:.1} ops/s\n",
                r.meta_ops,
                r.meta_ops_per_sec(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf_table::{AccessMode, AccessType, PerfRow};
    use simcore::{Bandwidth, Time, MIB};

    #[test]
    fn text_table_aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.row(vec!["xxxxx", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a      bbbb"));
        assert!(lines[2].starts_with("xxxxx  y"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn text_table_aligns_non_ascii_cells() {
        let mut t = TextTable::new(vec!["lat", "note"]);
        t.row(vec!["1.5µs", "x"]);
        t.row(vec!["500ns", "y"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Both data rows put the second column at the same character
        // offset even though `µ` is two bytes.
        let col = |l: &str, ch: char| l.chars().position(|c| c == ch).unwrap();
        assert_eq!(col(lines[2], 'x'), col(lines[3], 'y'), "{s}");
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    #[cfg(debug_assertions)]
    fn text_table_rejects_overlong_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1", "2", "3"]);
    }

    #[test]
    fn perf_table_renders_rows() {
        let mut table = PerfTable::new();
        table.insert(PerfRow {
            op: crate::perf_table::OpType::Write,
            block: MIB,
            access: AccessType::Global,
            mode: AccessMode::Sequential,
            rate: Bandwidth::from_mib_per_sec(100),
            iops: 100.0,
            latency: Time::from_millis(10),
        });
        let s = render_perf_table(&table);
        assert!(s.contains("write"));
        assert!(s.contains("1MiB"));
        assert!(s.contains("100.00MiB/s"));
        assert!(s.contains("sequential"));
    }

    #[test]
    fn phase_timeline_is_proportional() {
        use crate::trace::{Phase, PhaseClass, PhaseReport};
        let p = AppProfile {
            exec_time: Time::from_secs(100),
            phases: PhaseReport {
                bursts: vec![
                    Phase {
                        class: PhaseClass::Write,
                        start: Time::ZERO,
                        end: Time::from_secs(50),
                        ops: 1,
                        bytes: 1,
                        marker: u32::MAX,
                    },
                    Phase {
                        class: PhaseClass::Read,
                        start: Time::from_secs(90),
                        end: Time::from_secs(100),
                        ops: 1,
                        bytes: 1,
                        marker: u32::MAX,
                    },
                ],
            },
            ..AppProfile::default()
        };
        let line = render_phase_timeline(&p, 20);
        let bar: &str = line.split('|').nth(1).unwrap();
        assert_eq!(bar.len(), 20);
        let w = bar.chars().filter(|&c| c == 'W').count();
        let r = bar.chars().filter(|&c| c == 'R').count();
        assert!((9..=12).contains(&w), "write half: {bar}");
        assert!((2..=4).contains(&r), "read tail: {bar}");
        assert!(bar.contains('.'), "gap rendered: {bar}");
    }

    #[test]
    fn resilience_table_reports_retained_capacity() {
        let report = |scenario: &str, rate_mib: u64, rebuild| EvalReport {
            cluster: "test".to_string(),
            config: "RAID 5".to_string(),
            app: "ior".to_string(),
            profile: AppProfile::default(),
            exec_time: Time::from_secs(10),
            io_time: Time::from_secs(5),
            write_rate: Bandwidth::from_mib_per_sec(rate_mib),
            read_rate: Bandwidth::from_mib_per_sec(rate_mib / 2),
            usage: Vec::new(),
            marker_usage: Vec::new(),
            scenario: scenario.to_string(),
            meta_ops: 0,
            io_errors: 0,
            client_retries: 0,
            pfs_failovers: 0,
            pfs_resync_bytes: 0,
            rebuild,
            notes: Vec::new(),
        };
        let healthy = report("healthy", 100, None);
        let degraded = report("degraded", 60, None);
        let rebuilding = report(
            "rebuilding",
            40,
            Some(storage::RebuildReport {
                started: Time::from_secs(1),
                finished: Some(Time::from_secs(7)),
                bytes_done: MIB,
                bytes_total: MIB,
            }),
        );
        let s = render_resilience_table(&[&healthy, &degraded, &rebuilding]);
        assert!(s.contains("scenario"), "{s}");
        assert!(s.contains("100.0%"), "healthy baseline row: {s}");
        assert!(s.contains("60.0%"), "degraded write retention: {s}");
        assert!(s.contains("40.0%"), "rebuilding write retention: {s}");
        assert!(s.contains("6.000s"), "rebuild window: {s}");
        // The degraded/no-rebuild rows render a dash.
        assert!(s.lines().nth(2).unwrap().trim_end().ends_with('-'), "{s}");

        // PFS rows surface failovers and resynced bytes.
        let mut pfs_degraded = report("pfs-degraded", 80, None);
        pfs_degraded.pfs_failovers = 12;
        let mut pfs_recovered = report("pfs-recovered", 90, None);
        pfs_recovered.pfs_failovers = 4;
        pfs_recovered.pfs_resync_bytes = 2 * MIB;
        let s = render_resilience_table(&[&healthy, &pfs_degraded, &pfs_recovered]);
        assert!(s.contains("failovers"), "{s}");
        assert!(s.contains("12"), "degraded failover count: {s}");
        assert!(s.contains("2MiB"), "resynced bytes: {s}");
    }

    #[test]
    fn app_profile_renders_parameters() {
        let p = AppProfile {
            procs: 16,
            numio_write: 640,
            write_sizes: vec![(1600, 320), (1640, 320)],
            ..AppProfile::default()
        };
        let s = render_app_profile(&p);
        assert!(s.contains("numProcs"));
        assert!(s.contains("16"));
        assert!(s.contains("640"));
        assert!(s.contains("x320"));
    }
}
