//! Phase 3 — evaluation (paper §III-C, Figs. 9–11).
//!
//! Runs the application on a configuration, collects the paper's metrics
//! (execution time, I/O time, IOPs, latency, throughput), and generates the
//! **used-percentage table**: for every application-level measurement the
//! characterized transfer rate is looked up at each I/O-path level
//! (Fig. 11 search) and the usage is `measured / characterized × 100`
//! (Fig. 10). Values above 100% mean the application is not limited at
//! that level (e.g. it is served from buffer/cache, or aggregates several
//! components the single-level characterization cannot see).

use crate::perf_table::{IoLevel, OpType, PerfTableSet};
use crate::trace::{AppProfile, ProfileSink};
use cluster::{ClusterMachine, ClusterSpec, IoConfig};
use mpisim::Runtime;
use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Time};
use workloads::Scenario;

/// Evaluation options.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Rank placement override (default: round-robin over compute nodes).
    pub placement: Option<Vec<usize>>,
}

/// One row of the used-percentage table.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UsageRow {
    /// Operation type.
    pub op: OpType,
    /// Application block size.
    pub block: u64,
    /// Bytes the application moved at this block size.
    pub bytes: u64,
    /// Application-level measured rate.
    pub measured: Bandwidth,
    /// I/O-path level compared against.
    pub level: IoLevel,
    /// Characterized rate selected by the Fig. 11 search.
    pub characterized: Bandwidth,
    /// `measured / characterized × 100`.
    pub used_pct: f64,
}

/// Usage of one workload-labelled section (MADbench2 S/W/C) at one level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MarkerUsageRow {
    /// Marker id.
    pub marker: u32,
    /// Operation type.
    pub op: OpType,
    /// Mean block size within the section.
    pub block: u64,
    /// Measured rate within the section.
    pub measured: Bandwidth,
    /// Level compared against.
    pub level: IoLevel,
    /// Characterized rate.
    pub characterized: Bandwidth,
    /// Usage percentage.
    pub used_pct: f64,
}

/// The outcome of evaluating one application on one configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EvalReport {
    /// Cluster name.
    pub cluster: String,
    /// Configuration name.
    pub config: String,
    /// Application name.
    pub app: String,
    /// The application profile collected during the run.
    pub profile: AppProfile,
    /// Execution time (wall).
    pub exec_time: Time,
    /// I/O time of the slowest rank.
    pub io_time: Time,
    /// Application-level aggregate write rate.
    pub write_rate: Bandwidth,
    /// Application-level aggregate read rate.
    pub read_rate: Bandwidth,
    /// Per-(op, block, level) usage rows.
    pub usage: Vec<UsageRow>,
    /// Per-marker usage rows.
    pub marker_usage: Vec<MarkerUsageRow>,
}

impl EvalReport {
    /// Bytes-weighted mean usage for an operation at a level — the single
    /// number the paper's Tables III/IV/VI/VII report per cell.
    pub fn usage_summary(&self, op: OpType, level: IoLevel) -> Option<f64> {
        let rows: Vec<&UsageRow> = self
            .usage
            .iter()
            .filter(|u| u.op == op && u.level == level)
            .collect();
        if rows.is_empty() {
            return None;
        }
        let total: u64 = rows.iter().map(|u| u.bytes).sum();
        if total == 0 {
            return None;
        }
        Some(
            rows.iter()
                .map(|u| u.used_pct * u.bytes as f64 / total as f64)
                .sum(),
        )
    }

    /// Usage of a marker section at a level (paper Tables IX/X/XI cells).
    pub fn marker_usage_of(&self, marker: u32, op: OpType, level: IoLevel) -> Option<f64> {
        self.marker_usage
            .iter()
            .find(|m| m.marker == marker && m.op == op && m.level == level)
            .map(|m| m.used_pct)
    }

    /// The fraction of execution time spent in I/O.
    pub fn io_fraction(&self) -> f64 {
        if self.exec_time == Time::ZERO {
            0.0
        } else {
            self.io_time.as_secs_f64() / self.exec_time.as_secs_f64()
        }
    }
}

/// Generates the usage rows for a profile against characterized tables —
/// the Fig. 10 algorithm, separated from the run for testability.
pub fn usage_table(profile: &AppProfile, tables: &PerfTableSet) -> Vec<UsageRow> {
    let mut out = Vec::new();
    for m in &profile.measured {
        for level in IoLevel::ALL {
            let Some(table) = tables.get(level) else {
                continue;
            };
            let Some(row) = table.search_lenient(m.op, m.block, level.access_type(), m.mode)
            else {
                continue;
            };
            let characterized = row.rate;
            let used_pct = if characterized.bytes_per_sec() == 0 {
                0.0
            } else {
                m.rate.bytes_per_sec() as f64 / characterized.bytes_per_sec() as f64 * 100.0
            };
            out.push(UsageRow {
                op: m.op,
                block: m.block,
                bytes: m.bytes,
                measured: m.rate,
                level,
                characterized,
                used_pct,
            });
        }
    }
    out
}

/// Generates per-marker usage rows.
pub fn marker_usage_table(profile: &AppProfile, tables: &PerfTableSet) -> Vec<MarkerUsageRow> {
    let mut out = Vec::new();
    for m in &profile.per_marker {
        if m.ops == 0 {
            continue;
        }
        let block = m.bytes / m.ops;
        let mode = match m.op {
            OpType::Read => profile.mode_read,
            OpType::Write => profile.mode_write,
        };
        for level in IoLevel::ALL {
            let Some(table) = tables.get(level) else {
                continue;
            };
            let Some(row) = table.search_lenient(m.op, block, level.access_type(), mode) else {
                continue;
            };
            let used_pct = if row.rate.bytes_per_sec() == 0 {
                0.0
            } else {
                m.rate.bytes_per_sec() as f64 / row.rate.bytes_per_sec() as f64 * 100.0
            };
            out.push(MarkerUsageRow {
                marker: m.marker,
                op: m.op,
                block,
                measured: m.rate,
                level,
                characterized: row.rate,
                used_pct,
            });
        }
    }
    out
}

/// Phase 3: runs `scenario` on `(spec, config)` and evaluates it against
/// the configuration's characterized `tables`.
pub fn evaluate(
    spec: &ClusterSpec,
    config: &IoConfig,
    scenario: Scenario,
    tables: &PerfTableSet,
    opts: &EvalOptions,
) -> EvalReport {
    let app = scenario.name.clone();
    let ranks = scenario.ranks();
    let mut machine = ClusterMachine::new(spec, config);
    let programs = scenario.install(&mut machine);
    let placement = opts
        .placement
        .clone()
        .unwrap_or_else(|| spec.placement(ranks));
    let mut sink = ProfileSink::new(ranks);
    Runtime::default().run(&mut machine, &placement, programs, &mut sink);
    let profile = sink.finish();

    let usage = usage_table(&profile, tables);
    let marker_usage = marker_usage_table(&profile, tables);
    EvalReport {
        cluster: spec.name.clone(),
        config: config.name.clone(),
        app,
        exec_time: profile.exec_time,
        io_time: profile.io_time,
        write_rate: profile.write_rate(),
        read_rate: profile.read_rate(),
        usage,
        marker_usage,
        profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charact::{characterize_system, CharacterizeOptions};
    use crate::perf_table::{AccessMode, AccessType, PerfRow, PerfTable};
    use crate::trace::MeasuredRow;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use simcore::MIB;
    use workloads::{BtClass, BtIo, BtSubtype};

    fn fake_tables(rate_mib: u64) -> PerfTableSet {
        let mut set = PerfTableSet::new("test", "JBOD");
        for level in IoLevel::ALL {
            let mut t = PerfTable::new();
            for op in [OpType::Read, OpType::Write] {
                for mode in [AccessMode::Sequential, AccessMode::Strided, AccessMode::Random] {
                    t.insert(PerfRow {
                        op,
                        block: MIB,
                        access: level.access_type(),
                        mode,
                        rate: Bandwidth::from_mib_per_sec(rate_mib),
                        iops: 0.0,
                        latency: Time::ZERO,
                    });
                }
            }
            set.set(level, t);
        }
        set
    }

    fn fake_profile(rate_mib: u64) -> AppProfile {
        AppProfile {
            procs: 1,
            measured: vec![MeasuredRow {
                op: OpType::Write,
                block: MIB,
                mode: AccessMode::Sequential,
                rate: Bandwidth::from_mib_per_sec(rate_mib),
                ops: 10,
                bytes: 10 * MIB,
                iops: 10.0,
                latency: Time::from_millis(1),
            }],
            ..AppProfile::default()
        }
    }

    #[test]
    fn usage_is_measured_over_characterized() {
        let tables = fake_tables(100);
        let profile = fake_profile(50);
        let rows = usage_table(&profile, &tables);
        assert_eq!(rows.len(), 3, "one row per level");
        for r in &rows {
            assert!((r.used_pct - 50.0).abs() < 1e-9, "usage {}", r.used_pct);
        }
    }

    #[test]
    fn usage_above_100_when_cache_beats_characterization() {
        let tables = fake_tables(100);
        let profile = fake_profile(250);
        let rows = usage_table(&profile, &tables);
        assert!(rows.iter().all(|r| (r.used_pct - 250.0).abs() < 1e-9));
    }

    #[test]
    fn end_to_end_btio_eval_on_test_cluster() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick());
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(4)
            .gflops(50.0);
        let report = evaluate(&spec, &config, bt.scenario(), &tables, &EvalOptions::default());
        assert!(report.exec_time > Time::ZERO);
        assert!(report.io_time > Time::ZERO);
        assert!(report.io_time <= report.exec_time);
        assert!(report.write_rate.bytes_per_sec() > 0);
        assert!(!report.usage.is_empty());
        let s = report.usage_summary(OpType::Write, IoLevel::Library);
        assert!(s.is_some());
        assert!(s.unwrap() > 0.0);
        assert!(report.io_fraction() > 0.0 && report.io_fraction() <= 1.0);
    }

    #[test]
    fn full_subtype_beats_simple_on_io_time() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let tables = fake_tables(100); // usage table irrelevant here
        let run = |subtype| {
            let bt = BtIo::new(BtClass::S, 4, subtype).with_dumps(4).gflops(50.0);
            evaluate(&spec, &config, bt.scenario(), &tables, &EvalOptions::default())
        };
        let full = run(BtSubtype::Full);
        let simple = run(BtSubtype::Simple);
        assert!(
            simple.io_time > full.io_time,
            "simple {:?} must exceed full {:?} (paper's headline result)",
            simple.io_time,
            full.io_time
        );
        assert!(simple.exec_time > full.exec_time);
    }

    #[test]
    fn marker_usage_lookup() {
        let tables = fake_tables(100);
        let mut profile = fake_profile(50);
        profile.per_marker = vec![crate::trace::MarkerRates {
            marker: 1,
            op: OpType::Write,
            rate: Bandwidth::from_mib_per_sec(25),
            bytes: 10 * MIB,
            ops: 10,
        }];
        let rows = marker_usage_table(&profile, &tables);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].used_pct - 25.0).abs() < 1e-9);
        assert_eq!(rows[0].block, MIB);
    }

    #[test]
    fn usage_handles_missing_tables_gracefully() {
        let mut tables = fake_tables(100);
        tables.tables.remove(&IoLevel::LocalFs);
        let rows = usage_table(&fake_profile(50), &tables);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn access_type_is_exported() {
        // Silence the unused-import lint meaningfully: levels map to types.
        assert_eq!(IoLevel::LocalFs.access_type(), AccessType::Local);
    }
}
