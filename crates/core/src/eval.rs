//! Phase 3 — evaluation (paper §III-C, Figs. 9–11).
//!
//! Runs the application on a configuration, collects the paper's metrics
//! (execution time, I/O time, IOPs, latency, throughput), and generates the
//! **used-percentage table**: for every application-level measurement the
//! characterized transfer rate is looked up at each I/O-path level
//! (Fig. 11 search) and the usage is `measured / characterized × 100`
//! (Fig. 10). Values above 100% mean the application is not limited at
//! that level (e.g. it is served from buffer/cache, or aggregates several
//! components the single-level characterization cannot see).

use crate::perf_table::{IoLevel, OpType, PerfTableSet};
use crate::trace::{AppProfile, ProfileSink};
use cluster::{ClusterMachine, ClusterSpec, ConfigError, IoConfig};
use mpisim::Runtime;
use serde::{Deserialize, Serialize};
use simcore::{Abort, Bandwidth, Fault, FaultEvent, FaultSchedule, Time, WatchdogSpec};
use storage::RebuildReport;
use workloads::Scenario;

/// Why an evaluation could not produce a report.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// The cluster configuration failed validation.
    Config(ConfigError),
    /// The application run was aborted by the watchdog.
    Aborted {
        /// The application that was running.
        app: String,
        /// Why the watchdog stopped it.
        abort: Abort,
    },
    /// The op program was structurally invalid — it referenced unknown
    /// ranks, mismatched its placement, or deadlocked. Deterministic:
    /// retrying the same program cannot succeed, so campaign workers
    /// classify this as a permanent cell failure without burning their
    /// panic-retry budget.
    Program {
        /// The application whose program was invalid.
        app: String,
        /// The structural defect.
        fault: mpisim::ProgramFault,
    },
}

impl From<ConfigError> for EvalError {
    fn from(e: ConfigError) -> Self {
        EvalError::Config(e)
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Config(e) => write!(f, "invalid cluster configuration: {e}"),
            EvalError::Aborted { app, abort } => {
                write!(f, "evaluation of '{app}' aborted: {abort}")
            }
            EvalError::Program { app, fault } => {
                write!(f, "invalid op program in '{app}': {fault}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The fault condition an evaluation runs under — the resilience axis of
/// the methodology. `Healthy` reproduces the paper's measurements; the
/// other variants re-run the same workload while the I/O system is
/// recovering from a component failure, so the report can state how much
/// of the healthy capacity survives.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum FaultScenario {
    /// No faults (the paper's baseline).
    #[default]
    Healthy,
    /// A member disk of the server volume fails at `at` and is never
    /// replaced: the array serves the whole run degraded.
    Degraded {
        /// Member index within the server volume.
        disk: usize,
        /// When the member fails.
        at: Time,
    },
    /// A member fails at `fail_at` and a replacement arrives at
    /// `replace_at`: the background rebuild competes with the workload.
    Rebuilding {
        /// Member index within the server volume.
        disk: usize,
        /// When the member fails.
        fail_at: Time,
        /// When the hot-spare arrives and the resilver starts.
        replace_at: Time,
    },
    /// A PFS I/O server fails at `at` and never comes back: reads and
    /// writes fail over to surviving replica holders for the whole run.
    PfsDegraded {
        /// Index of the failing PFS server.
        server: usize,
        /// When the server fails.
        at: Time,
    },
    /// A PFS I/O server fails at `fail_at` and recovers at `recover_at`:
    /// the recovered server resyncs the writes it missed.
    PfsRecovered {
        /// Index of the failing PFS server.
        server: usize,
        /// When the server fails.
        fail_at: Time,
        /// When the server comes back and the resync runs.
        recover_at: Time,
    },
    /// Any explicit schedule (stall windows, limping disks, lossy
    /// networks, ...), with a label for the report.
    Custom {
        /// Report label, e.g. `"stall 2s"`.
        label: String,
        /// The events to inject.
        schedule: FaultSchedule,
    },
}

impl FaultScenario {
    /// Report label for this scenario.
    pub fn label(&self) -> &str {
        match self {
            FaultScenario::Healthy => "healthy",
            FaultScenario::Degraded { .. } => "degraded",
            FaultScenario::Rebuilding { .. } => "rebuilding",
            FaultScenario::PfsDegraded { .. } => "pfs-degraded",
            FaultScenario::PfsRecovered { .. } => "pfs-recovered",
            FaultScenario::Custom { label, .. } => label,
        }
    }

    /// The fault schedule this scenario injects.
    pub fn schedule(&self) -> FaultSchedule {
        match self {
            FaultScenario::Healthy => FaultSchedule::none(),
            FaultScenario::Degraded { disk, at } => FaultSchedule::new(vec![FaultEvent {
                at: *at,
                fault: Fault::DiskFail { disk: *disk },
            }]),
            FaultScenario::Rebuilding {
                disk,
                fail_at,
                replace_at,
            } => FaultSchedule::new(vec![
                FaultEvent {
                    at: *fail_at,
                    fault: Fault::DiskFail { disk: *disk },
                },
                FaultEvent {
                    at: *replace_at,
                    fault: Fault::DiskReplace { disk: *disk },
                },
            ]),
            FaultScenario::PfsDegraded { server, at } => FaultSchedule::new(vec![FaultEvent {
                at: *at,
                fault: Fault::PfsServerFail { server: *server },
            }]),
            FaultScenario::PfsRecovered {
                server,
                fail_at,
                recover_at,
            } => FaultSchedule::new(vec![
                FaultEvent {
                    at: *fail_at,
                    fault: Fault::PfsServerFail { server: *server },
                },
                FaultEvent {
                    at: *recover_at,
                    fault: Fault::PfsServerRecover { server: *server },
                },
            ]),
            FaultScenario::Custom { schedule, .. } => schedule.clone(),
        }
    }
}

/// Evaluation options.
#[derive(Clone, Debug, Default)]
pub struct EvalOptions {
    /// Rank placement override (default: round-robin over compute nodes).
    pub placement: Option<Vec<usize>>,
    /// Fault condition to run under (default: healthy).
    pub faults: FaultScenario,
    /// Watchdog budgets applied to the run (`None`: none).
    pub watchdog: Option<WatchdogSpec>,
}

/// One row of the used-percentage table.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UsageRow {
    /// Operation type.
    pub op: OpType,
    /// Application block size.
    pub block: u64,
    /// Bytes the application moved at this block size.
    pub bytes: u64,
    /// Application-level measured rate.
    pub measured: Bandwidth,
    /// I/O-path level compared against.
    pub level: IoLevel,
    /// Characterized rate selected by the Fig. 11 search.
    pub characterized: Bandwidth,
    /// `measured / characterized × 100`, or `None` when the characterized
    /// rate is zero (a fully degraded level): the ratio is undefined and
    /// renders as `n/a`, never `inf`/`NaN`.
    pub used_pct: Option<f64>,
}

/// Usage of one workload-labelled section (MADbench2 S/W/C) at one level.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MarkerUsageRow {
    /// Marker id.
    pub marker: u32,
    /// Operation type.
    pub op: OpType,
    /// Mean block size within the section.
    pub block: u64,
    /// Measured rate within the section.
    pub measured: Bandwidth,
    /// Level compared against.
    pub level: IoLevel,
    /// Characterized rate.
    pub characterized: Bandwidth,
    /// Usage percentage; `None` when the characterized rate is zero (see
    /// [`UsageRow::used_pct`]).
    pub used_pct: Option<f64>,
}

/// A typed annotation the evaluation attaches to its report when a value
/// could not be computed (rather than silently rendering a bogus number).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EvalNote {
    /// The Fig. 11 search selected a characterized row whose transfer rate
    /// is zero (a fully degraded level), so the used percentage for this
    /// `(op, block, level)` cell is undefined and renders `n/a`.
    ZeroCharacterizedRate {
        /// Operation type of the affected usage row.
        op: OpType,
        /// Application block size of the affected usage row.
        block: u64,
        /// I/O-path level whose characterized rate was zero.
        level: IoLevel,
    },
}

impl std::fmt::Display for EvalNote {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalNote::ZeroCharacterizedRate { op, block, level } => write!(
                f,
                "characterized {op} rate at {} is zero for {} blocks: usage is n/a",
                level.label(),
                simcore::fmt_bytes(*block)
            ),
        }
    }
}

/// The outcome of evaluating one application on one configuration.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Cluster name.
    pub cluster: String,
    /// Configuration name.
    pub config: String,
    /// Application name.
    pub app: String,
    /// The application profile collected during the run.
    pub profile: AppProfile,
    /// Execution time (wall).
    pub exec_time: Time,
    /// I/O time of the slowest rank.
    pub io_time: Time,
    /// Application-level aggregate write rate.
    pub write_rate: Bandwidth,
    /// Application-level aggregate read rate.
    pub read_rate: Bandwidth,
    /// Per-(op, block, level) usage rows.
    pub usage: Vec<UsageRow>,
    /// Per-marker usage rows.
    pub marker_usage: Vec<MarkerUsageRow>,
    /// Label of the fault scenario the run executed under.
    pub scenario: String,
    /// mdtest-class metadata operations executed across all ranks (zero
    /// for pure data-path workloads).
    pub meta_ops: u64,
    /// I/O operations that exhausted their NFS retry budget.
    pub io_errors: u64,
    /// RPC retransmissions across all clients (NFS and PFS).
    pub client_retries: u64,
    /// PFS operations that fell back to a surviving replica holder.
    pub pfs_failovers: u64,
    /// Bytes replayed to recovered PFS servers by background resync.
    pub pfs_resync_bytes: u64,
    /// Rebuild progress, if the scenario replaced a failed member. The
    /// rebuild is driven to completion after the workload finishes, so
    /// `finished` is always set and `duration` reports the full window.
    pub rebuild: Option<RebuildReport>,
    /// Typed annotations for values the run could not compute (e.g. a
    /// zero-rate characterized row making a used percentage undefined).
    /// Empty for every healthy, fully characterized run.
    pub notes: Vec<EvalNote>,
}

// Serialization is hand-written (not derived) for one reason: `notes`,
// `meta_ops`, `pfs_failovers`, and `pfs_resync_bytes` are omitted when
// empty/zero.
// Fault-free runs therefore serialize byte-identically to reports produced
// before the fields existed, which keeps persisted campaign checkpoints
// stable, and older checkpoint payloads (no such keys) still deserialize.
impl Serialize for EvalReport {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("cluster", Serialize::to_value(&self.cluster));
        m.insert("config", Serialize::to_value(&self.config));
        m.insert("app", Serialize::to_value(&self.app));
        m.insert("profile", Serialize::to_value(&self.profile));
        m.insert("exec_time", Serialize::to_value(&self.exec_time));
        m.insert("io_time", Serialize::to_value(&self.io_time));
        m.insert("write_rate", Serialize::to_value(&self.write_rate));
        m.insert("read_rate", Serialize::to_value(&self.read_rate));
        m.insert("usage", Serialize::to_value(&self.usage));
        m.insert("marker_usage", Serialize::to_value(&self.marker_usage));
        m.insert("scenario", Serialize::to_value(&self.scenario));
        if self.meta_ops != 0 {
            m.insert("meta_ops", Serialize::to_value(&self.meta_ops));
        }
        m.insert("io_errors", Serialize::to_value(&self.io_errors));
        m.insert("client_retries", Serialize::to_value(&self.client_retries));
        if self.pfs_failovers != 0 {
            m.insert("pfs_failovers", Serialize::to_value(&self.pfs_failovers));
        }
        if self.pfs_resync_bytes != 0 {
            m.insert(
                "pfs_resync_bytes",
                Serialize::to_value(&self.pfs_resync_bytes),
            );
        }
        m.insert("rebuild", Serialize::to_value(&self.rebuild));
        if !self.notes.is_empty() {
            m.insert("notes", Serialize::to_value(&self.notes));
        }
        serde::Value::Object(m)
    }
}

impl Deserialize for EvalReport {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let field = |name: &str| v.get(name).unwrap_or(&serde::Value::Null);
        Ok(EvalReport {
            cluster: Deserialize::from_value(field("cluster"))?,
            config: Deserialize::from_value(field("config"))?,
            app: Deserialize::from_value(field("app"))?,
            profile: Deserialize::from_value(field("profile"))?,
            exec_time: Deserialize::from_value(field("exec_time"))?,
            io_time: Deserialize::from_value(field("io_time"))?,
            write_rate: Deserialize::from_value(field("write_rate"))?,
            read_rate: Deserialize::from_value(field("read_rate"))?,
            usage: Deserialize::from_value(field("usage"))?,
            marker_usage: Deserialize::from_value(field("marker_usage"))?,
            scenario: Deserialize::from_value(field("scenario"))?,
            meta_ops: match field("meta_ops") {
                serde::Value::Null => 0,
                other => Deserialize::from_value(other)?,
            },
            io_errors: Deserialize::from_value(field("io_errors"))?,
            client_retries: Deserialize::from_value(field("client_retries"))?,
            pfs_failovers: match field("pfs_failovers") {
                serde::Value::Null => 0,
                other => Deserialize::from_value(other)?,
            },
            pfs_resync_bytes: match field("pfs_resync_bytes") {
                serde::Value::Null => 0,
                other => Deserialize::from_value(other)?,
            },
            rebuild: Deserialize::from_value(field("rebuild"))?,
            notes: match field("notes") {
                serde::Value::Null => Vec::new(),
                other => Deserialize::from_value(other)?,
            },
        })
    }
}

impl EvalReport {
    /// Bytes-weighted mean usage for an operation at a level — the single
    /// number the paper's Tables III/IV/VI/VII report per cell. Rows whose
    /// usage is undefined (zero characterized rate) are excluded from the
    /// mean; the summary is `None` when no row has a defined usage.
    pub fn usage_summary(&self, op: OpType, level: IoLevel) -> Option<f64> {
        let rows: Vec<(&UsageRow, f64)> = self
            .usage
            .iter()
            .filter(|u| u.op == op && u.level == level)
            .filter_map(|u| u.used_pct.map(|pct| (u, pct)))
            .collect();
        if rows.is_empty() {
            return None;
        }
        let total: u64 = rows.iter().map(|(u, _)| u.bytes).sum();
        if total == 0 {
            return None;
        }
        Some(
            rows.iter()
                .map(|(u, pct)| pct * u.bytes as f64 / total as f64)
                .sum(),
        )
    }

    /// Whether any usage row exists for `(op, level)` — distinguishes "not
    /// measured" (`-` in tables) from "measured but undefined" (`n/a`).
    pub fn has_usage_rows(&self, op: OpType, level: IoLevel) -> bool {
        self.usage.iter().any(|u| u.op == op && u.level == level)
    }

    /// Usage of a marker section at a level (paper Tables IX/X/XI cells).
    /// `None` when the section was not measured at this level *or* its
    /// usage is undefined (zero characterized rate).
    pub fn marker_usage_of(&self, marker: u32, op: OpType, level: IoLevel) -> Option<f64> {
        self.marker_usage
            .iter()
            .find(|m| m.marker == marker && m.op == op && m.level == level)
            .and_then(|m| m.used_pct)
    }

    /// Whether a marker usage row exists for `(marker, op, level)` — see
    /// [`Self::has_usage_rows`].
    pub fn has_marker_usage_row(&self, marker: u32, op: OpType, level: IoLevel) -> bool {
        self.marker_usage
            .iter()
            .any(|m| m.marker == marker && m.op == op && m.level == level)
    }

    /// Aggregate metadata rate in operations per second over the whole
    /// run — the number an mdtest row reports. Zero when the workload
    /// performed no metadata operations.
    pub fn meta_ops_per_sec(&self) -> f64 {
        if self.exec_time == Time::ZERO {
            0.0
        } else {
            self.meta_ops as f64 / self.exec_time.as_secs_f64()
        }
    }

    /// The fraction of execution time spent in I/O.
    pub fn io_fraction(&self) -> f64 {
        if self.exec_time == Time::ZERO {
            0.0
        } else {
            self.io_time.as_secs_f64() / self.exec_time.as_secs_f64()
        }
    }
}

/// Generates the usage rows for a profile against characterized tables —
/// the Fig. 10 algorithm, separated from the run for testability.
pub fn usage_table(profile: &AppProfile, tables: &PerfTableSet) -> Vec<UsageRow> {
    let mut out = Vec::new();
    for m in &profile.measured {
        for level in IoLevel::ALL {
            let Some(table) = tables.get(level) else {
                continue;
            };
            let Some(row) = table.search_lenient(m.op, m.block, level.access_type(), m.mode) else {
                continue;
            };
            let characterized = row.rate;
            // A zero characterized rate (fully degraded level) makes the
            // ratio undefined: report `None`, never inf/NaN.
            let used_pct = (characterized.bytes_per_sec() != 0).then(|| {
                m.rate.bytes_per_sec() as f64 / characterized.bytes_per_sec() as f64 * 100.0
            });
            out.push(UsageRow {
                op: m.op,
                block: m.block,
                bytes: m.bytes,
                measured: m.rate,
                level,
                characterized,
                used_pct,
            });
        }
    }
    out
}

/// Generates per-marker usage rows.
pub fn marker_usage_table(profile: &AppProfile, tables: &PerfTableSet) -> Vec<MarkerUsageRow> {
    let mut out = Vec::new();
    for m in &profile.per_marker {
        if m.ops == 0 {
            continue;
        }
        let block = m.bytes / m.ops;
        let mode = match m.op {
            OpType::Read => profile.mode_read,
            OpType::Write => profile.mode_write,
        };
        for level in IoLevel::ALL {
            let Some(table) = tables.get(level) else {
                continue;
            };
            let Some(row) = table.search_lenient(m.op, block, level.access_type(), mode) else {
                continue;
            };
            let used_pct = (row.rate.bytes_per_sec() != 0)
                .then(|| m.rate.bytes_per_sec() as f64 / row.rate.bytes_per_sec() as f64 * 100.0);
            out.push(MarkerUsageRow {
                marker: m.marker,
                op: m.op,
                block,
                measured: m.rate,
                level,
                characterized: row.rate,
                used_pct,
            });
        }
    }
    out
}

/// Phase 3: runs `scenario` on `(spec, config)` and evaluates it against
/// the configuration's characterized `tables`.
pub fn evaluate(
    spec: &ClusterSpec,
    config: &IoConfig,
    scenario: Scenario,
    tables: &PerfTableSet,
    opts: &EvalOptions,
) -> Result<EvalReport, EvalError> {
    let app = scenario.name.clone();
    let ranks = scenario.ranks();
    let mut machine = ClusterMachine::try_new(spec, config)?;
    machine.install_faults(opts.faults.schedule())?;
    let programs = scenario.install(&mut machine);
    let placement = opts
        .placement
        .clone()
        .unwrap_or_else(|| spec.placement(ranks));
    let mut sink = ProfileSink::new(ranks);
    let stats = Runtime::default()
        .run_supervised(
            &mut machine,
            &placement,
            programs,
            &mut sink,
            opts.watchdog.as_ref().map(WatchdogSpec::arm),
        )
        .map_err(|e| match e {
            mpisim::RunError::Aborted(abort) => EvalError::Aborted {
                app: app.clone(),
                abort,
            },
            mpisim::RunError::Invalid(fault) => EvalError::Program {
                app: app.clone(),
                fault,
            },
        })?;
    let meta_ops: u64 = stats.per_rank.iter().map(|r| r.meta_ops).sum();
    let profile = sink.finish();

    // Settle faults scheduled after the last I/O op (e.g. a replacement
    // or PFS server recovery arriving once the workload is quiescent),
    // then let any in-progress resilver drain so the report shows a
    // finite rebuild window.
    let settle_at = opts
        .faults
        .schedule()
        .events()
        .iter()
        .map(|e| e.at)
        .max()
        .map_or(profile.exec_time, |last| last.max(profile.exec_time));
    machine.apply_faults_up_to(settle_at);
    let rebuild = match machine.rebuild_report() {
        Some(r) if r.finished.is_none() => {
            machine.finish_rebuild(settle_at);
            machine.rebuild_report()
        }
        other => other,
    };

    let usage = usage_table(&profile, tables);
    let marker_usage = marker_usage_table(&profile, tables);
    let notes = usage_notes(&usage, &marker_usage);
    Ok(EvalReport {
        cluster: spec.name.clone(),
        config: config.name.clone(),
        app,
        exec_time: profile.exec_time,
        io_time: profile.io_time,
        write_rate: profile.write_rate(),
        read_rate: profile.read_rate(),
        usage,
        marker_usage,
        profile,
        scenario: opts.faults.label().to_string(),
        meta_ops,
        io_errors: machine.io_errors(),
        client_retries: machine.client_retries(),
        pfs_failovers: machine.pfs_failovers(),
        pfs_resync_bytes: machine.pfs_resync_bytes(),
        rebuild,
        notes,
    })
}

/// The typed notes implied by undefined usage rows (deduplicated, in row
/// order).
pub fn usage_notes(usage: &[UsageRow], marker_usage: &[MarkerUsageRow]) -> Vec<EvalNote> {
    let mut notes: Vec<EvalNote> = Vec::new();
    let undefined = usage
        .iter()
        .filter(|u| u.used_pct.is_none())
        .map(|u| (u.op, u.block, u.level))
        .chain(
            marker_usage
                .iter()
                .filter(|m| m.used_pct.is_none())
                .map(|m| (m.op, m.block, m.level)),
        );
    for (op, block, level) in undefined {
        let note = EvalNote::ZeroCharacterizedRate { op, block, level };
        if !notes.contains(&note) {
            notes.push(note);
        }
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::charact::{characterize_system, CharacterizeOptions};
    use crate::perf_table::{AccessMode, AccessType, PerfRow, PerfTable};
    use crate::trace::MeasuredRow;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use simcore::MIB;
    use workloads::{BtClass, BtIo, BtSubtype};

    fn fake_tables(rate_mib: u64) -> PerfTableSet {
        let mut set = PerfTableSet::new("test", "JBOD");
        for level in IoLevel::ALL {
            let mut t = PerfTable::new();
            for op in [OpType::Read, OpType::Write] {
                for mode in [
                    AccessMode::Sequential,
                    AccessMode::Strided,
                    AccessMode::Random,
                ] {
                    t.insert(PerfRow {
                        op,
                        block: MIB,
                        access: level.access_type(),
                        mode,
                        rate: Bandwidth::from_mib_per_sec(rate_mib),
                        iops: 0.0,
                        latency: Time::ZERO,
                    });
                }
            }
            set.set(level, t);
        }
        set
    }

    fn fake_profile(rate_mib: u64) -> AppProfile {
        AppProfile {
            procs: 1,
            measured: vec![MeasuredRow {
                op: OpType::Write,
                block: MIB,
                mode: AccessMode::Sequential,
                rate: Bandwidth::from_mib_per_sec(rate_mib),
                ops: 10,
                bytes: 10 * MIB,
                iops: 10.0,
                latency: Time::from_millis(1),
            }],
            ..AppProfile::default()
        }
    }

    #[test]
    fn usage_is_measured_over_characterized() {
        let tables = fake_tables(100);
        let profile = fake_profile(50);
        let rows = usage_table(&profile, &tables);
        assert_eq!(rows.len(), 3, "one row per level");
        for r in &rows {
            let pct = r.used_pct.expect("nonzero characterized rate");
            assert!((pct - 50.0).abs() < 1e-9, "usage {pct}");
        }
    }

    #[test]
    fn usage_above_100_when_cache_beats_characterization() {
        let tables = fake_tables(100);
        let profile = fake_profile(250);
        let rows = usage_table(&profile, &tables);
        assert!(rows
            .iter()
            .all(|r| (r.used_pct.unwrap() - 250.0).abs() < 1e-9));
    }

    #[test]
    fn zero_characterized_rate_yields_undefined_usage_not_nan() {
        let tables = fake_tables(0);
        let profile = fake_profile(50);
        let rows = usage_table(&profile, &tables);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.used_pct.is_none()));
        let notes = usage_notes(&rows, &[]);
        assert_eq!(notes.len(), 3, "one note per level: {notes:?}");
        assert!(matches!(
            notes[0],
            EvalNote::ZeroCharacterizedRate {
                op: OpType::Write,
                ..
            }
        ));
        // The rendered form never contains inf/NaN.
        let text = notes.iter().map(|n| n.to_string()).collect::<String>();
        assert!(text.contains("n/a"), "{text}");
        assert!(!text.contains("inf") && !text.contains("NaN"), "{text}");
    }

    #[test]
    fn usage_summary_skips_undefined_rows() {
        let mut report = ior_read_eval(FaultScenario::Healthy);
        report.usage = usage_table(&fake_profile(50), &fake_tables(100));
        // Poison one level with an undefined row: the other levels still
        // summarize, the poisoned one returns None.
        for u in report.usage.iter_mut() {
            if u.level == IoLevel::GlobalFs {
                u.used_pct = None;
            }
        }
        assert!(report
            .usage_summary(OpType::Write, IoLevel::Library)
            .is_some());
        assert!(report
            .usage_summary(OpType::Write, IoLevel::GlobalFs)
            .is_none());
        assert!(report.has_usage_rows(OpType::Write, IoLevel::GlobalFs));
        assert!(!report.has_usage_rows(OpType::Read, IoLevel::GlobalFs));
    }

    #[test]
    fn empty_notes_are_omitted_from_serialized_reports() {
        let report = ior_read_eval(FaultScenario::Healthy);
        assert!(report.notes.is_empty());
        let json = serde_json::to_string(&report).unwrap();
        assert!(
            !json.contains("\"notes\""),
            "healthy reports serialize without a notes key (checkpoint byte stability)"
        );
        // Round trip (also the path for pre-notes checkpoint payloads).
        let back: EvalReport = serde_json::from_str(&json).unwrap();
        assert!(back.notes.is_empty());
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn nonempty_notes_round_trip() {
        let mut report = ior_read_eval(FaultScenario::Healthy);
        report.notes = vec![EvalNote::ZeroCharacterizedRate {
            op: OpType::Write,
            block: MIB,
            level: IoLevel::GlobalFs,
        }];
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"notes\""), "{json}");
        let back: EvalReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.notes, report.notes);
    }

    #[test]
    fn end_to_end_btio_eval_on_test_cluster() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let tables = characterize_system(&spec, &config, &CharacterizeOptions::quick()).unwrap();
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Full)
            .with_dumps(4)
            .gflops(50.0);
        let report = evaluate(
            &spec,
            &config,
            bt.scenario(),
            &tables,
            &EvalOptions::default(),
        )
        .expect("healthy evaluation succeeds");
        assert!(report.exec_time > Time::ZERO);
        assert!(report.io_time > Time::ZERO);
        assert!(report.io_time <= report.exec_time);
        assert!(report.write_rate.bytes_per_sec() > 0);
        assert!(!report.usage.is_empty());
        let s = report.usage_summary(OpType::Write, IoLevel::Library);
        assert!(s.is_some());
        assert!(s.unwrap() > 0.0);
        assert!(report.io_fraction() > 0.0 && report.io_fraction() <= 1.0);
    }

    #[test]
    fn full_subtype_beats_simple_on_io_time() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let tables = fake_tables(100); // usage table irrelevant here
        let run = |subtype| {
            let bt = BtIo::new(BtClass::S, 4, subtype).with_dumps(4).gflops(50.0);
            evaluate(
                &spec,
                &config,
                bt.scenario(),
                &tables,
                &EvalOptions::default(),
            )
            .expect("evaluation succeeds")
        };
        let full = run(BtSubtype::Full);
        let simple = run(BtSubtype::Simple);
        assert!(
            simple.io_time > full.io_time,
            "simple {:?} must exceed full {:?} (paper's headline result)",
            simple.io_time,
            full.io_time
        );
        assert!(simple.exec_time > full.exec_time);
    }

    #[test]
    fn marker_usage_lookup() {
        let tables = fake_tables(100);
        let mut profile = fake_profile(50);
        profile.per_marker = vec![crate::trace::MarkerRates {
            marker: 1,
            op: OpType::Write,
            rate: Bandwidth::from_mib_per_sec(25),
            bytes: 10 * MIB,
            ops: 10,
        }];
        let rows = marker_usage_table(&profile, &tables);
        assert_eq!(rows.len(), 3);
        assert!((rows[0].used_pct.unwrap() - 25.0).abs() < 1e-9);
        assert_eq!(rows[0].block, MIB);
    }

    #[test]
    fn usage_handles_missing_tables_gracefully() {
        let mut tables = fake_tables(100);
        tables.tables.remove(&IoLevel::LocalFs);
        let rows = usage_table(&fake_profile(50), &tables);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn access_type_is_exported() {
        // Silence the unused-import lint meaningfully: levels map to types.
        assert_eq!(IoLevel::LocalFs.access_type(), AccessType::Local);
    }

    #[test]
    fn fault_scenarios_compile_to_schedules() {
        assert!(FaultScenario::Healthy.schedule().is_empty());
        assert_eq!(FaultScenario::default(), FaultScenario::Healthy);
        let d = FaultScenario::Degraded {
            disk: 2,
            at: Time::from_secs(1),
        };
        assert_eq!(d.label(), "degraded");
        assert_eq!(d.schedule().events().len(), 1);
        let r = FaultScenario::Rebuilding {
            disk: 0,
            fail_at: Time::from_secs(1),
            replace_at: Time::from_secs(3),
        };
        assert_eq!(r.label(), "rebuilding");
        let events = r.schedule().events().to_vec();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].fault,
            simcore::Fault::DiskFail { disk: 0 }
        ));
        assert!(matches!(
            events[1].fault,
            simcore::Fault::DiskReplace { disk: 0 }
        ));
        let c = FaultScenario::Custom {
            label: "stall 2s".to_string(),
            schedule: FaultSchedule::none(),
        };
        assert_eq!(c.label(), "stall 2s");
        let pd = FaultScenario::PfsDegraded {
            server: 1,
            at: Time::from_secs(1),
        };
        assert_eq!(pd.label(), "pfs-degraded");
        assert!(matches!(
            pd.schedule().events()[0].fault,
            simcore::Fault::PfsServerFail { server: 1 }
        ));
        let pr = FaultScenario::PfsRecovered {
            server: 1,
            fail_at: Time::from_secs(1),
            recover_at: Time::from_secs(3),
        };
        assert_eq!(pr.label(), "pfs-recovered");
        let events = pr.schedule().events().to_vec();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[1].fault,
            simcore::Fault::PfsServerRecover { server: 1 }
        ));
    }

    fn ior_read_eval(faults: FaultScenario) -> EvalReport {
        use workloads::{Ior, IorOp};
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper()).build();
        let ior = Ior::new(4, fs::FileId(40), 32 * MIB, IorOp::Read);
        let opts = EvalOptions {
            faults,
            ..EvalOptions::default()
        };
        evaluate(&spec, &config, ior.scenario(), &fake_tables(100), &opts)
            .expect("evaluation succeeds")
    }

    fn pfs_ior_eval(faults: FaultScenario) -> EvalReport {
        use cluster::Mount;
        use workloads::{Ior, IorOp};
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .pfs(2)
            .pfs_replicas(2)
            .build();
        let ior = Ior::new(4, fs::FileId(43), 32 * MIB, IorOp::Write).on(Mount::Pfs);
        let opts = EvalOptions {
            faults,
            ..EvalOptions::default()
        };
        evaluate(&spec, &config, ior.scenario(), &fake_tables(100), &opts)
            .expect("evaluation succeeds")
    }

    #[test]
    fn pfs_degraded_eval_fails_over_without_losing_bytes() {
        let healthy = pfs_ior_eval(FaultScenario::Healthy);
        assert_eq!(healthy.io_errors, 0);
        assert_eq!(healthy.client_retries, 0);
        assert_eq!(healthy.pfs_failovers, 0);
        let degraded = pfs_ior_eval(FaultScenario::PfsDegraded {
            server: 1,
            at: Time::from_millis(1),
        });
        assert_eq!(degraded.scenario, "pfs-degraded");
        assert_eq!(degraded.io_errors, 0, "replicas absorb the outage");
        assert!(
            degraded.client_retries > 0,
            "detection burns a retry budget"
        );
        assert_eq!(
            degraded.profile.bytes_written, healthy.profile.bytes_written,
            "every workload byte lands despite the dead server"
        );
    }

    #[test]
    fn pfs_recovered_eval_reports_resynced_bytes() {
        let report = pfs_ior_eval(FaultScenario::PfsRecovered {
            server: 1,
            fail_at: Time::from_millis(1),
            recover_at: Time::from_secs(3600),
        });
        assert_eq!(report.scenario, "pfs-recovered");
        assert_eq!(report.io_errors, 0);
        assert!(
            report.pfs_resync_bytes > 0,
            "the recovered server must replay missed writes"
        );
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"pfs_resync_bytes\""), "{json}");
        let back: EvalReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.pfs_resync_bytes, report.pfs_resync_bytes);
    }

    #[test]
    fn pfs_fault_on_nonpfs_config_is_a_typed_eval_error() {
        use workloads::{Ior, IorOp};
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper()).build();
        let ior = Ior::new(2, fs::FileId(44), MIB, IorOp::Write);
        let opts = EvalOptions {
            faults: FaultScenario::PfsDegraded {
                server: 0,
                at: Time::ZERO,
            },
            ..EvalOptions::default()
        };
        let err = evaluate(&spec, &config, ior.scenario(), &fake_tables(100), &opts)
            .expect_err("PFS fault without a PFS deployment must fail");
        assert!(
            matches!(
                err,
                EvalError::Config(ConfigError::FaultPfsServerOutOfRange { .. })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn watchdog_abort_surfaces_as_typed_eval_error() {
        use workloads::{Ior, IorOp};
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let ior = Ior::new(2, fs::FileId(41), 8 * MIB, IorOp::Write);
        let opts = EvalOptions {
            watchdog: Some(WatchdogSpec::sim_deadline(Time(1))),
            ..EvalOptions::default()
        };
        let err = evaluate(&spec, &config, ior.scenario(), &fake_tables(100), &opts)
            .expect_err("deadline must trip");
        match err {
            EvalError::Aborted { app, abort } => {
                assert!(!app.is_empty());
                assert!(matches!(abort, Abort::SimDeadline { .. }));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn invalid_config_is_a_typed_eval_error() {
        use workloads::{Ior, IorOp};
        let spec = presets::test_cluster();
        let bad = IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 1,
            stripe: 1,
        })
        .build();
        let ior = Ior::new(2, fs::FileId(42), MIB, IorOp::Write);
        let err = evaluate(
            &spec,
            &bad,
            ior.scenario(),
            &fake_tables(100),
            &EvalOptions::default(),
        )
        .expect_err("invalid config must fail");
        assert!(matches!(err, EvalError::Config(_)), "{err:?}");
    }

    #[test]
    fn degraded_eval_retains_less_read_throughput() {
        let healthy = ior_read_eval(FaultScenario::Healthy);
        let degraded = ior_read_eval(FaultScenario::Degraded {
            disk: 1,
            at: Time::ZERO,
        });
        assert_eq!(healthy.scenario, "healthy");
        assert_eq!(degraded.scenario, "degraded");
        assert_eq!(healthy.io_errors, 0);
        assert_eq!(
            degraded.io_errors, 0,
            "degraded reads reconstruct, not fail"
        );
        assert!(healthy.rebuild.is_none());
        assert!(
            degraded.read_rate.bytes_per_sec() < healthy.read_rate.bytes_per_sec(),
            "degraded {} must trail healthy {}",
            degraded.read_rate,
            healthy.read_rate
        );
    }

    #[test]
    fn rebuilding_eval_reports_a_finite_rebuild_window() {
        let report = ior_read_eval(FaultScenario::Rebuilding {
            disk: 1,
            fail_at: Time::from_millis(1),
            replace_at: Time::from_millis(50),
        });
        let rebuild = report.rebuild.expect("replacement must start a rebuild");
        assert!(rebuild.finished.is_some(), "rebuild must complete");
        assert_eq!(rebuild.bytes_done, rebuild.bytes_total);
        assert!(rebuild.bytes_total > 0);
        assert!(rebuild.duration(report.exec_time) > Time::ZERO);
    }

    #[test]
    fn same_seed_evaluations_are_identical() {
        let scenario = FaultScenario::Degraded {
            disk: 0,
            at: Time::from_millis(10),
        };
        let a = ior_read_eval(scenario.clone());
        let b = ior_read_eval(scenario);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "fault-injected runs must stay deterministic"
        );
    }
}
