//! A thousand-node scale-out cluster for rank-collapsed campaigns.
//!
//! The paper's testbeds stop at 32 nodes; the scale testbed models the
//! regime real IO500 submissions run in — a thousand clients on a
//! rack/leaf-spine fabric against a parallel file system that provisions
//! each client a bandwidth slice. Its cost model is deliberately
//! *rank-invariant* (see [`mpisim::Machine::rank_invariant`]):
//!
//! * storage transport is priced by the fabric's pure
//!   [`netsim::HierFabric::uncontended_delivery`] closed form over the
//!   host → PFS path, which every host pays identically (the PFS attaches
//!   at the spine, so the path never depends on the rack);
//! * each host owns a *private* [`FifoResource`] modelling its PFS slice,
//!   so self-queueing within one rank's op sequence is exact while no
//!   cross-rank state exists;
//! * metadata verbs cost a fixed service plus a zero-byte round trip.
//!
//! MPI traffic still rides the stateful [`netsim::HierFabric`] — but any
//! program using point-to-point messaging is unsigned and executes
//! granularly anyway. Degrading the storage system voids the symmetry
//! certificate: a PFS in recovery interferes with clients in ways that
//! are not provably uniform, so the machine answers
//! `rank_invariant() == false` and the runtime falls back to full
//! per-rank execution.

use fs::FileId;
use mpisim::Machine;
use netsim::{HierFabric, HierParams, HierTopology, NodeId};
use simcore::{Bandwidth, FifoResource, Time};

/// Hardware description of the scale testbed.
#[derive(Clone, Copy, Debug)]
pub struct ScaleSpec {
    /// Racks of compute hosts.
    pub racks: usize,
    /// Hosts per rack (one rank per host).
    pub hosts_per_rack: usize,
    /// Interconnect parameters.
    pub net: HierParams,
    /// Provisioned per-client PFS bandwidth slice.
    pub client_bw: Bandwidth,
    /// Fixed per-data-op server cost.
    pub io_fixed: Time,
    /// Metadata service cost (open/close/sync verbs).
    pub meta_cost: Time,
}

impl ScaleSpec {
    /// Total host count.
    pub fn nodes(&self) -> usize {
        self.racks * self.hosts_per_rack
    }

    /// One-rank-per-host placement for `ranks` ranks.
    pub fn placement(&self, ranks: usize) -> Vec<NodeId> {
        assert!(
            ranks <= self.nodes(),
            "scale testbed has {} hosts, {ranks} ranks requested",
            self.nodes()
        );
        (0..ranks).collect()
    }

    /// Builds the machine.
    pub fn machine(&self) -> ScaleMachine {
        ScaleMachine::new(*self)
    }
}

/// The 1024-host scale testbed: 32 racks × 32 hosts on a Gigabit
/// leaf-spine fabric, against a PFS provisioning ~160 MiB/s per client.
pub fn scale_1024() -> ScaleSpec {
    ScaleSpec {
        racks: 32,
        hosts_per_rack: 32,
        net: HierParams::leaf_spine_gigabit(),
        client_bw: Bandwidth::from_mib_per_sec(160),
        io_fixed: Time::from_micros(120),
        meta_cost: Time::from_micros(350),
    }
}

/// The [`Machine`] implementation of the scale testbed.
pub struct ScaleMachine {
    spec: ScaleSpec,
    fabric: HierFabric,
    /// Per-host PFS bandwidth slice (private — the only stateful storage
    /// resource, so costs stay rank-invariant).
    slices: Vec<FifoResource>,
    /// Zero-byte host ↔ PFS round trip, precomputed.
    meta_rt: Time,
    /// `Some(slowdown)` once the storage system is degraded.
    degraded: Option<u64>,
}

impl ScaleMachine {
    /// A healthy machine for `spec`.
    pub fn new(spec: ScaleSpec) -> ScaleMachine {
        let topo = HierTopology {
            racks: spec.racks,
            hosts_per_rack: spec.hosts_per_rack,
        };
        let fabric = HierFabric::new(topo, spec.net);
        let n = topo.nodes();
        let meta_rt = Self::pfs_path_time(&fabric, 0) * 2;
        ScaleMachine {
            spec,
            fabric,
            slices: vec![FifoResource::new(); n],
            meta_rt,
            degraded: None,
        }
    }

    /// Marks the PFS as degraded: every storage service takes `slowdown`×
    /// longer *and* the machine renounces its rank-invariance certificate
    /// (recovery interference is not provably symmetric), forcing the
    /// runtime back to full per-rank execution.
    pub fn with_degraded_storage(mut self, slowdown: u64) -> ScaleMachine {
        assert!(slowdown >= 1, "slowdown is a multiplier");
        self.degraded = Some(slowdown);
        self
    }

    /// The spec.
    pub fn spec(&self) -> &ScaleSpec {
        &self.spec
    }

    /// Transport time for `bytes` between a host and the PFS core. The
    /// PFS attaches at the spine, so every host pays the cross-rack path;
    /// with a single rack the leaf is the spine and the same-rack path
    /// applies. Node-independent by construction.
    fn pfs_path_time(fabric: &HierFabric, bytes: u64) -> Time {
        let topo = fabric.topology();
        let partner = if topo.racks > 1 {
            topo.hosts_per_rack
        } else {
            0
        };
        fabric.uncontended_delivery(0, partner, bytes)
    }

    fn slice_service(&self, len: u64) -> Time {
        let base = self.spec.io_fixed + self.spec.client_bw.time_for(len);
        base * self.degraded.unwrap_or(1)
    }

    fn data_op(&mut self, now: Time, node: NodeId, len: u64) -> Time {
        let arrival = now + Self::pfs_path_time(&self.fabric, len);
        let service = self.slice_service(len);
        self.slices[node].submit(arrival, service).end
    }

    fn meta_op(&mut self, now: Time, cost: Time) -> Time {
        now + cost * self.degraded.unwrap_or(1) + self.meta_rt
    }
}

impl Machine for ScaleMachine {
    fn nodes(&self) -> usize {
        self.slices.len()
    }

    fn mpi_send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        self.fabric.send(now, from, to, bytes)
    }

    fn io_open(&mut self, now: Time, _node: NodeId, _file: FileId, _create: bool) -> Time {
        self.meta_op(now, self.spec.meta_cost)
    }

    fn io_close(&mut self, now: Time, _node: NodeId, _file: FileId) -> Time {
        self.meta_op(now, self.spec.meta_cost)
    }

    fn io_read(&mut self, now: Time, node: NodeId, _file: FileId, _offset: u64, len: u64) -> Time {
        self.data_op(now, node, len)
    }

    fn io_write(&mut self, now: Time, node: NodeId, _file: FileId, _offset: u64, len: u64) -> Time {
        self.data_op(now, node, len)
    }

    fn io_sync(&mut self, now: Time, _node: NodeId, _file: FileId) -> Time {
        self.meta_op(now, self.spec.meta_cost * 2)
    }

    fn rank_invariant(&self) -> bool {
        self.degraded.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::{
        collapsed_run_count, GenStream, MpiOp, NullSink, OpStream, RunStats, Runtime, SignedStream,
        StreamSignature,
    };
    use simcore::MIB;

    fn small_spec() -> ScaleSpec {
        ScaleSpec {
            racks: 4,
            hosts_per_rack: 8,
            ..scale_1024()
        }
    }

    /// A symmetric IOR-like write program for `ranks` ranks.
    fn signed_writes(ranks: usize, per_rank: usize, len: u64) -> Vec<Box<dyn OpStream>> {
        (0..ranks)
            .map(|r| {
                let base = r as u64 * per_rank as u64 * len;
                let body = GenStream::new(per_rank, move |i| MpiOp::WriteAt {
                    file: FileId(3),
                    offset: base + i as u64 * len,
                    len,
                });
                let sig =
                    StreamSignature::from_shape(&format!("test|{per_rank}|{len}"), per_rank as u64);
                Box::new(SignedStream::new(Box::new(body), sig)) as Box<dyn OpStream>
            })
            .collect()
    }

    fn run(machine: &mut ScaleMachine, ranks: usize, collapse: bool) -> RunStats {
        let placement = machine.spec().placement(ranks);
        let mut sink = NullSink;
        Runtime::default().with_collapse(collapse).run(
            machine,
            &placement,
            signed_writes(ranks, 8, MIB),
            &mut sink,
        )
    }

    #[test]
    fn collapsed_and_full_execution_agree_on_the_scale_machine() {
        let spec = small_spec();
        let before = collapsed_run_count();
        let full = run(&mut spec.machine(), 32, false);
        assert_eq!(collapsed_run_count(), before);
        let collapsed = run(&mut spec.machine(), 32, true);
        assert!(
            collapsed_run_count() > before,
            "scale machine must collapse"
        );
        assert_eq!(full, collapsed);
    }

    #[test]
    fn storage_costs_are_node_independent() {
        let spec = small_spec();
        let mut m = spec.machine();
        let t0 = Time::from_millis(3);
        let same_rack_host = m.io_write(t0, 1, FileId(9), 0, MIB);
        let other_rack_host = m.io_write(t0, 9, FileId(9), 123 * MIB, MIB);
        assert_eq!(same_rack_host, other_rack_host);
    }

    #[test]
    fn degraded_storage_disables_collapse_and_slows_io() {
        let spec = small_spec();
        let before = collapsed_run_count();
        let healthy = run(&mut spec.machine(), 16, true);
        assert!(collapsed_run_count() > before);

        let at = collapsed_run_count();
        let mut degraded_machine = spec.machine().with_degraded_storage(4);
        assert!(!degraded_machine.rank_invariant());
        let degraded = run(&mut degraded_machine, 16, true);
        assert_eq!(
            collapsed_run_count(),
            at,
            "degraded machine must execute granularly"
        );
        assert!(
            degraded.wall_time > healthy.wall_time * 2,
            "degraded {:?} vs healthy {:?}",
            degraded.wall_time,
            healthy.wall_time
        );
    }

    #[test]
    fn back_to_back_ops_queue_on_the_client_slice() {
        let spec = small_spec();
        let mut m = spec.machine();
        let first = m.io_write(Time::ZERO, 0, FileId(1), 0, 8 * MIB);
        // Issued immediately after: must queue behind the first on this
        // host's slice, not start fresh.
        let second = m.io_write(Time::from_micros(1), 0, FileId(1), 8 * MIB, 8 * MIB);
        assert!(second > first + m.slice_service(8 * MIB) - Time::from_millis(1));
    }

    #[test]
    fn the_1024_testbed_places_one_rank_per_host() {
        let spec = scale_1024();
        assert_eq!(spec.nodes(), 1024);
        let placement = spec.placement(1024);
        assert_eq!(placement.len(), 1024);
        let mut sorted = placement.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 1024, "placement must not share hosts");
    }
}
