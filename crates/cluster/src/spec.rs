//! Hardware description of a cluster.

use netsim::FabricParams;
use serde::{Deserialize, Serialize};
use storage::DiskParams;

/// Static hardware description of a cluster: `compute_nodes` compute nodes
/// plus one I/O node (the NFS server / front-end), all on the same
/// fabric(s). Node ids `0..compute_nodes` are compute nodes; id
/// `compute_nodes` is the I/O node.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Number of compute nodes.
    pub compute_nodes: usize,
    /// RAM per compute node, bytes.
    pub node_ram: u64,
    /// The local disk of each compute node.
    pub node_disk: DiskParams,
    /// RAM of the I/O node.
    pub io_node_ram: u64,
    /// The disk model the I/O node's volumes are built from.
    pub server_disk: DiskParams,
    /// Interconnect link/switch parameters (each configured network is one
    /// such fabric).
    pub fabric: FabricParams,
    /// Deterministic seed stream for the cluster's devices.
    pub seed: u64,
}

impl ClusterSpec {
    /// Total node count (compute nodes + the I/O node).
    pub fn total_nodes(&self) -> usize {
        self.compute_nodes + 1
    }

    /// The node id of the I/O node.
    pub fn io_node(&self) -> usize {
        self.compute_nodes
    }

    /// A round-robin placement of `ranks` MPI ranks over the compute nodes.
    pub fn placement(&self, ranks: usize) -> Vec<usize> {
        (0..ranks).map(|r| r % self.compute_nodes).collect()
    }

    /// A blocked placement (ranks fill a node before moving on), given
    /// `per_node` slots per node.
    pub fn placement_blocked(&self, ranks: usize, per_node: usize) -> Vec<usize> {
        assert!(per_node > 0);
        (0..ranks)
            .map(|r| (r / per_node).min(self.compute_nodes - 1))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;

    #[test]
    fn node_numbering() {
        let s = presets::aohyper();
        assert_eq!(s.compute_nodes, 8);
        assert_eq!(s.total_nodes(), 9);
        assert_eq!(s.io_node(), 8);
    }

    #[test]
    fn round_robin_placement() {
        let s = presets::aohyper();
        let p = s.placement(16);
        assert_eq!(p.len(), 16);
        assert_eq!(p[0], 0);
        assert_eq!(p[8], 0);
        assert_eq!(p[15], 7);
        assert!(p.iter().all(|&n| n < 8));
    }

    #[test]
    fn blocked_placement() {
        let s = presets::aohyper();
        let p = s.placement_blocked(16, 2);
        assert_eq!(p[0], 0);
        assert_eq!(p[1], 0);
        assert_eq!(p[2], 1);
        assert_eq!(p[15], 7);
    }
}
