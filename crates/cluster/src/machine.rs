//! The concrete [`Machine`] implementation for a configured cluster.

use crate::config::{ConfigError, DeviceLayout, IoConfig, NetworkLayout};
use crate::spec::ClusterSpec;
use fs::{
    FileId, LocalFs, LocalFsParams, MetaOps, MetaVerb, NfsClient, NfsClientParams, NfsError,
    NfsRetryParams, NfsServer, NfsServerParams, PfsError, PfsParams, PfsSystem,
};
use mpisim::Machine;
use netsim::{Network, NodeId, TrafficClass};
use simcore::{Fault, FaultEvent, FaultSchedule, NetClass, Time};
use std::collections::HashMap;
use storage::{
    CachedVolume, Disk, Jbod, Raid0, Raid1, Raid5, RebuildReport, Volume, VolumeError,
    WriteCacheParams,
};

/// Where a file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mount {
    /// The NFS export of the I/O node (shared access).
    Nfs,
    /// The local filesystem of the node performing the operation
    /// (independent access; a rank only sees its own node's disk).
    Local,
    /// The NFS export accessed the way ROMIO drives MPI-IO on NFS:
    /// attribute caching off (`noac`), synchronous uncached data transfer.
    /// Application workloads (BT-IO, MADbench2, IOR) use this.
    NfsDirect,
    /// The parallel filesystem (requires `IoConfig::pfs_servers > 0`).
    Pfs,
    /// The I/O node's filesystem accessed locally on the I/O node —
    /// used to characterize the device level below NFS.
    ServerLocal,
}

use serde::{Deserialize, Serialize};

/// Builds the I/O node's volume for a configuration.
fn build_server_volume(spec: &ClusterSpec, config: &IoConfig) -> Box<dyn Volume> {
    let disk = |i: u64| -> Disk { Disk::new(spec.server_disk.clone(), spec.seed ^ (0x5151 + i)) };
    let raw: Box<dyn Volume> = match config.devices {
        DeviceLayout::Jbod => Box::new(Jbod::new(disk(0))),
        DeviceLayout::Raid1 => Box::new(Raid1::new(disk(0), disk(1))),
        DeviceLayout::Raid5 { disks, stripe } => Box::new(Raid5::new(
            (0..disks as u64).map(disk).collect(),
            stripe,
            config.raid5_coalesce,
        )),
        DeviceLayout::Raid0 { disks, stripe } => {
            Box::new(Raid0::new((0..disks as u64).map(disk).collect(), stripe))
        }
    };
    if config.write_cache_mib > 0 {
        Box::new(CachedVolume::new(
            WriteCacheParams::controller(config.write_cache_mib),
            BoxedVolume(raw),
        ))
    } else {
        raw
    }
}

/// Maps the simcore fault vocabulary onto the network simulator's classes.
fn traffic_class(class: NetClass) -> TrafficClass {
    match class {
        NetClass::Mpi => TrafficClass::Mpi,
        NetClass::Storage => TrafficClass::Storage,
    }
}

/// Adapter: `CachedVolume` is generic over `V: Volume`; this lets it wrap a
/// boxed volume.
struct BoxedVolume(Box<dyn Volume>);

impl Volume for BoxedVolume {
    fn submit(&mut self, now: Time, req: storage::BlockReq) -> storage::IoGrant {
        self.0.submit(now, req)
    }
    fn flush(&mut self, now: Time) -> Time {
        self.0.flush(now)
    }
    fn capacity(&self) -> u64 {
        self.0.capacity()
    }
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
    fn meter(&self) -> &storage::VolumeMeter {
        self.0.meter()
    }
    fn submit_run(&mut self, now: Time, req: storage::BlockReq, chunk: u64) -> storage::IoGrant {
        self.0.submit_run(now, req, chunk)
    }
    fn try_bulk_run(
        &mut self,
        now: Time,
        req: storage::BlockReq,
        chunk: u64,
    ) -> Option<storage::IoGrant> {
        self.0.try_bulk_run(now, req, chunk)
    }
    fn set_fault_horizon(&mut self, horizon: Option<Time>) {
        self.0.set_fault_horizon(horizon)
    }
    fn set_bulk_enabled(&mut self, on: bool) {
        self.0.set_bulk_enabled(on)
    }
    fn bulk_run_stats(&self) -> (u64, u64) {
        self.0.bulk_run_stats()
    }
    fn fail_disk(&mut self, disk: usize) -> Result<(), VolumeError> {
        self.0.fail_disk(disk)
    }
    fn replace_disk(&mut self, now: Time, disk: usize) -> Result<(), VolumeError> {
        self.0.replace_disk(now, disk)
    }
    fn set_disk_slowdown(&mut self, disk: usize, factor: f64) -> Result<(), VolumeError> {
        self.0.set_disk_slowdown(disk, factor)
    }
    fn pump(&mut self, now: Time) {
        self.0.pump(now)
    }
    fn rebuild_report(&self) -> Option<RebuildReport> {
        self.0.rebuild_report()
    }
    fn finish_rebuild(&mut self, now: Time) -> Time {
        self.0.finish_rebuild(now)
    }
}

/// A configured cluster: compute nodes with local disks and NFS mounts, an
/// I/O node exporting the configured volume, and the configured network(s).
pub struct ClusterMachine {
    spec: ClusterSpec,
    config: IoConfig,
    net: Network,
    server: NfsServer,
    local: Vec<LocalFs>,
    clients: Vec<NfsClient>,
    pfs: Option<PfsSystem>,
    mounts: HashMap<FileId, Mount>,
    default_mount: Mount,
    /// Injected fault schedule; applied lazily as simulated time advances.
    faults: FaultSchedule,
    fault_cursor: usize,
    /// Human-readable trace of applied faults and surfaced I/O errors.
    fault_log: Vec<(Time, String)>,
    io_errors: u64,
}

impl ClusterMachine {
    /// Builds the machine for `spec` under `config`, validating first.
    pub fn try_new(spec: &ClusterSpec, config: &IoConfig) -> Result<ClusterMachine, ConfigError> {
        config.validate(spec)?;
        Ok(ClusterMachine::build(spec, config))
    }

    fn build(spec: &ClusterSpec, config: &IoConfig) -> ClusterMachine {
        let nodes = spec.total_nodes();
        let net = match config.network {
            NetworkLayout::Shared => Network::shared(nodes, spec.fabric),
            NetworkLayout::Split => Network::split(nodes, spec.fabric),
        };
        let server_fs = LocalFs::new(
            LocalFsParams::ext4(spec.io_node_ram),
            build_server_volume(spec, config),
        );
        let server = NfsServer::new(spec.io_node(), NfsServerParams::default(), server_fs);
        let local = (0..spec.compute_nodes)
            .map(|i| {
                let disk = Disk::new(spec.node_disk.clone(), spec.seed ^ (0x10c0 + i as u64));
                LocalFs::new(
                    LocalFsParams::ext4(spec.node_ram),
                    Box::new(Jbod::new(disk)),
                )
            })
            .collect();
        let clients = (0..spec.compute_nodes)
            .map(|i| NfsClient::new(i, NfsClientParams::linux_default(spec.node_ram)))
            .collect();
        let pfs = if config.pfs_servers > 0 {
            assert!(
                config.pfs_servers <= spec.compute_nodes,
                "more PFS servers than compute nodes"
            );
            // Each I/O-server node gets a dedicated data disk (PVFS-style
            // deployment over a subset of the compute nodes).
            let backends = (0..config.pfs_servers)
                .map(|i| {
                    let disk = Disk::new(spec.node_disk.clone(), spec.seed ^ (0x9F50 + i as u64));
                    LocalFs::new(
                        LocalFsParams::ext4(spec.node_ram),
                        Box::new(Jbod::new(disk)),
                    )
                })
                .collect();
            Some(PfsSystem::new(
                PfsParams {
                    stripe: config.pfs_stripe,
                    replicas: config.pfs_replicas.max(1),
                    ..PfsParams::default()
                },
                (0..config.pfs_servers).collect(),
                backends,
            ))
        } else {
            None
        };
        ClusterMachine {
            spec: spec.clone(),
            config: config.clone(),
            net,
            server,
            local,
            clients,
            pfs,
            mounts: HashMap::new(),
            default_mount: Mount::Nfs,
            faults: FaultSchedule::none(),
            fault_cursor: 0,
            fault_log: Vec::new(),
            io_errors: 0,
        }
    }

    /// Checks a fault schedule against this machine's configuration:
    /// disk faults must target a member the device layout actually has,
    /// and PFS server faults must target a deployed server. (The NFS
    /// export always exists, so `ServerStall` is always applicable.)
    /// Faults a layout supports structurally but a volume rejects at
    /// apply time — e.g. `DiskFail` on the JBOD's only member — stay
    /// log-and-continue, preserving exploratory campaigns.
    fn validate_faults(&self, schedule: &FaultSchedule) -> Result<(), ConfigError> {
        let members = match self.config.devices {
            DeviceLayout::Jbod => 1,
            DeviceLayout::Raid1 => 2,
            DeviceLayout::Raid5 { disks, .. } | DeviceLayout::Raid0 { disks, .. } => disks,
        };
        for e in schedule.events() {
            match e.fault {
                Fault::DiskFail { disk }
                | Fault::DiskReplace { disk }
                | Fault::DiskSlow { disk, .. }
                | Fault::DiskRecover { disk } => {
                    if disk >= members {
                        return Err(ConfigError::FaultDiskOutOfRange { disk, members });
                    }
                }
                Fault::PfsServerFail { server }
                | Fault::PfsServerRecover { server }
                | Fault::PfsServerSlow { server, .. } => {
                    if server >= self.config.pfs_servers {
                        return Err(ConfigError::FaultPfsServerOutOfRange {
                            server,
                            servers: self.config.pfs_servers,
                        });
                    }
                }
                Fault::ServerStall { .. } | Fault::NetDegrade { .. } | Fault::NetHeal { .. } => {}
            }
        }
        Ok(())
    }

    /// Installs a fault schedule, validating it against the configuration
    /// first (see [`Self::validate_faults`]). Events are applied lazily:
    /// each simulated operation first applies every event due by its start
    /// instant, so a schedule installed before the run plays out
    /// deterministically as the workload advances the clock.
    pub fn install_faults(&mut self, schedule: FaultSchedule) -> Result<(), ConfigError> {
        self.validate_faults(&schedule)?;
        self.faults = schedule;
        self.fault_cursor = 0;
        // Tell the server volume when the next fault is due: any transfer
        // whose completion bound crosses that horizon must stay on the
        // event-granular path so the fault lands mid-transfer exactly as it
        // would have pre-optimization.
        let horizon = self.faults.next_at(0);
        self.server.fs_mut().volume_mut().set_fault_horizon(horizon);
        Ok(())
    }

    /// The applied-fault / surfaced-error trace: `(instant, description)`.
    pub fn fault_log(&self) -> &[(Time, String)] {
        &self.fault_log
    }

    /// I/O operations that surfaced an error (NFS major timeouts).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    /// Total RPC retransmissions across every NFS mount and the PFS
    /// clients' dead-server detection.
    pub fn client_retries(&self) -> u64 {
        self.clients.iter().map(|c| c.retries()).sum::<u64>()
            + self.pfs.as_ref().map_or(0, |p| p.retries())
    }

    /// PFS spans served by a surviving replica after a server failure.
    pub fn pfs_failovers(&self) -> u64 {
        self.pfs.as_ref().map_or(0, |p| p.failovers())
    }

    /// Bytes replayed onto recovered PFS servers.
    pub fn pfs_resync_bytes(&self) -> u64 {
        self.pfs.as_ref().map_or(0, |p| p.resync_bytes())
    }

    /// Remounts every NFS client with a different retry discipline (e.g.
    /// an impatient soft mount for fault drills).
    pub fn set_client_retry(&mut self, retry: NfsRetryParams) {
        for c in &mut self.clients {
            c.set_retry(retry);
        }
    }

    /// Rebuild progress of the I/O node's volume, if one ran.
    pub fn rebuild_report(&self) -> Option<RebuildReport> {
        self.server.fs().volume().rebuild_report()
    }

    /// Runs any in-progress rebuild on the I/O node's volume to completion
    /// in the background (no foreground competition); returns the instant
    /// the array is whole again.
    pub fn finish_rebuild(&mut self, now: Time) -> Time {
        self.server.fs_mut().volume_mut().finish_rebuild(now)
    }

    /// Applies every scheduled fault due by `now`. Events act at the next
    /// operation boundary at or after their nominal instant, which keeps
    /// all device timelines submitted in nondecreasing order. Public so an
    /// evaluation can settle faults that fall after the last I/O op.
    pub fn apply_faults_up_to(&mut self, now: Time) {
        if self.faults.is_empty() {
            return;
        }
        let mut cursor = self.fault_cursor;
        let due: Vec<FaultEvent> = self.faults.due(&mut cursor, now).to_vec();
        self.fault_cursor = cursor;
        if due.is_empty() {
            return;
        }
        for e in due {
            self.apply_fault(now, &e);
        }
        // Advance the bulk fast-path horizon to the next pending fault.
        let horizon = self.faults.next_at(self.fault_cursor);
        self.server.fs_mut().volume_mut().set_fault_horizon(horizon);
    }

    /// `(fast path runs, granular fallbacks)` of the I/O node's volume.
    pub fn server_bulk_stats(&self) -> (u64, u64) {
        self.server.fs().volume().bulk_run_stats()
    }

    fn log_volume_result(&mut self, now: Time, what: String, r: Result<(), VolumeError>) {
        match r {
            Ok(()) => self.fault_log.push((now, what)),
            Err(e) => self.fault_log.push((now, format!("{what}: ignored ({e})"))),
        }
    }

    fn apply_fault(&mut self, now: Time, event: &FaultEvent) {
        simcore::obs::emit(|| simcore::obs::ObsEvent::FaultApplied {
            kind: match event.fault {
                Fault::DiskFail { .. } => "disk_fail",
                Fault::DiskReplace { .. } => "disk_replace",
                Fault::DiskSlow { .. } => "disk_slow",
                Fault::DiskRecover { .. } => "disk_recover",
                Fault::ServerStall { .. } => "nfs_server_stall",
                Fault::NetDegrade { .. } => "net_degrade",
                Fault::NetHeal { .. } => "net_heal",
                Fault::PfsServerFail { .. } => "pfs_server_fail",
                Fault::PfsServerRecover { .. } => "pfs_server_recover",
                Fault::PfsServerSlow { .. } => "pfs_server_slow",
            },
            at: now,
        });
        let seed = self.spec.seed;
        match event.fault {
            Fault::DiskFail { disk } => {
                let r = self.server.fs_mut().volume_mut().fail_disk(disk);
                self.log_volume_result(now, format!("disk {disk} failed"), r);
            }
            Fault::DiskReplace { disk } => {
                let r = self.server.fs_mut().volume_mut().replace_disk(now, disk);
                self.log_volume_result(now, format!("disk {disk} replaced; rebuild started"), r);
            }
            Fault::DiskSlow { disk, factor } => {
                let r = self
                    .server
                    .fs_mut()
                    .volume_mut()
                    .set_disk_slowdown(disk, factor);
                self.log_volume_result(now, format!("disk {disk} slowed {factor}x"), r);
            }
            Fault::DiskRecover { disk } => {
                let r = self
                    .server
                    .fs_mut()
                    .volume_mut()
                    .set_disk_slowdown(disk, 1.0);
                self.log_volume_result(now, format!("disk {disk} recovered"), r);
            }
            Fault::ServerStall { duration } => {
                self.server.stall(now, duration);
                self.fault_log.push((
                    now,
                    format!("nfs server stalled for {:.3}s", duration.as_secs_f64()),
                ));
            }
            Fault::PfsServerFail { server } => {
                let pfs = self
                    .pfs
                    .as_mut()
                    .expect("PFS faults are validated at install time");
                pfs.fail_server(server);
                self.fault_log
                    .push((now, format!("pfs server {server} failed")));
            }
            Fault::PfsServerRecover { server } => {
                let net = &mut self.net;
                let pfs = self
                    .pfs
                    .as_mut()
                    .expect("PFS faults are validated at install time");
                let (done, bytes) = pfs.recover_server(net, now, server);
                self.fault_log.push((
                    now,
                    format!(
                        "pfs server {server} recovered; resynced {bytes} B by {:.3}s",
                        done.as_secs_f64()
                    ),
                ));
            }
            Fault::PfsServerSlow { server, factor } => {
                let pfs = self
                    .pfs
                    .as_mut()
                    .expect("PFS faults are validated at install time");
                pfs.set_server_slow(server, factor);
                self.fault_log
                    .push((now, format!("pfs server {server} slowed {factor}x")));
            }
            Fault::NetDegrade {
                class,
                drop,
                duplicate,
            } => {
                let tc = traffic_class(class);
                self.net.set_degradation(tc, drop, duplicate, seed ^ 0xDE64);
                self.fault_log.push((
                    now,
                    format!("{tc:?} network degraded: drop {drop}, duplicate {duplicate}"),
                ));
            }
            Fault::NetHeal { class } => {
                let tc = traffic_class(class);
                self.net.clear_degradation(tc);
                self.fault_log.push((now, format!("{tc:?} network healed")));
            }
        }
    }

    /// Records a surfaced I/O error and returns the instant the caller's
    /// clock resumes (failed operations cost their timeout budget).
    fn note_error(&mut self, e: NfsError) -> Time {
        self.io_errors += 1;
        self.fault_log.push((e.at(), e.to_string()));
        e.at()
    }

    /// Same, for a degraded-mode PFS failure (every replica holder down).
    fn note_pfs_error(&mut self, e: PfsError) -> Time {
        self.io_errors += 1;
        self.fault_log.push((e.at(), e.to_string()));
        e.at()
    }

    fn pfs_mut(&mut self) -> &mut PfsSystem {
        self.pfs
            .as_mut()
            .expect("Mount::Pfs used but IoConfig::pfs_servers is 0")
    }

    /// The parallel filesystem, when deployed.
    pub fn pfs(&self) -> Option<&PfsSystem> {
        self.pfs.as_ref()
    }

    /// The cluster's hardware spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The active I/O configuration.
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    /// Routes `file` to a mount.
    pub fn mount(&mut self, file: FileId, mount: Mount) {
        self.mounts.insert(file, mount);
    }

    /// Sets the mount used for unregistered files (default: NFS).
    pub fn set_default_mount(&mut self, mount: Mount) {
        self.default_mount = mount;
    }

    fn mount_of(&self, file: FileId) -> Mount {
        self.mounts
            .get(&file)
            .copied()
            .unwrap_or(self.default_mount)
    }

    /// The NFS server (for meters / direct characterization).
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Mutable access to the NFS server.
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// A compute node's local filesystem.
    pub fn local_fs(&self, node: NodeId) -> &LocalFs {
        &self.local[node]
    }

    /// A node's NFS client (for diagnostics).
    pub fn client(&self, node: NodeId) -> &NfsClient {
        &self.clients[node]
    }

    /// The network (for meters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Pre-populates a file with `size` valid bytes on its mount (the
    /// "existing input file" case for read benchmarks).
    pub fn preallocate(&mut self, file: FileId, size: u64) {
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect | Mount::ServerLocal => {
                self.server.fs_mut().preallocate(file, size)
            }
            Mount::Pfs => self.pfs_mut().preallocate(file, size),
            Mount::Local => {
                for fs in &mut self.local {
                    fs.preallocate(file, size);
                }
            }
        }
    }

    /// Flushes and drops every cache in the cluster (between runs); returns
    /// the completion instant.
    pub fn drop_all_caches(&mut self, now: Time) -> Time {
        let mut t = now;
        for i in 0..self.clients.len() {
            let done = match self.clients[i].drop_caches(&mut self.net, &mut self.server, now) {
                Ok(done) => done,
                Err(e) => self.note_error(e),
            };
            t = t.max(done);
        }
        for fs in &mut self.local {
            t = t.max(fs.drop_caches(now));
        }
        t.max(self.server.fs_mut().drop_caches(t))
    }
}

impl Machine for ClusterMachine {
    fn nodes(&self) -> usize {
        self.spec.total_nodes()
    }

    fn mpi_send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        self.apply_faults_up_to(now);
        self.net.send(now, from, to, bytes, TrafficClass::Mpi)
    }

    fn io_open(&mut self, now: Time, node: NodeId, file: FileId, create: bool) -> Time {
        self.apply_faults_up_to(now);
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect => {
                match self.clients[node].open(&mut self.net, &mut self.server, now, file, create) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.open(net, node, now, file, create) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => {
                if create && self.local[node].file_size(file) == 0 {
                    self.local[node].create(now, file)
                } else {
                    self.local[node].open(now, file)
                }
            }
            Mount::ServerLocal => {
                let fs = self.server.fs_mut();
                if create && fs.file_size(file) == 0 {
                    fs.create(now, file)
                } else {
                    fs.open(now, file)
                }
            }
        }
    }

    fn io_close(&mut self, now: Time, node: NodeId, file: FileId) -> Time {
        self.apply_faults_up_to(now);
        match self.mount_of(file) {
            Mount::Nfs => {
                match self.clients[node].close(&mut self.net, &mut self.server, now, file) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::NfsDirect => {
                // ROMIO fsyncs on close; no client cache to flush.
                match self.clients[node].fsync(&mut self.net, &mut self.server, now, file) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.close(net, node, now, file) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => self.local[node].close(now, file),
            Mount::ServerLocal => self.server.fs_mut().close(now, file),
        }
    }

    fn io_read(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time {
        // A zero-length transfer is a well-defined no-op, filtered here so
        // degenerate op programs cannot reach the byte-moving layers —
        // `PfsSystem::{write,read}` assert `len > 0` as an internal
        // invariant (see the panic audit there).
        if len == 0 {
            return now;
        }
        self.apply_faults_up_to(now);
        match self.mount_of(file) {
            Mount::Nfs => {
                match self.clients[node].read(
                    &mut self.net,
                    &mut self.server,
                    now,
                    file,
                    offset,
                    len,
                ) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            // A ROMIO mount pays lock/revalidation round trips, then uses
            // the normal cached read path (NFS clients cache read data
            // even under the MPI-IO discipline).
            Mount::NfsDirect => {
                let t = self.clients[node].lock_roundtrips(&mut self.net, &mut self.server, now);
                match self.clients[node].read(&mut self.net, &mut self.server, t, file, offset, len)
                {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.read(net, node, now, file, offset, len) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => self.local[node].read(now, file, offset, len),
            Mount::ServerLocal => self.server.fs_mut().read(now, file, offset, len),
        }
    }

    fn io_write(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time {
        // Zero-length writes are no-ops, same as `io_read`.
        if len == 0 {
            return now;
        }
        self.apply_faults_up_to(now);
        match self.mount_of(file) {
            Mount::Nfs => {
                match self.clients[node].write(
                    &mut self.net,
                    &mut self.server,
                    now,
                    file,
                    offset,
                    len,
                ) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::NfsDirect => {
                let t = self.clients[node].lock_roundtrips(&mut self.net, &mut self.server, now);
                match self.clients[node].write_direct(
                    &mut self.net,
                    &mut self.server,
                    t,
                    file,
                    offset,
                    len,
                ) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.write(net, node, now, file, offset, len) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => self.local[node].write(now, file, offset, len),
            Mount::ServerLocal => self.server.fs_mut().write(now, file, offset, len),
        }
    }

    fn io_sync(&mut self, now: Time, node: NodeId, file: FileId) -> Time {
        self.apply_faults_up_to(now);
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect => {
                match self.clients[node].fsync(&mut self.net, &mut self.server, now, file) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.sync(net, node, now, file) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => self.local[node].fsync(now, file),
            Mount::ServerLocal => self.server.fs_mut().fsync(now, file),
        }
    }

    fn io_meta(
        &mut self,
        now: Time,
        node: NodeId,
        verb: MetaVerb,
        dir: FileId,
        target: FileId,
    ) -> Time {
        self.apply_faults_up_to(now);
        // Metadata routes by the *directory's* mount: an mdtest cell
        // registers its working directory once and every verb inside it
        // follows, target files included.
        let end = match self.mount_of(dir) {
            Mount::Nfs | Mount::NfsDirect => {
                match self.clients[node].meta_verb(
                    &mut self.net,
                    &mut self.server,
                    now,
                    verb,
                    dir,
                    target,
                ) {
                    Ok(t) => t,
                    Err(e) => self.note_error(e),
                }
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                match pfs.meta_verb(net, node, now, verb, dir, target) {
                    Ok(t) => t,
                    Err(e) => self.note_pfs_error(e),
                }
            }
            Mount::Local => match self.local[node].meta((), now, verb, dir, target) {
                Ok(t) => t,
                Err(never) => match never {},
            },
            Mount::ServerLocal => match self.server.fs_mut().meta((), now, verb, dir, target) {
                Ok(t) => t,
                Err(never) => match never {},
            },
        };
        simcore::obs::emit(|| simcore::obs::ObsEvent::MetaOp {
            op: verb.label(),
            start: now,
            end,
        });
        end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{aohyper_configs, IoConfigBuilder};
    use crate::presets;
    use simcore::{Bandwidth, MIB};

    const F: FileId = FileId(100);

    fn machine() -> ClusterMachine {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration")
    }

    #[test]
    fn nfs_roundtrip_through_machine() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, 4 * MIB);
        let t = m.io_close(t, 0, F);
        assert!(t > Time::ZERO);
        assert_eq!(m.server().fs().file_size(F), 4 * MIB);
    }

    #[test]
    fn zero_length_io_is_a_noop_on_every_mount() {
        // Degenerate programs must not cost time, move bytes, or panic
        // (the PFS layer asserts len > 0 as an internal invariant).
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        for mount in [
            Mount::Nfs,
            Mount::NfsDirect,
            Mount::Local,
            Mount::ServerLocal,
            Mount::Pfs,
        ] {
            m.mount(F, mount);
            let t = m.io_open(Time::ZERO, 0, F, true);
            assert_eq!(m.io_write(t, 0, F, 0, 0), t, "{mount:?} write");
            assert_eq!(m.io_read(t, 0, F, 0, 0), t, "{mount:?} read");
        }
    }

    #[test]
    fn local_mount_stays_on_node() {
        let mut m = machine();
        m.mount(F, Mount::Local);
        let t = m.io_open(Time::ZERO, 2, F, true);
        let t = m.io_write(t, 2, F, 0, MIB);
        m.io_sync(t, 2, F);
        assert_eq!(m.local_fs(2).file_size(F), MIB);
        assert_eq!(m.local_fs(0).file_size(F), 0);
        assert_eq!(m.server().fs().file_size(F), 0);
    }

    #[test]
    fn server_local_mount_hits_io_node_directly() {
        let mut m = machine();
        m.mount(F, Mount::ServerLocal);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, MIB);
        let before_msgs = m.network().fabric(TrafficClass::Storage).meter().messages;
        assert_eq!(
            before_msgs, 0,
            "server-local I/O must not touch the network"
        );
        m.io_sync(t, 0, F);
        assert_eq!(m.server().fs().file_size(F), MIB);
    }

    #[test]
    fn different_layouts_build_different_volumes() {
        let spec = presets::aohyper();
        for config in aohyper_configs() {
            let m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
            assert_eq!(m.server().fs().volume_kind(), config.devices.label());
        }
    }

    #[test]
    fn raid5_server_is_faster_than_jbod_server_for_streaming_writes() {
        let spec = presets::aohyper();
        let mut rates = Vec::new();
        for config in [
            IoConfigBuilder::new(DeviceLayout::Jbod)
                .write_cache_mib(0)
                .build(),
            IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
        ] {
            let mut m =
                ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
            m.mount(F, Mount::ServerLocal);
            let mut t = m.io_open(Time::ZERO, 0, F, true);
            let start = t;
            let total = 6u64 * 1024 * MIB / 1024; // 6 GiB: beyond server RAM
            let mut off = 0;
            while off < total {
                t = m.io_write(t, 0, F, off, 4 * MIB);
                off += 4 * MIB;
            }
            t = m.io_sync(t, 0, F);
            rates.push(Bandwidth::measured(total, t - start).as_mib_per_sec());
        }
        assert!(
            rates[1] > rates[0] * 2.0,
            "RAID 5 {} vs JBOD {}",
            rates[1],
            rates[0]
        );
    }

    #[test]
    fn preallocate_routes_by_mount() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        m.preallocate(F, 2 * MIB);
        assert_eq!(m.server().fs().file_size(F), 2 * MIB);

        let g = FileId(200);
        m.mount(g, Mount::Local);
        m.preallocate(g, MIB);
        assert_eq!(m.local_fs(0).file_size(g), MIB);
        assert_eq!(m.local_fs(3).file_size(g), MIB);
    }

    #[test]
    fn drop_all_caches_completes() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, 8 * MIB);
        let t2 = m.drop_all_caches(t);
        assert!(t2 >= t);
    }

    #[test]
    fn default_mount_is_nfs() {
        let mut m = machine();
        let t = m.io_open(Time::ZERO, 1, FileId(777), true);
        let t = m.io_write(t, 1, FileId(777), 0, MIB);
        // Write-behind: the server sees the data once the client flushes.
        m.io_close(t, 1, FileId(777));
        assert_eq!(m.server().fs().file_size(FileId(777)), MIB);
    }

    #[test]
    fn pfs_mount_routes_to_parallel_fs() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.mount(F, Mount::Pfs);
        let t = m.io_open(Time::ZERO, 3, F, true);
        let t = m.io_write(t, 3, F, 0, 4 * MIB);
        let t = m.io_sync(t, 3, F);
        let t2 = m.io_read(t, 3, F, 0, 4 * MIB);
        assert!(t2 > t);
        assert_eq!(m.pfs().unwrap().servers(), 2);
        assert_eq!(m.pfs().unwrap().meter().writes.bytes(), 4 * MIB);
        // The NFS server never saw the file.
        assert_eq!(m.server().fs().file_size(F), 0);
    }

    #[test]
    #[should_panic(expected = "PFS not deployed")]
    fn pfs_mount_without_deployment_panics() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.mount(F, Mount::Pfs);
        m.io_open(Time::ZERO, 0, F, true);
    }

    #[test]
    fn try_new_rejects_invalid_configs_with_typed_errors() {
        let spec = presets::test_cluster();
        let bad_raid5 = IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 2,
            stripe: 256 * 1024,
        })
        .build();
        assert_eq!(
            ClusterMachine::try_new(&spec, &bad_raid5).err(),
            Some(crate::config::ConfigError::TooFewDisks {
                layout: "RAID 5",
                need: 3,
                got: 2
            })
        );
        let bad_stripe = IoConfigBuilder::new(DeviceLayout::Raid0 {
            disks: 2,
            stripe: 0,
        })
        .build();
        assert!(matches!(
            ClusterMachine::try_new(&spec, &bad_stripe),
            Err(crate::config::ConfigError::ZeroStripe { .. })
        ));
        let bad_pfs = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs(spec.compute_nodes + 1)
            .build();
        assert!(matches!(
            ClusterMachine::try_new(&spec, &bad_pfs),
            Err(crate::config::ConfigError::TooManyPfsServers { .. })
        ));
        assert!(ClusterMachine::try_new(
            &spec,
            &IoConfigBuilder::new(DeviceLayout::raid5_paper()).build()
        )
        .is_ok());
    }

    /// Streams `total` bytes to the server volume and returns MiB/s.
    fn stream_rate(m: &mut ClusterMachine, total: u64) -> f64 {
        m.mount(F, Mount::ServerLocal);
        let mut t = m.io_open(Time::ZERO, 0, F, true);
        let start = t;
        let mut off = 0;
        while off < total {
            t = m.io_write(t, 0, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        t = m.io_sync(t, 0, F);
        Bandwidth::measured(total, t - start).as_mib_per_sec()
    }

    /// Streams `total` bytes of cold reads from the server volume; MiB/s.
    fn read_rate(m: &mut ClusterMachine, total: u64) -> f64 {
        m.mount(F, Mount::ServerLocal);
        m.preallocate(F, total);
        let mut t = m.io_open(Time::ZERO, 0, F, false);
        let start = t;
        let mut off = 0;
        while off < total {
            t = m.io_read(t, 0, F, off, 4 * MIB);
            off += 4 * MIB;
        }
        Bandwidth::measured(total, t - start).as_mib_per_sec()
    }

    #[test]
    fn injected_disk_failure_degrades_the_raid5_server() {
        let spec = presets::aohyper();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .write_cache_mib(0)
            .build();
        // Cold reads: a degraded array reconstructs the dead member's chunks
        // from all survivors, so read bandwidth drops (writes merely skip
        // the dead member and cost the same).
        let total = 1024 * MIB;

        let mut healthy =
            ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let healthy_rate = read_rate(&mut healthy, total);
        assert!(healthy.fault_log().is_empty());

        let mut degraded =
            ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        degraded
            .install_faults(FaultSchedule::new(vec![FaultEvent {
                at: Time::ZERO,
                fault: Fault::DiskFail { disk: 2 },
            }]))
            .expect("valid fault schedule");
        let degraded_rate = read_rate(&mut degraded, total);
        assert_eq!(degraded.fault_log().len(), 1);
        assert!(
            degraded_rate < healthy_rate * 0.95,
            "degraded {degraded_rate} must trail healthy {healthy_rate}"
        );
    }

    #[test]
    fn replace_after_failure_triggers_rebuild_through_machine() {
        let spec = presets::aohyper();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .write_cache_mib(0)
            .build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.install_faults(FaultSchedule::new(vec![
            FaultEvent {
                at: Time::from_millis(1),
                fault: Fault::DiskFail { disk: 0 },
            },
            FaultEvent {
                at: Time::from_secs(2),
                fault: Fault::DiskReplace { disk: 0 },
            },
        ]))
        .expect("valid fault schedule");
        let rate = stream_rate(&mut m, 1024 * MIB);
        assert!(rate > 0.0);
        let report = m.rebuild_report().expect("rebuild must have started");
        assert!(report.bytes_total > 0);
        let done = m.finish_rebuild(Time::from_secs(1_000));
        let report = m.rebuild_report().expect("report persists");
        assert!(report.finished.is_some(), "resilver must complete");
        assert_eq!(report.bytes_done, report.bytes_total);
        assert!(done >= Time::from_secs(2));
    }

    #[test]
    fn unsupported_faults_are_logged_not_fatal() {
        let mut m = machine(); // JBOD server
        m.install_faults(FaultSchedule::new(vec![FaultEvent {
            at: Time::ZERO,
            fault: Fault::DiskFail { disk: 0 },
        }]))
        .expect("in-range member of the single-disk JBOD");
        m.mount(F, Mount::Nfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        assert!(t > Time::ZERO);
        assert_eq!(m.fault_log().len(), 1);
        assert!(
            m.fault_log()[0].1.contains("ignored"),
            "{:?}",
            m.fault_log()
        );
        assert_eq!(m.io_errors(), 0);
    }

    #[test]
    fn long_server_stall_surfaces_as_counted_io_error() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        m.preallocate(F, 8 * MIB);
        // 10 min outage: beyond the Linux-TCP retransmission budget
        // (60 s + 120 s + 240 s of timeouts), so the soft mount errors out.
        m.install_faults(FaultSchedule::new(vec![FaultEvent {
            at: Time::ZERO,
            fault: Fault::ServerStall {
                duration: Time::from_secs(600),
            },
        }]))
        .expect("valid fault schedule");
        let t = m.io_read(Time::from_millis(1), 0, F, 0, MIB);
        assert_eq!(m.io_errors(), 1, "log: {:?}", m.fault_log());
        assert!(m.client_retries() >= 2);
        // The failed call consumed its timeout budget but not the outage.
        assert!(t > Time::from_secs(60) && t < Time::from_secs(600));
        // After the outage the same file is readable again.
        let t2 = m.io_read(Time::from_secs(601), 0, F, 0, MIB);
        assert!(t2 > Time::from_secs(601));
        assert_eq!(m.io_errors(), 1);
    }

    /// Streams writes op by op and returns every per-op completion instant
    /// (so a single diverging grant is caught, not just the total).
    fn stream_trace(m: &mut ClusterMachine, total: u64) -> Vec<Time> {
        m.mount(F, Mount::ServerLocal);
        let mut t = m.io_open(Time::ZERO, 0, F, true);
        let mut trace = vec![t];
        let mut off = 0;
        while off < total {
            t = m.io_write(t, 0, F, off, 4 * MIB);
            trace.push(t);
            off += 4 * MIB;
        }
        trace.push(m.io_sync(t, 0, F));
        trace
    }

    #[test]
    fn bulk_fast_path_is_timing_identical_across_a_fault_window() {
        let spec = presets::aohyper();
        let config = IoConfigBuilder::new(DeviceLayout::raid5_paper())
            .write_cache_mib(0)
            .build();
        let faults = || {
            FaultSchedule::new(vec![
                FaultEvent {
                    at: Time::from_secs(2),
                    fault: Fault::DiskSlow {
                        disk: 1,
                        factor: 3.0,
                    },
                },
                FaultEvent {
                    at: Time::from_secs(6),
                    fault: Fault::DiskRecover { disk: 1 },
                },
            ])
        };
        let total = 1024 * MIB;

        let mut fast = ClusterMachine::try_new(&spec, &config).expect("valid config");
        fast.install_faults(faults()).expect("valid fault schedule");
        let fast_trace = stream_trace(&mut fast, total);

        let mut gran = ClusterMachine::try_new(&spec, &config).expect("valid config");
        gran.install_faults(faults()).expect("valid fault schedule");
        gran.server_mut()
            .fs_mut()
            .volume_mut()
            .set_bulk_enabled(false);
        let gran_trace = stream_trace(&mut gran, total);

        assert_eq!(fast_trace, gran_trace, "fast path changed visible timing");
        assert_eq!(fast.fault_log().len(), 2);
        assert_eq!(fast.fault_log(), gran.fault_log());

        let (hits, misses) = fast.server_bulk_stats();
        assert!(hits > 0, "healthy stretch never took the fast path");
        assert!(
            misses > 0,
            "runs near the fault window must fall back to the granular path"
        );
        assert_eq!(gran.server_bulk_stats().0, 0);
    }

    #[test]
    fn install_faults_rejects_out_of_range_disk_member() {
        let mut m = machine(); // JBOD server: exactly one member
        let err = m
            .install_faults(FaultSchedule::new(vec![FaultEvent {
                at: Time::ZERO,
                fault: Fault::DiskFail { disk: 1 },
            }]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::FaultDiskOutOfRange {
                disk: 1,
                members: 1
            }
        );
        // The rejected schedule was not installed.
        m.mount(F, Mount::Nfs);
        m.io_open(Time::ZERO, 0, F, true);
        assert!(m.fault_log().is_empty());
    }

    #[test]
    fn install_faults_rejects_pfs_faults_without_a_deployment() {
        let mut m = machine(); // pfs_servers == 0
        let err = m
            .install_faults(FaultSchedule::new(vec![FaultEvent {
                at: Time::ZERO,
                fault: Fault::PfsServerFail { server: 0 },
            }]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::FaultPfsServerOutOfRange {
                server: 0,
                servers: 0
            }
        );

        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let err = m
            .install_faults(FaultSchedule::new(vec![FaultEvent {
                at: Time::ZERO,
                fault: Fault::PfsServerSlow {
                    server: 2,
                    factor: 4.0,
                },
            }]))
            .unwrap_err();
        assert!(matches!(
            err,
            crate::config::ConfigError::FaultPfsServerOutOfRange {
                server: 2,
                servers: 2
            }
        ));
    }

    #[test]
    fn install_faults_accepts_pfs_faults_at_time_zero() {
        // Regression: validation is against the *configuration* (deployed
        // server count), not runtime activation state, so a schedule that
        // kills a PFS server at t=0 — before any operation has touched the
        // deployment — must install and then apply on the first op.
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs(2)
            .pfs_replicas(2)
            .build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.install_faults(FaultSchedule::new(vec![FaultEvent {
            at: Time::ZERO,
            fault: Fault::PfsServerFail { server: 1 },
        }]))
        .expect("t=0 PFS fault on a deployed PFS must install");
        assert!(m.fault_log().is_empty(), "faults apply lazily, not eagerly");
        m.mount(F, Mount::Pfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        assert!(t > Time::ZERO);
        assert_eq!(m.fault_log().len(), 1, "log: {:?}", m.fault_log());
        assert!(m.fault_log()[0].1.contains("pfs server 1 failed"));
    }

    #[test]
    fn install_faults_reports_the_first_offending_event_in_schedule_order() {
        // Pin the typed-error ordering: with several invalid events in one
        // schedule, the earliest event in schedule order wins — here the
        // out-of-range disk at t=0 masks the out-of-range PFS server at
        // t=1, and swapping instants flips the error.
        let mut m = machine(); // JBOD (1 disk member), no PFS
        let bad_disk = |at| FaultEvent {
            at,
            fault: Fault::DiskFail { disk: 9 },
        };
        let bad_pfs = |at| FaultEvent {
            at,
            fault: Fault::PfsServerFail { server: 0 },
        };
        let err = m
            .install_faults(FaultSchedule::new(vec![
                bad_disk(Time::ZERO),
                bad_pfs(Time::from_secs(1)),
            ]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::FaultDiskOutOfRange {
                disk: 9,
                members: 1
            }
        );
        let err = m
            .install_faults(FaultSchedule::new(vec![
                bad_pfs(Time::ZERO),
                bad_disk(Time::from_secs(1)),
            ]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::config::ConfigError::FaultPfsServerOutOfRange {
                server: 0,
                servers: 0
            }
        );
    }

    #[test]
    fn metadata_routes_by_directory_mount() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let (nfs_dir, pfs_dir, local_dir) = (FileId(500), FileId(510), FileId(520));
        m.mount(nfs_dir, Mount::Nfs);
        m.mount(pfs_dir, Mount::Pfs);
        m.mount(local_dir, Mount::Local);
        // The target file is unregistered; the *directory* decides.
        let t = m.io_meta(Time::ZERO, 0, MetaVerb::Create, nfs_dir, FileId(501));
        assert!(t > Time::ZERO);
        assert_eq!(m.client(0).meter().meta_ops, 1);
        let t = m.io_meta(t, 0, MetaVerb::Create, pfs_dir, FileId(511));
        assert!(t > Time::ZERO);
        assert_eq!(m.pfs().unwrap().meter().meta_ops, 1);
        let before = m.network().fabric(TrafficClass::Storage).meter().messages;
        let t2 = m.io_meta(t, 1, MetaVerb::Create, local_dir, FileId(521));
        assert!(t2 > t);
        assert_eq!(
            m.network().fabric(TrafficClass::Storage).meter().messages,
            before,
            "local metadata must not touch the network"
        );
        assert_eq!(m.local_fs(1).meter().meta_ops, 1);
        assert_eq!(m.io_errors(), 0);
    }

    #[test]
    fn pfs_server_failure_fails_over_and_resyncs_through_machine() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs(2)
            .pfs_replicas(2)
            .build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.install_faults(FaultSchedule::new(vec![
            FaultEvent {
                at: Time::from_micros(1),
                fault: Fault::PfsServerFail { server: 1 },
            },
            FaultEvent {
                at: Time::from_secs(30),
                fault: Fault::PfsServerRecover { server: 1 },
            },
        ]))
        .expect("valid fault schedule");
        m.mount(F, Mount::Pfs);
        let t = m.io_open(Time::ZERO, 3, F, true);
        // The write hits both servers; server 1 is dead, so its replica
        // spans burn the detection budget and are owed for resync. Every
        // byte still lands on the surviving holder.
        let t = m.io_write(t, 3, F, 0, 4 * MIB);
        assert_eq!(m.pfs().unwrap().meter().writes.bytes(), 4 * MIB);
        assert_eq!(
            m.io_errors(),
            0,
            "degraded, not failed: {:?}",
            m.fault_log()
        );
        assert!(m.client_retries() > 0, "detection retransmissions count");
        // Reads in the outage are served by the survivor (failover).
        let t2 = m.io_read(t, 3, F, 0, 4 * MIB);
        assert!(t2 > t);
        assert!(m.pfs_failovers() > 0, "log: {:?}", m.fault_log());
        // Settle the scheduled recovery: the missed writes are replayed.
        m.apply_faults_up_to(Time::from_secs(31));
        assert!(m.pfs_resync_bytes() > 0, "log: {:?}", m.fault_log());
        assert_eq!(m.pfs().unwrap().resyncs(), 1);
        // Post-recovery the filesystem serves reads again, fault-free.
        let errors = m.io_errors();
        let t3 = m.io_read(Time::from_secs(40), 3, F, 0, 4 * MIB);
        assert!(t3 > Time::from_secs(40));
        assert_eq!(m.io_errors(), errors);
    }

    #[test]
    fn pfs_outage_without_replicas_surfaces_counted_errors() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.install_faults(FaultSchedule::new(vec![FaultEvent {
            at: Time::from_micros(1),
            fault: Fault::PfsServerFail { server: 1 },
        }]))
        .expect("valid fault schedule");
        m.mount(F, Mount::Pfs);
        m.preallocate(F, 4 * MIB);
        let t = m.io_open(Time::ZERO, 3, F, false);
        // Unreplicated: spans on the dead server are unavailable; the
        // operation surfaces as a counted, typed error, not a panic.
        let t2 = m.io_read(t.max(Time::from_millis(1)), 3, F, 0, 4 * MIB);
        assert!(t2 > t);
        assert_eq!(m.io_errors(), 1, "log: {:?}", m.fault_log());
        assert!(
            m.fault_log().iter().any(|(_, l)| l.contains("unavailable")),
            "log: {:?}",
            m.fault_log()
        );
    }

    #[test]
    fn network_degradation_slows_mpi_traffic() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let clean = m.mpi_send(Time::ZERO, 0, 1, 4 * MIB) - Time::ZERO;
        let mut m = ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        m.install_faults(FaultSchedule::new(vec![FaultEvent {
            at: Time::ZERO,
            fault: Fault::NetDegrade {
                class: simcore::NetClass::Mpi,
                drop: 1.0,
                duplicate: 0.0,
            },
        }]))
        .expect("valid fault schedule");
        let lossy = m.mpi_send(Time::ZERO, 0, 1, 4 * MIB) - Time::ZERO;
        assert!(
            lossy.as_secs_f64() > clean.as_secs_f64() * 1.5,
            "lossy {lossy:?} vs clean {clean:?}"
        );
    }

    #[test]
    fn shared_network_couples_mpi_and_storage() {
        let spec = presets::test_cluster();
        let shared = IoConfigBuilder::new(DeviceLayout::Jbod)
            .network(NetworkLayout::Shared)
            .build();
        let m = ClusterMachine::try_new(&spec, &shared).expect("valid cluster configuration");
        assert!(!m.network().is_split());
        let split = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let m = ClusterMachine::try_new(&spec, &split).expect("valid cluster configuration");
        assert!(m.network().is_split());
    }
}
