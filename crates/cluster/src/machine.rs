//! The concrete [`Machine`] implementation for a configured cluster.

use crate::config::{DeviceLayout, IoConfig, NetworkLayout};
use crate::spec::ClusterSpec;
use fs::{
    FileId, LocalFs, LocalFsParams, NfsClient, NfsClientParams, NfsServer, NfsServerParams,
    PfsParams, PfsSystem,
};
use mpisim::Machine;
use netsim::{Network, NodeId, TrafficClass};
use simcore::Time;
use std::collections::HashMap;
use storage::{CachedVolume, Disk, Jbod, Raid0, Raid1, Raid5, Volume, WriteCacheParams};

/// Where a file lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mount {
    /// The NFS export of the I/O node (shared access).
    Nfs,
    /// The local filesystem of the node performing the operation
    /// (independent access; a rank only sees its own node's disk).
    Local,
    /// The NFS export accessed the way ROMIO drives MPI-IO on NFS:
    /// attribute caching off (`noac`), synchronous uncached data transfer.
    /// Application workloads (BT-IO, MADbench2, IOR) use this.
    NfsDirect,
    /// The parallel filesystem (requires `IoConfig::pfs_servers > 0`).
    Pfs,
    /// The I/O node's filesystem accessed locally on the I/O node —
    /// used to characterize the device level below NFS.
    ServerLocal,
}

use serde::{Deserialize, Serialize};

/// Builds the I/O node's volume for a configuration.
fn build_server_volume(spec: &ClusterSpec, config: &IoConfig) -> Box<dyn Volume> {
    let disk = |i: u64| -> Disk { Disk::new(spec.server_disk.clone(), spec.seed ^ (0x5151 + i)) };
    let raw: Box<dyn Volume> = match config.devices {
        DeviceLayout::Jbod => Box::new(Jbod::new(disk(0))),
        DeviceLayout::Raid1 => Box::new(Raid1::new(disk(0), disk(1))),
        DeviceLayout::Raid5 { disks, stripe } => Box::new(Raid5::new(
            (0..disks as u64).map(disk).collect(),
            stripe,
            config.raid5_coalesce,
        )),
        DeviceLayout::Raid0 { disks, stripe } => Box::new(Raid0::new(
            (0..disks as u64).map(disk).collect(),
            stripe,
        )),
    };
    if config.write_cache_mib > 0 {
        Box::new(CachedVolume::new(
            WriteCacheParams::controller(config.write_cache_mib),
            BoxedVolume(raw),
        ))
    } else {
        raw
    }
}

/// Adapter: `CachedVolume` is generic over `V: Volume`; this lets it wrap a
/// boxed volume.
struct BoxedVolume(Box<dyn Volume>);

impl Volume for BoxedVolume {
    fn submit(&mut self, now: Time, req: storage::BlockReq) -> storage::IoGrant {
        self.0.submit(now, req)
    }
    fn flush(&mut self, now: Time) -> Time {
        self.0.flush(now)
    }
    fn capacity(&self) -> u64 {
        self.0.capacity()
    }
    fn kind(&self) -> &'static str {
        self.0.kind()
    }
    fn meter(&self) -> &storage::VolumeMeter {
        self.0.meter()
    }
}

/// A configured cluster: compute nodes with local disks and NFS mounts, an
/// I/O node exporting the configured volume, and the configured network(s).
pub struct ClusterMachine {
    spec: ClusterSpec,
    config: IoConfig,
    net: Network,
    server: NfsServer,
    local: Vec<LocalFs>,
    clients: Vec<NfsClient>,
    pfs: Option<PfsSystem>,
    mounts: HashMap<FileId, Mount>,
    default_mount: Mount,
}

impl ClusterMachine {
    /// Builds the machine for `spec` under `config`.
    pub fn new(spec: &ClusterSpec, config: &IoConfig) -> ClusterMachine {
        let nodes = spec.total_nodes();
        let net = match config.network {
            NetworkLayout::Shared => Network::shared(nodes, spec.fabric),
            NetworkLayout::Split => Network::split(nodes, spec.fabric),
        };
        let server_fs = LocalFs::new(
            LocalFsParams::ext4(spec.io_node_ram),
            build_server_volume(spec, config),
        );
        let server = NfsServer::new(spec.io_node(), NfsServerParams::default(), server_fs);
        let local = (0..spec.compute_nodes)
            .map(|i| {
                let disk = Disk::new(spec.node_disk.clone(), spec.seed ^ (0x10c0 + i as u64));
                LocalFs::new(LocalFsParams::ext4(spec.node_ram), Box::new(Jbod::new(disk)))
            })
            .collect();
        let clients = (0..spec.compute_nodes)
            .map(|i| NfsClient::new(i, NfsClientParams::linux_default(spec.node_ram)))
            .collect();
        let pfs = if config.pfs_servers > 0 {
            assert!(
                config.pfs_servers <= spec.compute_nodes,
                "more PFS servers than compute nodes"
            );
            // Each I/O-server node gets a dedicated data disk (PVFS-style
            // deployment over a subset of the compute nodes).
            let backends = (0..config.pfs_servers)
                .map(|i| {
                    let disk =
                        Disk::new(spec.node_disk.clone(), spec.seed ^ (0x9F50 + i as u64));
                    LocalFs::new(LocalFsParams::ext4(spec.node_ram), Box::new(Jbod::new(disk)))
                })
                .collect();
            Some(PfsSystem::new(
                PfsParams {
                    stripe: config.pfs_stripe,
                    ..PfsParams::default()
                },
                (0..config.pfs_servers).collect(),
                backends,
            ))
        } else {
            None
        };
        ClusterMachine {
            spec: spec.clone(),
            config: config.clone(),
            net,
            server,
            local,
            clients,
            pfs,
            mounts: HashMap::new(),
            default_mount: Mount::Nfs,
        }
    }

    fn pfs_mut(&mut self) -> &mut PfsSystem {
        self.pfs
            .as_mut()
            .expect("Mount::Pfs used but IoConfig::pfs_servers is 0")
    }

    /// The parallel filesystem, when deployed.
    pub fn pfs(&self) -> Option<&PfsSystem> {
        self.pfs.as_ref()
    }

    /// The cluster's hardware spec.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// The active I/O configuration.
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    /// Routes `file` to a mount.
    pub fn mount(&mut self, file: FileId, mount: Mount) {
        self.mounts.insert(file, mount);
    }

    /// Sets the mount used for unregistered files (default: NFS).
    pub fn set_default_mount(&mut self, mount: Mount) {
        self.default_mount = mount;
    }

    fn mount_of(&self, file: FileId) -> Mount {
        self.mounts.get(&file).copied().unwrap_or(self.default_mount)
    }

    /// The NFS server (for meters / direct characterization).
    pub fn server(&self) -> &NfsServer {
        &self.server
    }

    /// Mutable access to the NFS server.
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.server
    }

    /// A compute node's local filesystem.
    pub fn local_fs(&self, node: NodeId) -> &LocalFs {
        &self.local[node]
    }

    /// A node's NFS client (for diagnostics).
    pub fn client(&self, node: NodeId) -> &NfsClient {
        &self.clients[node]
    }

    /// The network (for meters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Pre-populates a file with `size` valid bytes on its mount (the
    /// "existing input file" case for read benchmarks).
    pub fn preallocate(&mut self, file: FileId, size: u64) {
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect | Mount::ServerLocal => {
                self.server.fs_mut().preallocate(file, size)
            }
            Mount::Pfs => self.pfs_mut().preallocate(file, size),
            Mount::Local => {
                for fs in &mut self.local {
                    fs.preallocate(file, size);
                }
            }
        }
    }

    /// Flushes and drops every cache in the cluster (between runs); returns
    /// the completion instant.
    pub fn drop_all_caches(&mut self, now: Time) -> Time {
        let mut t = now;
        for i in 0..self.clients.len() {
            let done = self.clients[i].drop_caches(&mut self.net, &mut self.server, now);
            t = t.max(done);
        }
        for fs in &mut self.local {
            t = t.max(fs.drop_caches(now));
        }
        t.max(self.server.fs_mut().drop_caches(t))
    }
}

impl Machine for ClusterMachine {
    fn nodes(&self) -> usize {
        self.spec.total_nodes()
    }

    fn mpi_send(&mut self, now: Time, from: NodeId, to: NodeId, bytes: u64) -> Time {
        self.net.send(now, from, to, bytes, TrafficClass::Mpi)
    }

    fn io_open(&mut self, now: Time, node: NodeId, file: FileId, create: bool) -> Time {
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect => {
                self.clients[node].open(&mut self.net, &mut self.server, now, file, create)
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                pfs.open(net, node, now, file, create)
            }
            Mount::Local => {
                if create && self.local[node].file_size(file) == 0 {
                    self.local[node].create(now, file)
                } else {
                    self.local[node].open(now, file)
                }
            }
            Mount::ServerLocal => {
                let fs = self.server.fs_mut();
                if create && fs.file_size(file) == 0 {
                    fs.create(now, file)
                } else {
                    fs.open(now, file)
                }
            }
        }
    }

    fn io_close(&mut self, now: Time, node: NodeId, file: FileId) -> Time {
        match self.mount_of(file) {
            Mount::Nfs => self.clients[node].close(&mut self.net, &mut self.server, now, file),
            Mount::NfsDirect => {
                // ROMIO fsyncs on close; no client cache to flush.
                self.clients[node].fsync(&mut self.net, &mut self.server, now, file)
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                pfs.close(net, node, now, file)
            }
            Mount::Local => self.local[node].close(now, file),
            Mount::ServerLocal => self.server.fs_mut().close(now, file),
        }
    }

    fn io_read(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time {
        match self.mount_of(file) {
            Mount::Nfs => {
                self.clients[node].read(&mut self.net, &mut self.server, now, file, offset, len)
            }
            // A ROMIO mount pays lock/revalidation round trips, then uses
            // the normal cached read path (NFS clients cache read data
            // even under the MPI-IO discipline).
            Mount::NfsDirect => {
                let t = self.clients[node].lock_roundtrips(&mut self.net, &mut self.server, now);
                self.clients[node].read(&mut self.net, &mut self.server, t, file, offset, len)
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                pfs.read(net, node, now, file, offset, len)
            }
            Mount::Local => self.local[node].read(now, file, offset, len),
            Mount::ServerLocal => self.server.fs_mut().read(now, file, offset, len),
        }
    }

    fn io_write(&mut self, now: Time, node: NodeId, file: FileId, offset: u64, len: u64) -> Time {
        match self.mount_of(file) {
            Mount::Nfs => {
                self.clients[node].write(&mut self.net, &mut self.server, now, file, offset, len)
            }
            Mount::NfsDirect => {
                let t = self.clients[node].lock_roundtrips(&mut self.net, &mut self.server, now);
                self.clients[node]
                    .write_direct(&mut self.net, &mut self.server, t, file, offset, len)
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                pfs.write(net, node, now, file, offset, len)
            }
            Mount::Local => self.local[node].write(now, file, offset, len),
            Mount::ServerLocal => self.server.fs_mut().write(now, file, offset, len),
        }
    }

    fn io_sync(&mut self, now: Time, node: NodeId, file: FileId) -> Time {
        match self.mount_of(file) {
            Mount::Nfs | Mount::NfsDirect => {
                self.clients[node].fsync(&mut self.net, &mut self.server, now, file)
            }
            Mount::Pfs => {
                let net = &mut self.net;
                let pfs = self.pfs.as_mut().expect("PFS not deployed");
                pfs.sync(net, node, now, file)
            }
            Mount::Local => self.local[node].fsync(now, file),
            Mount::ServerLocal => self.server.fs_mut().fsync(now, file),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{aohyper_configs, IoConfigBuilder};
    use crate::presets;
    use simcore::{Bandwidth, MIB};

    const F: FileId = FileId(100);

    fn machine() -> ClusterMachine {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        ClusterMachine::new(&spec, &config)
    }

    #[test]
    fn nfs_roundtrip_through_machine() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, 4 * MIB);
        let t = m.io_close(t, 0, F);
        assert!(t > Time::ZERO);
        assert_eq!(m.server().fs().file_size(F), 4 * MIB);
    }

    #[test]
    fn local_mount_stays_on_node() {
        let mut m = machine();
        m.mount(F, Mount::Local);
        let t = m.io_open(Time::ZERO, 2, F, true);
        let t = m.io_write(t, 2, F, 0, MIB);
        m.io_sync(t, 2, F);
        assert_eq!(m.local_fs(2).file_size(F), MIB);
        assert_eq!(m.local_fs(0).file_size(F), 0);
        assert_eq!(m.server().fs().file_size(F), 0);
    }

    #[test]
    fn server_local_mount_hits_io_node_directly() {
        let mut m = machine();
        m.mount(F, Mount::ServerLocal);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, MIB);
        let before_msgs = m.network().fabric(TrafficClass::Storage).meter().messages;
        assert_eq!(before_msgs, 0, "server-local I/O must not touch the network");
        m.io_sync(t, 0, F);
        assert_eq!(m.server().fs().file_size(F), MIB);
    }

    #[test]
    fn different_layouts_build_different_volumes() {
        let spec = presets::aohyper();
        for config in aohyper_configs() {
            let m = ClusterMachine::new(&spec, &config);
            assert_eq!(m.server().fs().volume_kind(), config.devices.label());
        }
    }

    #[test]
    fn raid5_server_is_faster_than_jbod_server_for_streaming_writes() {
        let spec = presets::aohyper();
        let mut rates = Vec::new();
        for config in [
            IoConfigBuilder::new(DeviceLayout::Jbod).write_cache_mib(0).build(),
            IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
        ] {
            let mut m = ClusterMachine::new(&spec, &config);
            m.mount(F, Mount::ServerLocal);
            let mut t = m.io_open(Time::ZERO, 0, F, true);
            let start = t;
            let total = 6u64 * 1024 * MIB / 1024; // 6 GiB: beyond server RAM
            let mut off = 0;
            while off < total {
                t = m.io_write(t, 0, F, off, 4 * MIB);
                off += 4 * MIB;
            }
            t = m.io_sync(t, 0, F);
            rates.push(Bandwidth::measured(total, t - start).as_mib_per_sec());
        }
        assert!(
            rates[1] > rates[0] * 2.0,
            "RAID 5 {} vs JBOD {}",
            rates[1],
            rates[0]
        );
    }

    #[test]
    fn preallocate_routes_by_mount() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        m.preallocate(F, 2 * MIB);
        assert_eq!(m.server().fs().file_size(F), 2 * MIB);

        let g = FileId(200);
        m.mount(g, Mount::Local);
        m.preallocate(g, MIB);
        assert_eq!(m.local_fs(0).file_size(g), MIB);
        assert_eq!(m.local_fs(3).file_size(g), MIB);
    }

    #[test]
    fn drop_all_caches_completes() {
        let mut m = machine();
        m.mount(F, Mount::Nfs);
        let t = m.io_open(Time::ZERO, 0, F, true);
        let t = m.io_write(t, 0, F, 0, 8 * MIB);
        let t2 = m.drop_all_caches(t);
        assert!(t2 >= t);
    }

    #[test]
    fn default_mount_is_nfs() {
        let mut m = machine();
        let t = m.io_open(Time::ZERO, 1, FileId(777), true);
        let t = m.io_write(t, 1, FileId(777), 0, MIB);
        // Write-behind: the server sees the data once the client flushes.
        m.io_close(t, 1, FileId(777));
        assert_eq!(m.server().fs().file_size(FileId(777)), MIB);
    }

    #[test]
    fn pfs_mount_routes_to_parallel_fs() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(2).build();
        let mut m = ClusterMachine::new(&spec, &config);
        m.mount(F, Mount::Pfs);
        let t = m.io_open(Time::ZERO, 3, F, true);
        let t = m.io_write(t, 3, F, 0, 4 * MIB);
        let t = m.io_sync(t, 3, F);
        let t2 = m.io_read(t, 3, F, 0, 4 * MIB);
        assert!(t2 > t);
        assert_eq!(m.pfs().unwrap().servers(), 2);
        assert_eq!(m.pfs().unwrap().meter().writes.bytes(), 4 * MIB);
        // The NFS server never saw the file.
        assert_eq!(m.server().fs().file_size(F), 0);
    }

    #[test]
    #[should_panic(expected = "PFS not deployed")]
    fn pfs_mount_without_deployment_panics() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut m = ClusterMachine::new(&spec, &config);
        m.mount(F, Mount::Pfs);
        m.io_open(Time::ZERO, 0, F, true);
    }

    #[test]
    fn shared_network_couples_mpi_and_storage() {
        let spec = presets::test_cluster();
        let shared = IoConfigBuilder::new(DeviceLayout::Jbod)
            .network(NetworkLayout::Shared)
            .build();
        let m = ClusterMachine::new(&spec, &shared);
        assert!(!m.network().is_split());
        let split = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let m = ClusterMachine::new(&spec, &split);
        assert!(m.network().is_split());
    }
}
