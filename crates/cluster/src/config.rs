//! I/O configurations — the paper's configurable factors.
//!
//! Phase 2 of the methodology enumerates the factors that can be changed on
//! a cluster's I/O architecture: device organization (JBOD or RAID level),
//! buffer/cache state and placement, and the number/type of networks.
//! An [`IoConfig`] is one point in that space; the builder makes sweeps
//! over the space concise.

use crate::spec::ClusterSpec;
use serde::{Deserialize, Serialize};
use simcore::KIB;
use std::fmt;

/// A structurally invalid [`IoConfig`] for a given cluster.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// A RAID layout has fewer members than the level requires.
    TooFewDisks {
        /// Layout label ("RAID 5", ...).
        layout: &'static str,
        /// Minimum member count for the level.
        need: usize,
        /// Configured member count.
        got: usize,
    },
    /// A striped layout has a zero stripe unit.
    ZeroStripe {
        /// Layout label ("RAID 5", "RAID 0").
        layout: &'static str,
    },
    /// More PFS I/O servers than compute nodes to host them.
    TooManyPfsServers {
        /// Configured server count.
        servers: usize,
        /// Compute nodes available.
        compute_nodes: usize,
    },
    /// More stripe replicas than PFS servers to hold them.
    TooManyPfsReplicas {
        /// Configured replica count.
        replicas: usize,
        /// PFS servers deployed.
        servers: usize,
    },
    /// A fault schedule targets a disk member the device layout does not
    /// have.
    FaultDiskOutOfRange {
        /// Targeted member index.
        disk: usize,
        /// Members in the configured layout.
        members: usize,
    },
    /// A fault schedule targets a PFS server outside the deployment (or a
    /// deployment of zero servers).
    FaultPfsServerOutOfRange {
        /// Targeted server index.
        server: usize,
        /// PFS servers deployed.
        servers: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewDisks { layout, need, got } => {
                write!(f, "{layout} needs at least {need} member disks, got {got}")
            }
            ConfigError::ZeroStripe { layout } => {
                write!(f, "{layout} stripe unit must be nonzero")
            }
            ConfigError::TooManyPfsServers {
                servers,
                compute_nodes,
            } => write!(
                f,
                "{servers} PFS servers cannot be placed on {compute_nodes} compute nodes"
            ),
            ConfigError::TooManyPfsReplicas { replicas, servers } => write!(
                f,
                "{replicas} stripe replicas cannot be held by {servers} PFS servers"
            ),
            ConfigError::FaultDiskOutOfRange { disk, members } => write!(
                f,
                "fault schedule targets disk {disk} but the layout has {members} member(s)"
            ),
            ConfigError::FaultPfsServerOutOfRange { server, servers } => write!(
                f,
                "fault schedule targets PFS server {server} but the deployment has {servers} server(s)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Organization of the I/O node's devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceLayout {
    /// A single disk, no redundancy (the paper's JBOD).
    Jbod,
    /// Two mirrored disks.
    Raid1,
    /// Block-interleaved distributed parity over `disks` members with the
    /// given stripe chunk size.
    Raid5 {
        /// Member count (≥ 3).
        disks: usize,
        /// Stripe chunk in bytes.
        stripe: u64,
    },
    /// Striping without redundancy over `disks` members.
    Raid0 {
        /// Member count (≥ 2).
        disks: usize,
        /// Stripe chunk in bytes.
        stripe: u64,
    },
}

impl DeviceLayout {
    /// The paper's five-disk RAID 5 with 256 KiB stripe.
    pub fn raid5_paper() -> DeviceLayout {
        DeviceLayout::Raid5 {
            disks: 5,
            stripe: 256 * KIB,
        }
    }

    /// Short name for reports ("JBOD", "RAID 1", ...).
    pub fn label(&self) -> &'static str {
        match self {
            DeviceLayout::Jbod => "JBOD",
            DeviceLayout::Raid1 => "RAID 1",
            DeviceLayout::Raid5 { .. } => "RAID 5",
            DeviceLayout::Raid0 { .. } => "RAID 0",
        }
    }
}

/// Number/role of networks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetworkLayout {
    /// One network carries MPI and storage traffic.
    Shared,
    /// Dedicated data network (the paper's clusters).
    Split,
}

/// One I/O configuration under evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IoConfig {
    /// Report label, e.g. `"RAID 5"`.
    pub name: String,
    /// Device organization on the I/O node.
    pub devices: DeviceLayout,
    /// Network layout.
    pub network: NetworkLayout,
    /// Controller write-back cache size in MiB (0 disables it).
    pub write_cache_mib: u64,
    /// Whether RAID 5 coalesces sequential partial-stripe writes
    /// (controller stripe cache). Ignored for other layouts.
    pub raid5_coalesce: bool,
    /// Number of parallel-filesystem I/O servers deployed on compute
    /// nodes (0 = no PFS; the paper's "number and placement of I/O node"
    /// factor). Files on `Mount::Pfs` stripe across them.
    pub pfs_servers: usize,
    /// PFS stripe unit in bytes.
    pub pfs_stripe: u64,
    /// Copies of every PFS stripe chunk (1 = no replication; ≥ 2 enables
    /// server failover and degraded-mode operation).
    pub pfs_replicas: usize,
}

impl IoConfig {
    /// Checks the configuration against a cluster: RAID member counts,
    /// stripe units and PFS server placement. Mirrors the panics the
    /// volume constructors would otherwise raise, as typed errors.
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), ConfigError> {
        match self.devices {
            DeviceLayout::Jbod | DeviceLayout::Raid1 => {}
            DeviceLayout::Raid5 { disks, stripe } => {
                if disks < 3 {
                    return Err(ConfigError::TooFewDisks {
                        layout: "RAID 5",
                        need: 3,
                        got: disks,
                    });
                }
                if stripe == 0 {
                    return Err(ConfigError::ZeroStripe { layout: "RAID 5" });
                }
            }
            DeviceLayout::Raid0 { disks, stripe } => {
                if disks < 2 {
                    return Err(ConfigError::TooFewDisks {
                        layout: "RAID 0",
                        need: 2,
                        got: disks,
                    });
                }
                if stripe == 0 {
                    return Err(ConfigError::ZeroStripe { layout: "RAID 0" });
                }
            }
        }
        if self.pfs_servers > spec.compute_nodes {
            return Err(ConfigError::TooManyPfsServers {
                servers: self.pfs_servers,
                compute_nodes: spec.compute_nodes,
            });
        }
        if self.pfs_servers > 0 && self.pfs_replicas.max(1) > self.pfs_servers {
            return Err(ConfigError::TooManyPfsReplicas {
                replicas: self.pfs_replicas,
                servers: self.pfs_servers,
            });
        }
        Ok(())
    }
}

/// Builder for [`IoConfig`].
#[derive(Clone, Debug)]
pub struct IoConfigBuilder {
    devices: DeviceLayout,
    network: NetworkLayout,
    write_cache_mib: u64,
    raid5_coalesce: bool,
    pfs_servers: usize,
    pfs_stripe: u64,
    pfs_replicas: usize,
    name: Option<String>,
}

impl IoConfigBuilder {
    /// Starts from a device layout with the paper's defaults: dedicated
    /// data network and write-back cache enabled.
    pub fn new(devices: DeviceLayout) -> IoConfigBuilder {
        IoConfigBuilder {
            devices,
            network: NetworkLayout::Split,
            write_cache_mib: 256,
            raid5_coalesce: true,
            pfs_servers: 0,
            pfs_stripe: 64 * KIB,
            pfs_replicas: 1,
            name: None,
        }
    }

    /// Sets the network layout.
    pub fn network(mut self, network: NetworkLayout) -> Self {
        self.network = network;
        self
    }

    /// Sets the controller write-back cache size (0 disables).
    pub fn write_cache_mib(mut self, mib: u64) -> Self {
        self.write_cache_mib = mib;
        self
    }

    /// Enables/disables RAID 5 sequential parity coalescing.
    pub fn raid5_coalesce(mut self, on: bool) -> Self {
        self.raid5_coalesce = on;
        self
    }

    /// Deploys a parallel filesystem over `servers` compute nodes.
    pub fn pfs(mut self, servers: usize) -> Self {
        self.pfs_servers = servers;
        self
    }

    /// Sets the PFS stripe unit.
    pub fn pfs_stripe(mut self, stripe: u64) -> Self {
        self.pfs_stripe = stripe;
        self
    }

    /// Stores every PFS stripe chunk on `replicas` servers (chained
    /// placement), enabling failover when a server dies.
    pub fn pfs_replicas(mut self, replicas: usize) -> Self {
        self.pfs_replicas = replicas;
        self
    }

    /// Overrides the report label.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> IoConfig {
        IoConfig {
            name: self
                .name
                .unwrap_or_else(|| self.devices.label().to_string()),
            devices: self.devices,
            network: self.network,
            write_cache_mib: self.write_cache_mib,
            raid5_coalesce: self.raid5_coalesce,
            pfs_servers: self.pfs_servers,
            pfs_stripe: self.pfs_stripe,
            pfs_replicas: self.pfs_replicas,
        }
    }
}

/// The paper's three Aohyper configurations (Fig. 4): JBOD, RAID 1 and
/// RAID 5 — RAID arrays with write-back cache enabled.
pub fn aohyper_configs() -> Vec<IoConfig> {
    vec![
        IoConfigBuilder::new(DeviceLayout::Jbod)
            .write_cache_mib(0)
            .build(),
        IoConfigBuilder::new(DeviceLayout::Raid1).build(),
        IoConfigBuilder::new(DeviceLayout::raid5_paper()).build(),
    ]
}

/// Cluster A's single configuration: the front-end's RAID 5.
pub fn cluster_a_config() -> IoConfig {
    IoConfigBuilder::new(DeviceLayout::raid5_paper()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let c = IoConfigBuilder::new(DeviceLayout::raid5_paper()).build();
        assert_eq!(c.name, "RAID 5");
        assert_eq!(c.network, NetworkLayout::Split);
        assert!(c.raid5_coalesce);
        assert_eq!(c.write_cache_mib, 256);
    }

    #[test]
    fn builder_overrides() {
        let c = IoConfigBuilder::new(DeviceLayout::Jbod)
            .network(NetworkLayout::Shared)
            .write_cache_mib(64)
            .name("jbod-shared")
            .build();
        assert_eq!(c.name, "jbod-shared");
        assert_eq!(c.network, NetworkLayout::Shared);
        assert_eq!(c.write_cache_mib, 64);
    }

    #[test]
    fn aohyper_configs_are_the_papers_three() {
        let cs = aohyper_configs();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].devices.label(), "JBOD");
        assert_eq!(cs[1].devices.label(), "RAID 1");
        assert_eq!(cs[2].devices.label(), "RAID 5");
        // JBOD is a bare disk: no controller cache.
        assert_eq!(cs[0].write_cache_mib, 0);
    }

    #[test]
    fn validate_checks_raid_geometry_and_pfs_placement() {
        let spec = crate::presets::test_cluster();
        for config in aohyper_configs() {
            assert_eq!(config.validate(&spec), Ok(()));
        }
        let bad = IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 2,
            stripe: KIB,
        })
        .build();
        assert_eq!(
            bad.validate(&spec),
            Err(ConfigError::TooFewDisks {
                layout: "RAID 5",
                need: 3,
                got: 2
            })
        );
        let bad = IoConfigBuilder::new(DeviceLayout::Raid5 {
            disks: 5,
            stripe: 0,
        })
        .build();
        assert_eq!(
            bad.validate(&spec),
            Err(ConfigError::ZeroStripe { layout: "RAID 5" })
        );
        let bad = IoConfigBuilder::new(DeviceLayout::Jbod).pfs(10_000).build();
        assert!(matches!(
            bad.validate(&spec),
            Err(ConfigError::TooManyPfsServers { .. })
        ));
        let bad = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs(2)
            .pfs_replicas(3)
            .build();
        assert_eq!(
            bad.validate(&spec),
            Err(ConfigError::TooManyPfsReplicas {
                replicas: 3,
                servers: 2
            })
        );
        // Replication without a deployment is inert, not an error.
        let ok = IoConfigBuilder::new(DeviceLayout::Jbod)
            .pfs_replicas(3)
            .build();
        assert_eq!(ok.validate(&spec), Ok(()));
        // Errors read like sentences for report logs.
        assert!(bad
            .validate(&spec)
            .unwrap_err()
            .to_string()
            .contains("PFS servers"));
    }

    #[test]
    fn labels() {
        assert_eq!(DeviceLayout::Jbod.label(), "JBOD");
        assert_eq!(
            DeviceLayout::Raid0 {
                disks: 2,
                stripe: 64 * KIB
            }
            .label(),
            "RAID 0"
        );
    }
}
