//! # cluster — cluster composition and the paper's testbeds
//!
//! Assembles the substrate crates into complete machines:
//!
//! * [`spec::ClusterSpec`] — hardware description (nodes, RAM, disks,
//!   fabric) with presets for the paper's two testbeds:
//!   [`presets::aohyper`] (8 × dual-core nodes, 2 GB RAM, NFS server with
//!   JBOD / RAID 1 / RAID 5 and dual Gigabit Ethernet) and
//!   [`presets::cluster_a`] (32 × quad-core nodes, 12 GB RAM, NFS front-end
//!   with RAID 5).
//! * [`config::IoConfig`] — one point in the paper's *I/O configuration
//!   analysis* space: device layout (JBOD/RAID levels), controller
//!   write-back cache, network layout (shared or dedicated data network).
//! * [`machine::ClusterMachine`] — the [`mpisim::Machine`] implementation:
//!   routes each file to its mount (node-local filesystem, the NFS export,
//!   or directly to the I/O node's local filesystem for device-level
//!   characterization) and carries MPI traffic over the right fabric.

pub mod config;
pub mod machine;
pub mod presets;
pub mod scale;
pub mod spec;

pub use config::{ConfigError, DeviceLayout, IoConfig, IoConfigBuilder, NetworkLayout};
pub use machine::{ClusterMachine, Mount};
pub use scale::{scale_1024, ScaleMachine, ScaleSpec};
pub use spec::ClusterSpec;
