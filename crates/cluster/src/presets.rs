//! The paper's two testbeds, plus a miniature cluster for fast tests.

use crate::spec::ClusterSpec;
use netsim::FabricParams;
use simcore::GIB;
use storage::DiskParams;

/// The *Aohyper* cluster (paper §III): 8 nodes with AMD Athlon 64 X2
/// 3800+ processors, 2 GB RAM and a 150 GB local disk (ext4); an NFS
/// server with a RAID 1 pair (230 GB usable), a five-disk RAID 5
/// (stripe 256 KiB, 917 GB) — both with write-back cache — and a plain
/// disk for the JBOD configuration; two Gigabit Ethernet networks (one
/// for communication, one for data).
pub fn aohyper() -> ClusterSpec {
    ClusterSpec {
        name: "Aohyper".to_string(),
        compute_nodes: 8,
        node_ram: 2 * GIB,
        // 2007-era 150 GB SATA: ~72 MiB/s outer-track sequential.
        node_disk: DiskParams::sata_7200(150, 72),
        io_node_ram: 2 * GIB,
        // The server's member disks (230 GB usable per RAID 1 pair).
        server_disk: DiskParams::sata_7200(230, 75),
        fabric: FabricParams::gigabit_ethernet(),
        seed: 0xA0A0_1111,
    }
}

/// *Cluster A* (paper §IV): 32 compute nodes with 2 × dual-core Xeon
/// 3.00 GHz, 12 GB RAM and a 160 GB SATA disk, dual Gigabit Ethernet;
/// a front-end NFS server (dual-core Xeon 2.66 GHz, 8 GB RAM) with a
/// 1.8 TB RAID 5.
pub fn cluster_a() -> ClusterSpec {
    ClusterSpec {
        name: "Cluster A".to_string(),
        compute_nodes: 32,
        node_ram: 12 * GIB,
        // 2009-era 160 GB SATA: ~95 MiB/s.
        node_disk: DiskParams::sata_7200(160, 95),
        io_node_ram: 8 * GIB,
        server_disk: DiskParams::sata_7200(450, 100),
        fabric: FabricParams::gigabit_ethernet(),
        seed: 0xC1A5_2222,
    }
}

/// A miniature cluster for unit/integration tests and doctests: 4 nodes
/// with 256 MiB RAM and slow small disks, so scenarios finish in
/// milliseconds of host time.
pub fn test_cluster() -> ClusterSpec {
    ClusterSpec {
        name: "test".to_string(),
        compute_nodes: 4,
        node_ram: 256 * 1024 * 1024,
        node_disk: DiskParams::sata_7200(10, 60),
        io_node_ram: 256 * 1024 * 1024,
        server_disk: DiskParams::sata_7200(20, 70),
        fabric: FabricParams::gigabit_ethernet(),
        seed: 0x7E57_3333,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct_and_sized_like_the_paper() {
        let a = aohyper();
        let c = cluster_a();
        assert_eq!(a.compute_nodes, 8);
        assert_eq!(c.compute_nodes, 32);
        assert_eq!(a.node_ram, 2 * GIB);
        assert_eq!(c.node_ram, 12 * GIB);
        assert_eq!(c.io_node_ram, 8 * GIB);
        assert!(a.seed != c.seed);
    }

    #[test]
    fn test_cluster_is_small() {
        let t = test_cluster();
        assert!(t.node_ram < GIB);
        assert_eq!(t.compute_nodes, 4);
    }
}
