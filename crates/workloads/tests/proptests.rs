//! Property tests of workload geometry invariants.

use fs::FileId;
use proptest::prelude::*;
use workloads::{BtClass, BtIo, BtSubtype, FileType, MadBench};

fn square_procs() -> impl Strategy<Value = usize> {
    (2usize..9).prop_map(|n| n * n)
}

fn any_class() -> impl Strategy<Value = BtClass> {
    prop_oneof![
        Just(BtClass::S),
        Just(BtClass::A),
        Just(BtClass::B),
        Just(BtClass::C),
    ]
}

proptest! {
    /// The simple-subtype line decomposition partitions every dump exactly:
    /// offsets unique, sizes sum to the dump size, and per-rank op counts
    /// sum to the global line count.
    #[test]
    fn btio_lines_partition_dump(class in any_class(), procs in square_procs()) {
        let bt = BtIo::new(class, procs, BtSubtype::Simple);
        let mut bytes = 0u64;
        let mut offsets = std::collections::BTreeSet::new();
        for l in 0..bt.lines_per_dump() {
            let (off, sz) = bt.line_location(l);
            prop_assert!(offsets.insert(off), "duplicate offset for line {}", l);
            bytes += sz;
        }
        prop_assert_eq!(bytes, bt.dump_bytes());
        let per_rank: u64 = (0..procs).map(|r| bt.simple_ops_per_rank_per_dump(r)).sum();
        prop_assert_eq!(per_rank, bt.lines_per_dump());
    }

    /// The full-subtype chunks tile the dump contiguously for any square
    /// process count and class.
    #[test]
    fn btio_full_chunks_tile(class in any_class(), procs in square_procs()) {
        let bt = BtIo::new(class, procs, BtSubtype::Full);
        let mut expected = 0u64;
        for r in 0..procs {
            let (off, len) = bt.full_chunk(r);
            prop_assert_eq!(off, expected);
            prop_assert!(len > 0);
            expected += len;
        }
        prop_assert_eq!(expected, bt.dump_bytes());
    }

    /// Column extents always sum to the mesh edge, and line sizes follow.
    #[test]
    fn btio_columns_cover_mesh(class in any_class(), procs in square_procs()) {
        let bt = BtIo::new(class, procs, BtSubtype::Simple);
        let dims = bt.col_dims();
        prop_assert_eq!(dims.iter().sum::<u64>(), class.size());
        prop_assert_eq!(dims.len() as u64, bt.ncells());
        for (c, &d) in dims.iter().enumerate() {
            prop_assert_eq!(bt.line_bytes(c), 40 * d);
        }
    }

    /// MADbench SHARED offsets never overlap across (rank, bin) pairs and
    /// stay component-aligned; UNIQUE offsets are disjoint per file.
    #[test]
    fn madbench_offsets_disjoint(procs in square_procs(), kpix in 1u64..8) {
        for ft in [FileType::Shared, FileType::Unique] {
            let mb = MadBench::new(procs, ft).with_kpix(kpix);
            let comp = mb.component_bytes();
            prop_assume!(comp > 0);
            let mut seen = std::collections::BTreeSet::new();
            for r in 0..procs {
                for b in 0..mb.bins {
                    let key = (mb.file_of(r), mb.offset_of(r, b));
                    prop_assert!(seen.insert(key), "overlap {:?}", key);
                    prop_assert_eq!(key.1 % comp, 0, "unaligned offset");
                }
            }
        }
    }

    /// The file a rank uses is its own under UNIQUE and common under SHARED.
    #[test]
    fn madbench_file_identity(procs in square_procs()) {
        let unique = MadBench::new(procs, FileType::Unique);
        let shared = MadBench::new(procs, FileType::Shared);
        let unique_files: std::collections::BTreeSet<FileId> =
            (0..procs).map(|r| unique.file_of(r)).collect();
        prop_assert_eq!(unique_files.len(), procs);
        let shared_files: std::collections::BTreeSet<FileId> =
            (0..procs).map(|r| shared.file_of(r)).collect();
        prop_assert_eq!(shared_files.len(), 1);
    }
}
