//! Synthetic MADbench2 (IO mode).
//!
//! MADbench2 computes a CMB angular power spectrum from an `npix × npix`
//! pixel correlation matrix; in IO mode the dense algebra is replaced by
//! busy-work so the benchmark "tests the overall integrated performance of
//! the I/O, communication and calculation subsystems" through its three
//! I/O phases (paper §IV-E, Fig. 16, Table VIII):
//!
//! * **S** — builds and *writes* the `bins` component matrices (8 writes
//!   per process);
//! * **W** — *reads and rewrites* each component (8 reads + 8 writes);
//! * **C** — *reads* each component (8 reads).
//!
//! Per-process component size is `npix² × 8 / P` bytes: 162 MiB at 16
//! processes and 40.5 MiB at 64 (18 KPIX), matching Table VIII. Files are
//! either per-process (**UNIQUE**) or one shared file (**SHARED**);
//! `IOMODE = SYNC` issues an `MPI_File_sync` after every write.

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{MpiOp, VecStream};
use simcore::Time;

/// File organization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileType {
    /// One file per process.
    Unique,
    /// A single shared file.
    Shared,
}

/// Marker ids used to label the S / W / C functions in the trace.
pub mod markers {
    /// Start of the S (write) function.
    pub const S: u32 = 0;
    /// Start of the W (read+write) function.
    pub const W: u32 = 1;
    /// Start of the C (read) function.
    pub const C: u32 = 2;
}

/// A MADbench2 instance.
#[derive(Clone, Debug)]
pub struct MadBench {
    /// Number of processes (MADbench requires a square count).
    pub procs: usize,
    /// Pixel count in units of 1024 (the paper uses 18 KPIX).
    pub kpix: u64,
    /// Number of component matrices / bins (the paper uses 8).
    pub bins: usize,
    /// File organization.
    pub filetype: FileType,
    /// Mount the files live on.
    pub mount: Mount,
    /// Busy-work between I/O calls (IO-mode replacement of the algebra).
    pub busywork: Time,
    /// `IOMODE = SYNC`: sync after every write.
    pub sync_writes: bool,
    /// Base file id (UNIQUE uses `base + rank`).
    pub file_base: u64,
}

impl MadBench {
    /// The paper's configuration: 18 KPIX, 8 BIN, `IOMODE = SYNC`.
    pub fn new(procs: usize, filetype: FileType) -> MadBench {
        let side = (procs as f64).sqrt() as usize;
        assert_eq!(side * side, procs, "MADbench needs a square process count");
        MadBench {
            procs,
            kpix: 18,
            bins: 8,
            filetype,
            mount: Mount::NfsDirect,
            busywork: Time::from_millis(500),
            sync_writes: true,
            file_base: 0x3AD0,
        }
    }

    /// Shrinks the matrix for tests.
    pub fn with_kpix(mut self, kpix: u64) -> Self {
        self.kpix = kpix;
        self
    }

    /// Selects the mount.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Per-process component bytes: `npix² × 8 / P`.
    pub fn component_bytes(&self) -> u64 {
        let npix = self.kpix * 1024;
        npix * npix * 8 / self.procs as u64
    }

    /// The file a rank works on.
    pub fn file_of(&self, rank: usize) -> FileId {
        match self.filetype {
            FileType::Unique => FileId(self.file_base + rank as u64),
            FileType::Shared => FileId(self.file_base),
        }
    }

    /// Offset of component `bin` for `rank`.
    pub fn offset_of(&self, rank: usize, bin: usize) -> u64 {
        let comp = self.component_bytes();
        match self.filetype {
            FileType::Unique => bin as u64 * comp,
            FileType::Shared => {
                // Component matrices are global; each holds every rank's
                // share contiguously.
                let global_comp = comp * self.procs as u64;
                bin as u64 * global_comp + rank as u64 * comp
            }
        }
    }

    /// Total bytes written per process (S + W writes).
    pub fn bytes_written_per_proc(&self) -> u64 {
        2 * self.bins as u64 * self.component_bytes()
    }

    /// Builds the scenario.
    pub fn scenario(&self) -> Scenario {
        let comp = self.component_bytes();
        let mut programs: Vec<Box<dyn mpisim::OpStream>> = Vec::with_capacity(self.procs);
        for rank in 0..self.procs {
            let file = self.file_of(rank);
            let mut ops = Vec::new();
            ops.push(MpiOp::FileOpen { file, create: true });

            // S: busy-work + write each component.
            ops.push(MpiOp::Marker(markers::S));
            for b in 0..self.bins {
                ops.push(MpiOp::Compute(self.busywork));
                ops.push(MpiOp::WriteAt {
                    file,
                    offset: self.offset_of(rank, b),
                    len: comp,
                });
                if self.sync_writes {
                    ops.push(MpiOp::FileSync { file });
                }
            }
            ops.push(MpiOp::Barrier);

            // W: read, busy-work, rewrite each component.
            ops.push(MpiOp::Marker(markers::W));
            for b in 0..self.bins {
                ops.push(MpiOp::ReadAt {
                    file,
                    offset: self.offset_of(rank, b),
                    len: comp,
                });
                ops.push(MpiOp::Compute(self.busywork));
                ops.push(MpiOp::WriteAt {
                    file,
                    offset: self.offset_of(rank, b),
                    len: comp,
                });
                if self.sync_writes {
                    ops.push(MpiOp::FileSync { file });
                }
            }
            ops.push(MpiOp::Barrier);

            // C: read each component.
            ops.push(MpiOp::Marker(markers::C));
            for b in 0..self.bins {
                ops.push(MpiOp::ReadAt {
                    file,
                    offset: self.offset_of(rank, b),
                    len: comp,
                });
                ops.push(MpiOp::Compute(self.busywork));
            }
            ops.push(MpiOp::FileClose { file });
            programs.push(Box::new(VecStream::new(ops)));
        }

        let mounts = match self.filetype {
            FileType::Unique => (0..self.procs)
                .map(|r| (self.file_of(r), self.mount))
                .collect(),
            FileType::Shared => vec![(self.file_of(0), self.mount)],
        };
        Scenario {
            name: format!(
                "MADbench2 {:?} {} procs ({} KPIX, {} BIN)",
                self.filetype, self.procs, self.kpix, self.bins
            ),
            programs,
            mounts,
            prealloc: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_sizes_match_paper_table_8() {
        let mb16 = MadBench::new(16, FileType::Unique);
        // 18432² × 8 / 16 = 169,869,312 B = 162 MiB.
        assert_eq!(mb16.component_bytes(), 162 * 1024 * 1024);
        let mb64 = MadBench::new(64, FileType::Unique);
        // 40.5 MiB at 64 processes.
        assert_eq!(mb64.component_bytes(), 162 * 1024 * 1024 / 4);
    }

    #[test]
    fn op_counts_match_paper_phases() {
        let mb = MadBench::new(16, FileType::Shared).with_kpix(1);
        let mut sc = mb.scenario();
        let mut writes = 0;
        let mut reads = 0;
        let mut syncs = 0;
        while let Some(op) = sc.programs[0].next_op() {
            match op {
                MpiOp::WriteAt { .. } => writes += 1,
                MpiOp::ReadAt { .. } => reads += 1,
                MpiOp::FileSync { .. } => syncs += 1,
                _ => {}
            }
        }
        // S: 8 writes; W: 8 reads + 8 writes; C: 8 reads.
        assert_eq!(writes, 16);
        assert_eq!(reads, 16);
        assert_eq!(syncs, 16, "IOMODE=SYNC syncs every write");
    }

    #[test]
    fn unique_uses_one_file_per_rank() {
        let mb = MadBench::new(16, FileType::Unique);
        assert_ne!(mb.file_of(0), mb.file_of(1));
        assert_eq!(mb.offset_of(3, 2), 2 * mb.component_bytes());
        let sc = mb.scenario();
        assert_eq!(sc.mounts.len(), 16);
    }

    #[test]
    fn shared_interleaves_ranks_within_components() {
        let mb = MadBench::new(4, FileType::Shared).with_kpix(1);
        assert_eq!(mb.file_of(0), mb.file_of(3));
        let comp = mb.component_bytes();
        // Rank strides within a component; components stack globally.
        assert_eq!(mb.offset_of(1, 0), comp);
        assert_eq!(mb.offset_of(0, 1), 4 * comp);
        assert_eq!(mb.offset_of(2, 1), 4 * comp + 2 * comp);
        let sc = mb.scenario();
        assert_eq!(sc.mounts.len(), 1);
    }

    #[test]
    fn shared_offsets_never_overlap() {
        let mb = MadBench::new(9, FileType::Shared).with_kpix(3);
        let comp = mb.component_bytes();
        let mut offsets = std::collections::BTreeSet::new();
        for r in 0..9 {
            for b in 0..mb.bins {
                let off = mb.offset_of(r, b);
                assert!(offsets.insert(off));
                assert_eq!(off % comp, 0);
            }
        }
        assert_eq!(offsets.len(), 9 * 8);
    }

    #[test]
    fn markers_label_the_three_functions() {
        let mb = MadBench::new(4, FileType::Unique).with_kpix(1);
        let mut sc = mb.scenario();
        let mut marks = Vec::new();
        while let Some(op) = sc.programs[2].next_op() {
            if let MpiOp::Marker(id) = op {
                marks.push(id);
            }
        }
        assert_eq!(marks, vec![markers::S, markers::W, markers::C]);
    }

    #[test]
    fn bytes_written_accounting() {
        let mb = MadBench::new(16, FileType::Unique);
        assert_eq!(mb.bytes_written_per_proc(), 16 * 162 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "square process count")]
    fn non_square_rejected() {
        MadBench::new(6, FileType::Unique);
    }
}
