//! A declarative scenario grammar for campaign-scale what-if exploration.
//!
//! The paper evaluates a fixed set of hand-coded applications; this module
//! treats workloads as a *grammar* instead: named phases, counted and
//! nested loops, probabilistic branches, and op/size/stride distributions,
//! compiled down to the same op-program form every hand-coded workload
//! uses. A seeded sampler enumerates thousands of concrete variants
//! byte-reproducibly, so a campaign can sweep a workload × configuration
//! grid of 10k+ cells through the supervised scheduler.
//!
//! # Grammar text format
//!
//! Line comments start with `#`. Braces delimit blocks and must be
//! whitespace-separated or adjacent to a token.
//!
//! ```text
//! scenario mixed              # report label prefix
//! ranks 2|4                   # distribution over rank counts
//! file data                   # declare files (optional: on nfs|local|
//! file out on nfs             #   nfs-direct|pfs|server-local)
//!
//! phase checkpoint repeat 1..3 {      # counted loop over the body
//!   choose 3 {                        # probabilistic branch (weight 3)
//!     write data block 256K..1M pow2 count 4
//!   } or 1 {                          # weight 1
//!     write data block 64K count 8 stride 2
//!   }
//!   barrier
//! }
//! phase analyze {
//!   read data block 256K count 4
//!   compute 200..500                  # microseconds
//!   sync out
//! }
//! ```
//!
//! Distributions (`ranks`, `repeat`, `block`, `count`, `stride`,
//! `compute`, `loop`) accept a fixed value (`4M`), a uniform choice list
//! (`1M|4M|16M`), an inclusive integer range (`2..8`), or a power-of-two
//! range (`1M..16M pow2`). Sizes take binary `K`/`M`/`G` suffixes.
//!
//! # Determinism contract
//!
//! Variant `i` of a grammar under campaign seed `s` is resolved by a
//! dedicated [`simcore::SplitMix64`] stream seeded with
//! `seed_for(s, "<name>::v<i>")`: sampling is order-independent (variant
//! 7 is the same whether sampled alone, in a batch, or by a different
//! worker), and [`Variant::describe`] renders the resolved program
//! byte-identically on every host. All randomness is resolved *per
//! variant*, never per rank: every rank of a variant executes the same
//! op shape, differing only in rank-indexed file offsets, which is
//! exactly the contract [`mpisim::StreamSignature`] requires — so
//! generated programs without collective I/O are signed and rank-group
//! collapsing engages just as it does for the hand-coded workloads.

use crate::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{ChunkedStream, MpiOp, OpStream, SignedStream, StreamSignature};
use simcore::{seed_for, SplitMix64, Time};
use std::fmt::Write as _;
use std::sync::Arc;

/// FileIds handed to grammar-declared files, in declaration order. The
/// range is private to each evaluation cell (every cell builds its own
/// machine), so a fixed base keeps renders stable across runs.
const GRAMMAR_FILE_BASE: u64 = 0x9000;

/// Digest of a grammar source in *normalized* form — comments stripped,
/// blank lines dropped, runs of whitespace collapsed — so reformatting a
/// grammar does not move its grid identity. This is the value
/// [`Grammar::digest`] carries; it is exposed standalone so callers can
/// key caches/checkpoints by source text even when parsing fails.
pub fn source_digest(src: &str) -> u64 {
    let normalized: String = src
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .filter(|l| !l.trim().is_empty())
        .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" ") + "\n")
        .collect();
    fnv64(&normalized)
}

/// FNV-1a over a string — the digest used for grammar and variant
/// identity (stable across hosts and runs).
fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A typed grammar error: parse failures and semantic violations, with
/// the offending line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrammarError {
    /// 1-based source line of the defect (0 when not line-specific).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for GrammarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "grammar error: {}", self.message)
        } else {
            write!(f, "grammar error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for GrammarError {}

/// A distribution over `u64` values, sampled once per occurrence during
/// variant resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Dist {
    /// Always the same value.
    Fixed(u64),
    /// Uniform over an explicit list (`1M|4M|16M`).
    Choice(Vec<u64>),
    /// Uniform integer in `[lo, hi]` (`2..8`).
    Uniform {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Powers of two in `[lo, hi]` (`1M..16M pow2`).
    Pow2 {
        /// Inclusive lower bound (rounded up to a power of two).
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
}

impl Dist {
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            Dist::Fixed(v) => *v,
            Dist::Choice(vs) => vs[rng.next_below(vs.len() as u64) as usize],
            Dist::Uniform { lo, hi } => rng.range_inclusive(*lo, *hi),
            Dist::Pow2 { lo, hi } => {
                let lo_exp = 63 - lo.next_power_of_two().leading_zeros();
                let hi_exp = 63 - prev_power_of_two(*hi).leading_zeros();
                1u64 << rng.range_inclusive(lo_exp as u64, hi_exp as u64)
            }
        }
    }
}

fn prev_power_of_two(v: u64) -> u64 {
    debug_assert!(v > 0);
    1u64 << (63 - v.leading_zeros())
}

/// One rule inside a phase body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rule {
    /// A data I/O burst on a declared file.
    Io {
        /// Write (`true`) or read.
        write: bool,
        /// Collective (`WriteAtAll`/`ReadAtAll`) instead of independent.
        collective: bool,
        /// Index into the grammar's file declarations.
        file: usize,
        /// Bytes per operation.
        block: Dist,
        /// Operations per execution of this rule.
        count: Dist,
        /// Cursor advance per op, in blocks (1 = dense, k = strided).
        stride: Dist,
    },
    /// Pure computation (microseconds).
    Compute(Dist),
    /// World barrier.
    Barrier,
    /// `FileSync` on a declared file.
    Sync(usize),
    /// A counted loop; the body is re-resolved every iteration, so
    /// nested distributions re-draw per iteration.
    Loop {
        /// Iteration count.
        count: Dist,
        /// Body rules.
        body: Vec<Rule>,
    },
    /// A probabilistic branch: one arm is chosen per execution, weighted.
    Choose {
        /// `(weight, body)` arms.
        arms: Vec<(u64, Vec<Rule>)>,
    },
}

/// A named phase: `repeat` executions of its body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseRule {
    /// Phase name (report/debug label).
    pub name: String,
    /// How many times the body runs (re-resolved per repetition).
    pub repeat: Dist,
    /// Body rules.
    pub body: Vec<Rule>,
}

/// A declared file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FileDecl {
    /// Grammar-local name.
    pub name: String,
    /// Mount override (`None`: the configuration's default routing).
    pub mount: Option<Mount>,
}

/// A parsed scenario grammar — the workload *space*; [`Grammar::variant`]
/// and [`Grammar::sample`] draw concrete workloads from it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grammar {
    /// Scenario name (prefix of every variant label).
    pub name: String,
    /// Distribution over rank counts.
    pub ranks: Dist,
    /// Declared files, in declaration order.
    pub files: Vec<FileDecl>,
    /// Phases, in declaration order.
    pub phases: Vec<PhaseRule>,
    /// FNV-1a digest of the normalized source text: the grammar's
    /// identity in checkpoint keys and golden-grid pins.
    pub digest: u64,
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Tok {
    text: String,
    line: usize,
}

fn tokenize(src: &str) -> Vec<Tok> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let line = i + 1;
        let code = raw.split('#').next().unwrap_or("");
        for word in code.split_whitespace() {
            // Split braces into their own tokens even when adjacent.
            let mut rest = word;
            while let Some(pos) = rest.find(['{', '}']) {
                if pos > 0 {
                    out.push(Tok {
                        text: rest[..pos].to_string(),
                        line,
                    });
                }
                out.push(Tok {
                    text: rest[pos..=pos].to_string(),
                    line,
                });
                rest = &rest[pos + 1..];
            }
            if !rest.is_empty() {
                out.push(Tok {
                    text: rest.to_string(),
                    line,
                });
            }
        }
    }
    out
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, GrammarError> {
        let line = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line);
        Err(GrammarError {
            line,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&str> {
        self.toks.get(self.pos).map(|t| t.text.as_str())
    }

    fn next(&mut self) -> Option<&str> {
        let t = self.toks.get(self.pos).map(|t| t.text.as_str());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, what: &str) -> Result<(), GrammarError> {
        match self.peek() {
            Some(t) if t == what => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.to_string();
                self.err(format!("expected '{what}', found '{t}'"))
            }
            None => self.err(format!("expected '{what}', found end of input")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, GrammarError> {
        match self.next() {
            Some(t) if t != "{" && t != "}" => Ok(t.to_string()),
            Some(t) => {
                let t = t.to_string();
                self.err(format!("expected {what}, found '{t}'"))
            }
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    /// `64K` / `1M` / `4096` — a scalar with an optional binary suffix.
    fn scalar(&self, tok: &str) -> Result<u64, GrammarError> {
        let (digits, mult) = match tok.as_bytes().last() {
            Some(b'K' | b'k') => (&tok[..tok.len() - 1], 1u64 << 10),
            Some(b'M' | b'm') => (&tok[..tok.len() - 1], 1u64 << 20),
            Some(b'G' | b'g') => (&tok[..tok.len() - 1], 1u64 << 30),
            _ => (tok, 1),
        };
        let v: u64 = match digits.parse() {
            Ok(v) => v,
            Err(_) => return self.err(format!("expected a number, found '{tok}'")),
        };
        v.checked_mul(mult)
            .map_or_else(|| self.err(format!("value '{tok}' overflows")), Ok)
    }

    /// One distribution token (+ optional `pow2` modifier token).
    fn dist(&mut self, what: &str) -> Result<Dist, GrammarError> {
        let tok = match self.next() {
            Some(t) if t != "{" && t != "}" => t.to_string(),
            _ => return self.err(format!("expected {what} distribution")),
        };
        if let Some((lo, hi)) = tok.split_once("..") {
            let lo = self.scalar(lo)?;
            let hi = self.scalar(hi)?;
            if lo > hi || lo == 0 {
                return self.err(format!("bad range '{tok}' (need 0 < lo <= hi)"));
            }
            if self.peek() == Some("pow2") {
                self.pos += 1;
                if lo.next_power_of_two() > prev_power_of_two(hi) {
                    return self.err(format!("range '{tok}' contains no power of two"));
                }
                return Ok(Dist::Pow2 { lo, hi });
            }
            return Ok(Dist::Uniform { lo, hi });
        }
        if tok.contains('|') {
            let vs = tok
                .split('|')
                .map(|p| self.scalar(p))
                .collect::<Result<Vec<u64>, _>>()?;
            if vs.is_empty() || vs.contains(&0) {
                return self.err(format!("bad choice list '{tok}'"));
            }
            return Ok(Dist::Choice(vs));
        }
        let v = self.scalar(&tok)?;
        if v == 0 {
            return self.err(format!("{what} must be positive"));
        }
        Ok(Dist::Fixed(v))
    }

    fn file_ref(&mut self, files: &[FileDecl]) -> Result<usize, GrammarError> {
        let name = self.ident("a file name")?;
        match files.iter().position(|f| f.name == name) {
            Some(i) => Ok(i),
            None => self.err(format!("unknown file '{name}' (declare it with 'file')")),
        }
    }

    /// A `{ rule* }` block.
    fn block(&mut self, files: &[FileDecl]) -> Result<Vec<Rule>, GrammarError> {
        self.expect("{")?;
        let mut body = Vec::new();
        loop {
            match self.peek() {
                Some("}") => {
                    self.pos += 1;
                    return Ok(body);
                }
                Some(_) => body.push(self.rule(files)?),
                None => return self.err("unclosed '{'"),
            }
        }
    }

    fn rule(&mut self, files: &[FileDecl]) -> Result<Rule, GrammarError> {
        let kw = self.ident("a rule keyword")?;
        match kw.as_str() {
            "write" | "read" => {
                let write = kw == "write";
                let file = self.file_ref(files)?;
                self.expect("block")?;
                let block = self.dist("block size")?;
                let mut count = Dist::Fixed(1);
                let mut stride = Dist::Fixed(1);
                let mut collective = false;
                loop {
                    match self.peek() {
                        Some("count") => {
                            self.pos += 1;
                            count = self.dist("count")?;
                        }
                        Some("stride") => {
                            self.pos += 1;
                            stride = self.dist("stride")?;
                        }
                        Some("collective") => {
                            self.pos += 1;
                            collective = true;
                        }
                        _ => break,
                    }
                }
                Ok(Rule::Io {
                    write,
                    collective,
                    file,
                    block,
                    count,
                    stride,
                })
            }
            "compute" => Ok(Rule::Compute(self.dist("compute microseconds")?)),
            "barrier" => Ok(Rule::Barrier),
            "sync" => Ok(Rule::Sync(self.file_ref(files)?)),
            "loop" => {
                let count = self.dist("loop count")?;
                let body = self.block(files)?;
                Ok(Rule::Loop { count, body })
            }
            "choose" => {
                let mut arms = Vec::new();
                loop {
                    let weight = if self.peek() == Some("{") {
                        1
                    } else {
                        let tok = self.ident("an arm weight")?;
                        self.scalar(&tok)?
                    };
                    if weight == 0 {
                        return self.err("arm weight must be positive");
                    }
                    arms.push((weight, self.block(files)?));
                    if self.peek() == Some("or") {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                Ok(Rule::Choose { arms })
            }
            other => {
                let other = other.to_string();
                self.err(format!("unknown rule '{other}'"))
            }
        }
    }
}

impl Grammar {
    /// Parses a grammar from its text form.
    pub fn parse(src: &str) -> Result<Grammar, GrammarError> {
        let mut p = Parser {
            toks: tokenize(src),
            pos: 0,
        };
        let mut name = None;
        let mut ranks = Dist::Fixed(1);
        let mut files: Vec<FileDecl> = Vec::new();
        let mut phases: Vec<PhaseRule> = Vec::new();
        while let Some(kw) = p.peek() {
            match kw {
                "scenario" => {
                    p.pos += 1;
                    name = Some(p.ident("a scenario name")?);
                }
                "ranks" => {
                    p.pos += 1;
                    ranks = p.dist("ranks")?;
                }
                "file" => {
                    p.pos += 1;
                    let fname = p.ident("a file name")?;
                    if files.iter().any(|f| f.name == fname) {
                        return p.err(format!("duplicate file '{fname}'"));
                    }
                    let mount = if p.peek() == Some("on") {
                        p.pos += 1;
                        let m = p.ident("a mount name")?;
                        Some(match m.as_str() {
                            "nfs" => Mount::Nfs,
                            "local" => Mount::Local,
                            "nfs-direct" => Mount::NfsDirect,
                            "pfs" => Mount::Pfs,
                            "server-local" => Mount::ServerLocal,
                            other => {
                                let other = other.to_string();
                                return p.err(format!("unknown mount '{other}'"));
                            }
                        })
                    } else {
                        None
                    };
                    files.push(FileDecl { name: fname, mount });
                }
                "phase" => {
                    p.pos += 1;
                    let pname = p.ident("a phase name")?;
                    let repeat = if p.peek() == Some("repeat") {
                        p.pos += 1;
                        p.dist("repeat")?
                    } else {
                        Dist::Fixed(1)
                    };
                    let body = p.block(&files)?;
                    phases.push(PhaseRule {
                        name: pname,
                        repeat,
                        body,
                    });
                }
                other => {
                    let other = other.to_string();
                    return p.err(format!("unknown directive '{other}'"));
                }
            }
        }
        let Some(name) = name else {
            return Err(GrammarError {
                line: 0,
                message: "missing 'scenario <name>' directive".into(),
            });
        };
        if phases.is_empty() {
            return Err(GrammarError {
                line: 0,
                message: "a grammar needs at least one phase".into(),
            });
        }
        Ok(Grammar {
            name,
            ranks,
            files,
            phases,
            digest: source_digest(src),
        })
    }

    /// Resolves variant `index` under `seed` — fully deterministic and
    /// order-independent (see the module-level determinism contract).
    pub fn variant(&self, seed: u64, index: usize) -> Variant {
        let mut rng = SplitMix64::new(seed_for(seed, &format!("{}::v{index}", self.name)));
        let ranks = self.ranks.sample(&mut rng).max(1) as usize;
        let mut steps = Vec::new();
        for phase in &self.phases {
            let reps = phase.repeat.sample(&mut rng);
            for _ in 0..reps {
                resolve_rules(&phase.body, &mut rng, &mut steps);
            }
        }
        // Lay file cursors: each Io step claims the next span of its
        // file's per-rank segment (rank-independent; ranks shift by
        // `rank * seg` at compile time).
        let mut cursor = vec![0u64; self.files.len()];
        let mut any_write = vec![false; self.files.len()];
        let mut any_read = vec![false; self.files.len()];
        let mut used = vec![false; self.files.len()];
        for step in steps.iter_mut() {
            match step {
                Step::Io {
                    write,
                    file,
                    block,
                    count,
                    stride,
                    base,
                    ..
                } => {
                    *base = cursor[*file];
                    cursor[*file] = cursor[*file]
                        .saturating_add(count.saturating_mul(*stride).saturating_mul(*block));
                    used[*file] = true;
                    if *write {
                        any_write[*file] = true;
                    } else {
                        any_read[*file] = true;
                    }
                }
                Step::Sync(f) => used[*f] = true,
                _ => {}
            }
        }
        let files: Vec<VFile> = self
            .files
            .iter()
            .enumerate()
            .map(|(i, f)| VFile {
                id: FileId(GRAMMAR_FILE_BASE + i as u64),
                name: f.name.clone(),
                mount: f.mount,
                seg: cursor[i],
                used: used[i],
                any_write: any_write[i],
                any_read: any_read[i],
            })
            .collect();
        let mut v = Variant {
            label: format!("{}/v{index:04}", self.name),
            index,
            ranks,
            steps: Arc::new(steps),
            files: Arc::new(files),
            digest: 0,
        };
        v.digest = fnv64(&v.describe_body());
        v
    }

    /// Samples the first `n` variants under `seed`. Equivalent to calling
    /// [`Grammar::variant`] for each index — the batch introduces no
    /// cross-variant state.
    pub fn sample(&self, seed: u64, n: usize) -> Vec<Variant> {
        (0..n).map(|i| self.variant(seed, i)).collect()
    }
}

fn resolve_rules(rules: &[Rule], rng: &mut SplitMix64, out: &mut Vec<Step>) {
    for rule in rules {
        match rule {
            Rule::Io {
                write,
                collective,
                file,
                block,
                count,
                stride,
            } => out.push(Step::Io {
                write: *write,
                collective: *collective,
                file: *file,
                block: block.sample(rng),
                count: count.sample(rng),
                stride: stride.sample(rng),
                base: 0,
            }),
            Rule::Compute(micros) => out.push(Step::Compute(Time::from_micros(micros.sample(rng)))),
            Rule::Barrier => out.push(Step::Barrier),
            Rule::Sync(f) => out.push(Step::Sync(*f)),
            Rule::Loop { count, body } => {
                for _ in 0..count.sample(rng) {
                    resolve_rules(body, rng, out);
                }
            }
            Rule::Choose { arms } => {
                let total: u64 = arms.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.next_below(total);
                for (w, body) in arms {
                    if pick < *w {
                        resolve_rules(body, rng, out);
                        break;
                    }
                    pick -= *w;
                }
            }
        }
    }
}

/// One resolved, rank-independent step of a variant.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Step {
    Io {
        write: bool,
        collective: bool,
        file: usize,
        block: u64,
        count: u64,
        stride: u64,
        /// Per-rank-relative start offset within the file segment.
        base: u64,
    },
    Compute(Time),
    Barrier,
    Sync(usize),
}

#[derive(Clone, Debug)]
struct VFile {
    id: FileId,
    name: String,
    mount: Option<Mount>,
    /// Bytes of the file each rank touches (rank `r` owns
    /// `[r*seg, (r+1)*seg)`).
    seg: u64,
    used: bool,
    any_write: bool,
    any_read: bool,
}

/// A concrete workload drawn from a [`Grammar`]: all distributions and
/// branches resolved, ready to compile to a [`Scenario`] per evaluation
/// cell.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Campaign app label: `<grammar>/v<index>`.
    pub label: String,
    /// Sample index.
    pub index: usize,
    /// Resolved rank count.
    pub ranks: usize,
    steps: Arc<Vec<Step>>,
    files: Arc<Vec<VFile>>,
    /// FNV-1a digest of the resolved program shape (label-independent:
    /// two indices that resolve identically share a digest).
    pub digest: u64,
}

impl Variant {
    /// The resolved program, one line per step — the byte-stable form the
    /// reproducibility tests and golden grids compare.
    pub fn describe(&self) -> String {
        format!("{} {}", self.label, self.describe_body())
    }

    fn describe_body(&self) -> String {
        let mut s = format!("ranks={}", self.ranks);
        for f in self.files.iter().filter(|f| f.used) {
            let _ = write!(s, " {}[seg={}]", f.name, f.seg);
        }
        s.push('\n');
        for step in self.steps.iter() {
            match step {
                Step::Io {
                    write,
                    collective,
                    file,
                    block,
                    count,
                    stride,
                    base,
                } => {
                    let _ = writeln!(
                        s,
                        "  {}{} {} block={block} count={count} stride={stride} base={base}",
                        if *write { "write" } else { "read" },
                        if *collective { "-all" } else { "" },
                        self.files[*file].name,
                    );
                }
                Step::Compute(d) => {
                    let _ = writeln!(s, "  compute {}us", d.as_micros_f64());
                }
                Step::Barrier => s.push_str("  barrier\n"),
                Step::Sync(f) => {
                    let _ = writeln!(s, "  sync {}", self.files[*f].name);
                }
            }
        }
        s
    }

    /// Number of resolved steps (after loop unrolling and branch picks).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Per-rank op count (head opens + steps + tail syncs/closes).
    pub fn ops_per_rank(&self) -> u64 {
        let used = self.files.iter().filter(|f| f.used).count() as u64;
        let syncs = self.files.iter().filter(|f| f.used && f.any_write).count() as u64;
        let body: u64 = self
            .steps
            .iter()
            .map(|s| match s {
                Step::Io { count, .. } => *count,
                _ => 1,
            })
            .sum();
        used + body + syncs + used
    }

    /// Whether every rank program can carry a [`StreamSignature`]:
    /// collective I/O releases ranks through shared state the collapsed
    /// executor cannot model, so only purely independent variants sign
    /// (the same rule the hand-coded IOR workload applies).
    pub fn signable(&self) -> bool {
        !self.steps.iter().any(|s| {
            matches!(
                s,
                Step::Io {
                    collective: true,
                    ..
                }
            )
        })
    }

    /// Compiles the variant to a runnable [`Scenario`].
    pub fn scenario(&self) -> Scenario {
        let mounts = self
            .files
            .iter()
            .filter(|f| f.used)
            .filter_map(|f| f.mount.map(|m| (f.id, m)))
            .collect();
        // Files that are read get their whole span preallocated (and are
        // opened without create so the data survives the open) — reads of
        // never-written regions must hit real bytes.
        let prealloc = self
            .files
            .iter()
            .filter(|f| f.used && f.any_read && f.seg > 0)
            .map(|f| (f.id, f.seg * self.ranks as u64))
            .collect();
        let programs = (0..self.ranks).map(|r| self.program(r)).collect();
        Scenario {
            name: self.label.clone(),
            programs,
            mounts,
            prealloc,
        }
    }

    fn program(&self, rank: usize) -> Box<dyn OpStream> {
        let steps = Arc::clone(&self.steps);
        let files = Arc::clone(&self.files);
        let nchunks = steps.len() + 2;
        let stream = ChunkedStream::new(nchunks, move |i| {
            if i == 0 {
                return files
                    .iter()
                    .filter(|f| f.used)
                    .map(|f| MpiOp::FileOpen {
                        file: f.id,
                        create: f.any_write && !f.any_read,
                    })
                    .collect();
            }
            if i == nchunks - 1 {
                let mut tail: Vec<MpiOp> = files
                    .iter()
                    .filter(|f| f.used && f.any_write)
                    .map(|f| MpiOp::FileSync { file: f.id })
                    .collect();
                tail.extend(
                    files
                        .iter()
                        .filter(|f| f.used)
                        .map(|f| MpiOp::FileClose { file: f.id }),
                );
                return tail;
            }
            match &steps[i - 1] {
                Step::Io {
                    write,
                    collective,
                    file,
                    block,
                    count,
                    stride,
                    base,
                } => {
                    let f = &files[*file];
                    let rank_base = rank as u64 * f.seg + base;
                    (0..*count)
                        .map(|k| {
                            let offset = rank_base + k * stride * block;
                            match (*write, *collective) {
                                (true, false) => MpiOp::WriteAt {
                                    file: f.id,
                                    offset,
                                    len: *block,
                                },
                                (true, true) => MpiOp::WriteAtAll {
                                    file: f.id,
                                    offset,
                                    len: *block,
                                },
                                (false, false) => MpiOp::ReadAt {
                                    file: f.id,
                                    offset,
                                    len: *block,
                                },
                                (false, true) => MpiOp::ReadAtAll {
                                    file: f.id,
                                    offset,
                                    len: *block,
                                },
                            }
                        })
                        .collect()
                }
                Step::Compute(d) => vec![MpiOp::Compute(*d)],
                Step::Barrier => vec![MpiOp::Barrier],
                Step::Sync(fi) => vec![MpiOp::FileSync {
                    file: files[*fi].id,
                }],
            }
        });
        if self.signable() {
            // The shape string pins the full resolved program, so distinct
            // variants can never share a cohort; ranks of one variant
            // differ only by rank-indexed offsets, which the contract
            // explicitly allows.
            let sig = StreamSignature::from_shape(
                &format!("grammar|{:016x}|{}", self.digest, self.ranks),
                self.ops_per_rank(),
            );
            Box::new(SignedStream::new(Box::new(stream), sig))
        } else {
            Box::new(stream)
        }
    }
}

/// The worked example from the README: a checkpoint/analysis workload
/// space. Also the default grammar of the `scenario` experiment and the
/// source of the pinned golden grid.
pub const EXAMPLE: &str = "\
# Mixed checkpoint/analysis workload space (worked example).
scenario mixed
ranks 2|4
file data
file out

phase setup {
  compute 200..500
}
phase checkpoint repeat 1..3 {
  choose 3 {
    write data block 256K..1M pow2 count 4
  } or 1 {
    write data block 64K count 8 stride 2
  }
  barrier
}
phase analyze {
  read data block 256K count 4
  write out block 128K count 2
  sync out
}
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_grammar_parses() {
        let g = Grammar::parse(EXAMPLE).expect("example must parse");
        assert_eq!(g.name, "mixed");
        assert_eq!(g.files.len(), 2);
        assert_eq!(g.phases.len(), 3);
        assert_eq!(g.phases[1].name, "checkpoint");
        assert_eq!(g.phases[1].repeat, Dist::Uniform { lo: 1, hi: 3 });
        assert!(matches!(g.phases[1].body[0], Rule::Choose { .. }));
    }

    #[test]
    fn digest_ignores_comments_and_whitespace() {
        let a = Grammar::parse("scenario s\nphase p { barrier }").unwrap();
        let b = Grammar::parse("# hi\nscenario   s\n\nphase p {  barrier }  # x").unwrap();
        assert_eq!(a.digest, b.digest);
        let c = Grammar::parse("scenario s\nphase p { barrier barrier }").unwrap();
        assert_ne!(a.digest, c.digest);
    }

    #[test]
    fn parse_errors_are_typed_and_name_the_line() {
        let err = Grammar::parse("scenario s\nphase p {\n  write nosuch block 1M\n}")
            .expect_err("unknown file");
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown file 'nosuch'"), "{err}");

        let err = Grammar::parse("scenario s\nphase p {").expect_err("unclosed block");
        assert!(err.message.contains("unclosed"), "{err}");

        let err = Grammar::parse("phase p { barrier }").expect_err("missing scenario");
        assert!(err.message.contains("scenario"), "{err}");

        let err = Grammar::parse("scenario s\nfile f\nphase p { write f block 0 }")
            .expect_err("zero block");
        assert!(err.message.contains("positive"), "{err}");

        let err = Grammar::parse("scenario s\nfile f on floppy\nphase p { barrier }")
            .expect_err("bad mount");
        assert!(err.message.contains("unknown mount"), "{err}");
    }

    #[test]
    fn dist_sampling_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..200 {
            let v = Dist::Uniform { lo: 2, hi: 8 }.sample(&mut rng);
            assert!((2..=8).contains(&v));
            let p = Dist::Pow2 {
                lo: 1 << 18,
                hi: 1 << 20,
            }
            .sample(&mut rng);
            assert!(
                p.is_power_of_two() && (1 << 18..=1 << 20).contains(&p),
                "{p}"
            );
            let c = Dist::Choice(vec![3, 5, 9]).sample(&mut rng);
            assert!([3, 5, 9].contains(&c));
        }
    }

    #[test]
    fn fixed_seed_sampling_is_byte_reproducible() {
        let g = Grammar::parse(EXAMPLE).unwrap();
        let a: Vec<String> = g.sample(42, 32).iter().map(Variant::describe).collect();
        let b: Vec<String> = g.sample(42, 32).iter().map(Variant::describe).collect();
        assert_eq!(a, b);
        // Per-index resolution equals batch resolution: order-independent.
        for (i, d) in a.iter().enumerate() {
            assert_eq!(&g.variant(42, i).describe(), d);
        }
        // A different seed moves the space.
        let c: Vec<String> = g.sample(43, 32).iter().map(Variant::describe).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn variants_cover_the_grammar_space() {
        let g = Grammar::parse(EXAMPLE).unwrap();
        let vs = g.sample(1, 64);
        let ranks: std::collections::BTreeSet<usize> = vs.iter().map(|v| v.ranks).collect();
        assert_eq!(ranks.into_iter().collect::<Vec<_>>(), vec![2, 4]);
        let digests: std::collections::BTreeSet<u64> = vs.iter().map(|v| v.digest).collect();
        assert!(
            digests.len() > 16,
            "only {} distinct variants",
            digests.len()
        );
    }

    #[test]
    fn offsets_stay_inside_the_rank_segment() {
        let g = Grammar::parse(EXAMPLE).unwrap();
        for v in g.sample(9, 8) {
            let scenario = v.scenario();
            let mut max_off: std::collections::HashMap<u64, u64> = Default::default();
            for (rank, mut prog) in scenario.programs.into_iter().enumerate() {
                let _ = rank;
                while let Some(op) = prog.next_op() {
                    if let MpiOp::WriteAt { file, offset, len }
                    | MpiOp::ReadAt { file, offset, len } = op
                    {
                        let e = max_off.entry(file.0).or_default();
                        *e = (*e).max(offset + len);
                    }
                }
            }
            for f in v.files.iter().filter(|f| f.used && f.seg > 0) {
                let max = max_off.get(&f.id.0).copied().unwrap_or(0);
                assert!(
                    max <= f.seg * v.ranks as u64,
                    "{}: extent {max} beyond segment {}",
                    v.label,
                    f.seg * v.ranks as u64
                );
            }
        }
    }

    #[test]
    fn independent_variants_are_signed_and_op_counts_match() {
        let g = Grammar::parse(EXAMPLE).unwrap();
        let v = g.variant(5, 0);
        assert!(v.signable(), "example has no collective I/O");
        let scenario = v.scenario();
        for mut prog in scenario.programs {
            assert!(prog.signature().is_some(), "programs must be signed");
            let mut n = 0u64;
            while prog.next_op().is_some() {
                n += 1;
            }
            assert_eq!(n, v.ops_per_rank(), "signature op count must be exact");
        }
    }

    #[test]
    fn collective_variants_stay_unsigned() {
        let g =
            Grammar::parse("scenario c\nfile f\nphase p { write f block 1M count 2 collective }")
                .unwrap();
        let v = g.variant(5, 0);
        assert!(!v.signable());
        let scenario = v.scenario();
        for prog in &scenario.programs {
            assert!(prog.signature().is_none());
        }
    }

    #[test]
    fn read_files_are_preallocated_and_not_truncated() {
        let g = Grammar::parse(
            "scenario r\nranks 2\nfile input\nphase p { read input block 1M count 3 }",
        )
        .unwrap();
        let v = g.variant(3, 0);
        let scenario = v.scenario();
        assert_eq!(
            scenario.prealloc,
            vec![(FileId(GRAMMAR_FILE_BASE), 6 << 20)]
        );
        let mut prog = scenario.programs.into_iter().next().unwrap();
        match prog.next_op() {
            Some(MpiOp::FileOpen { create, .. }) => {
                assert!(!create, "preallocated input must not be truncated")
            }
            other => panic!("expected open, got {other:?}"),
        }
    }

    #[test]
    fn generated_variant_evaluates_end_to_end() {
        use cluster::{presets, DeviceLayout, IoConfigBuilder};
        let g = Grammar::parse(EXAMPLE).unwrap();
        let v = g.variant(11, 0);
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut machine = cluster::ClusterMachine::try_new(&spec, &config).expect("valid config");
        let programs = v.scenario().install(&mut machine);
        let placement = spec.placement(v.ranks);
        let mut sink = mpisim::NullSink;
        let stats = mpisim::Runtime::default()
            .run_supervised(&mut machine, &placement, programs, &mut sink, None)
            .expect("generated program must run clean");
        assert!(stats.wall_time > Time::ZERO);
        assert!(stats.total_bytes() > 0);
    }
}
