//! An IOzone-like filesystem exerciser.
//!
//! IOzone measures one access pattern at a time: it streams a file of a
//! configured size in records of a configured size. The paper runs it "at
//! block level with a file size which doubles the main memory size, and the
//! block size was changed from 32KB to 16MB" against the local and network
//! filesystems (Figs. 5/13).

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{ChainStream, GenStream, MpiOp, VecStream};
use simcore::SplitMix64;

/// The access pattern of one IOzone measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IozonePattern {
    /// Stream the file front to back, writing.
    SeqWrite,
    /// Stream the file front to back, reading.
    SeqRead,
    /// Write records at a fixed stride (record, skip, record, ...).
    StridedWrite,
    /// Read records at a fixed stride.
    StridedRead,
    /// Write records at uniformly random record-aligned offsets.
    RandWrite,
    /// Read records at uniformly random record-aligned offsets.
    RandRead,
}

impl IozonePattern {
    /// Whether the pattern writes.
    pub fn is_write(self) -> bool {
        matches!(
            self,
            IozonePattern::SeqWrite | IozonePattern::StridedWrite | IozonePattern::RandWrite
        )
    }

    /// The paper's access-mode label.
    pub fn mode_label(self) -> &'static str {
        match self {
            IozonePattern::SeqWrite | IozonePattern::SeqRead => "sequential",
            IozonePattern::StridedWrite | IozonePattern::StridedRead => "strided",
            IozonePattern::RandWrite | IozonePattern::RandRead => "random",
        }
    }
}

/// One IOzone measurement point.
#[derive(Clone, Debug)]
pub struct IozoneRun {
    /// File under test.
    pub file: FileId,
    /// Total file size (the paper uses 2× node RAM).
    pub file_size: u64,
    /// Record (block) size.
    pub record: u64,
    /// Access pattern.
    pub pattern: IozonePattern,
    /// Stride multiplier for the strided patterns (offset advances by
    /// `stride_factor × record` per operation).
    pub stride_factor: u64,
    /// RNG seed for the random patterns.
    pub seed: u64,
    /// Mount the file lives on.
    pub mount: Mount,
}

impl IozoneRun {
    /// A measurement with the paper's defaults (stride ×4).
    pub fn new(file: FileId, file_size: u64, record: u64, pattern: IozonePattern) -> IozoneRun {
        assert!(record > 0 && file_size >= record);
        IozoneRun {
            file,
            file_size,
            record,
            pattern,
            stride_factor: 4,
            seed: 0x10_20_30,
            mount: Mount::ServerLocal,
        }
    }

    /// Selects the mount under test.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Number of record operations the run performs.
    pub fn ops(&self) -> u64 {
        match self.pattern {
            IozonePattern::SeqWrite | IozonePattern::SeqRead => self.file_size / self.record,
            IozonePattern::StridedWrite | IozonePattern::StridedRead => {
                self.file_size / (self.record * self.stride_factor)
            }
            // Random touches as many records as a sequential pass would,
            // over the same extent.
            IozonePattern::RandWrite | IozonePattern::RandRead => self.file_size / self.record,
        }
    }

    /// Builds the single-process scenario for this measurement.
    pub fn scenario(&self) -> Scenario {
        let record = self.record;
        let file = self.file;
        let n = self.ops() as usize;
        let records_in_file = self.file_size / record;
        let write = self.pattern.is_write();
        let is_read_pattern = !write;

        let mut ops: Vec<MpiOp> = Vec::with_capacity(2);
        ops.push(MpiOp::FileOpen {
            file,
            create: write,
        });

        let stride = self.stride_factor;
        let mut rng = SplitMix64::new(self.seed);
        let pattern = self.pattern;
        let body = GenStream::new(n, move |i| {
            let offset = match pattern {
                IozonePattern::SeqWrite | IozonePattern::SeqRead => i as u64 * record,
                IozonePattern::StridedWrite | IozonePattern::StridedRead => {
                    i as u64 * record * stride
                }
                IozonePattern::RandWrite | IozonePattern::RandRead => {
                    rng.next_below(records_in_file) * record
                }
            };
            if write {
                MpiOp::WriteAt {
                    file,
                    offset,
                    len: record,
                }
            } else {
                MpiOp::ReadAt {
                    file,
                    offset,
                    len: record,
                }
            }
        });

        let tail = vec![MpiOp::FileSync { file }, MpiOp::FileClose { file }];

        let program: Box<dyn mpisim::OpStream> = Box::new(ChainStream::new(vec![
            Box::new(VecStream::new(ops)),
            Box::new(body),
            Box::new(VecStream::new(tail)),
        ]));

        Scenario {
            name: format!(
                "iozone {} {} record={}",
                self.pattern.mode_label(),
                if write { "write" } else { "read" },
                record
            ),
            programs: vec![program],
            mounts: vec![(file, self.mount)],
            prealloc: if is_read_pattern {
                // Reads need pre-existing content covering the whole extent
                // the pattern can touch.
                let extent = match self.pattern {
                    IozonePattern::StridedRead => self.file_size * stride,
                    _ => self.file_size,
                };
                vec![(file, extent)]
            } else {
                Vec::new()
            },
        }
    }
}

/// The paper's record-size sweep: 32 KiB to 16 MiB in powers of two.
pub fn paper_record_sweep() -> Vec<u64> {
    let mut v = Vec::new();
    let mut r = 32 * 1024u64;
    while r <= 16 * 1024 * 1024 {
        v.push(r);
        r *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::OpStream;
    use simcore::MIB;

    fn drain(s: &mut Box<dyn OpStream>) -> Vec<MpiOp> {
        let mut v = Vec::new();
        while let Some(op) = s.next_op() {
            v.push(op);
        }
        v
    }

    #[test]
    fn sweep_is_32k_to_16m() {
        let s = paper_record_sweep();
        assert_eq!(s.first(), Some(&(32 * 1024)));
        assert_eq!(s.last(), Some(&(16 * MIB)));
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn sequential_write_covers_file_exactly() {
        let run = IozoneRun::new(FileId(1), 8 * MIB, MIB, IozonePattern::SeqWrite);
        let mut sc = run.scenario();
        let ops = drain(&mut sc.programs[0]);
        let writes: Vec<_> = ops
            .iter()
            .filter_map(|op| match op {
                MpiOp::WriteAt { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(writes.len(), 8);
        assert_eq!(writes[0], (0, MIB));
        assert_eq!(writes[7], (7 * MIB, MIB));
        // Open at the front, sync+close at the back.
        assert!(matches!(ops[0], MpiOp::FileOpen { create: true, .. }));
        assert!(matches!(ops[ops.len() - 2], MpiOp::FileSync { .. }));
        assert!(matches!(ops[ops.len() - 1], MpiOp::FileClose { .. }));
    }

    #[test]
    fn read_patterns_preallocate_input() {
        let run = IozoneRun::new(FileId(1), 8 * MIB, MIB, IozonePattern::SeqRead);
        let sc = run.scenario();
        assert_eq!(sc.prealloc, vec![(FileId(1), 8 * MIB)]);
        let run = IozoneRun::new(FileId(1), 8 * MIB, MIB, IozonePattern::SeqWrite);
        assert!(run.scenario().prealloc.is_empty());
    }

    #[test]
    fn strided_read_strides_by_factor() {
        let run = IozoneRun::new(FileId(1), 16 * MIB, MIB, IozonePattern::StridedRead);
        let mut sc = run.scenario();
        let ops = drain(&mut sc.programs[0]);
        let offs: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                MpiOp::ReadAt { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert_eq!(offs, vec![0, 4 * MIB, 8 * MIB, 12 * MIB]);
    }

    #[test]
    fn random_reads_stay_in_bounds_and_are_deterministic() {
        let mk = || {
            let run = IozoneRun::new(FileId(1), 64 * MIB, MIB, IozonePattern::RandRead);
            let mut sc = run.scenario();
            drain(&mut sc.programs[0])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "random pattern must be seed-deterministic");
        for op in &a {
            if let MpiOp::ReadAt { offset, len, .. } = op {
                assert!(offset + len <= 64 * MIB);
                assert_eq!(offset % MIB, 0, "record-aligned");
            }
        }
    }

    #[test]
    fn op_counts_by_pattern() {
        let base = |p| IozoneRun::new(FileId(1), 64 * MIB, MIB, p).ops();
        assert_eq!(base(IozonePattern::SeqWrite), 64);
        assert_eq!(base(IozonePattern::RandRead), 64);
        assert_eq!(base(IozonePattern::StridedRead), 16);
    }
}
