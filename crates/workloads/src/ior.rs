//! An IOR-like MPI-IO benchmark.
//!
//! IOR writes (then reads) a shared file: each of N ranks owns a contiguous
//! *block* and moves it in *transfer*-sized units through the I/O library.
//! The paper configures it with "32GB size of file on RAID configurations
//! and 12 GB on JBOD, from 1MB to 1024MB block size and transfer block size
//! of 256KB ... launched with 8 processes" to characterize the library
//! level (Figs. 6/14).

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{ChainStream, GenStream, MpiOp, VecStream};

/// Direction of one IOR pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IorOp {
    /// Write pass.
    Write,
    /// Read pass.
    Read,
}

/// An IOR run description.
#[derive(Clone, Debug)]
pub struct Ior {
    /// Number of ranks.
    pub ranks: usize,
    /// Target file.
    pub file: FileId,
    /// Contiguous bytes owned by each rank.
    pub block: u64,
    /// Transfer unit.
    pub transfer: u64,
    /// Whether to use collective (`_at_all`) operations.
    pub collective: bool,
    /// Direction.
    pub op: IorOp,
    /// Mount under test.
    pub mount: Mount,
}

impl Ior {
    /// An independent-I/O IOR over NFS with the paper's 256 KiB transfers.
    pub fn new(ranks: usize, file: FileId, block: u64, op: IorOp) -> Ior {
        assert!(ranks > 0 && block > 0);
        Ior {
            ranks,
            file,
            block,
            transfer: 256 * 1024,
            collective: false,
            op,
            mount: Mount::NfsDirect,
        }
    }

    /// Switches to collective operations.
    pub fn collective(mut self) -> Self {
        self.collective = true;
        self
    }

    /// Selects the mount under test.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Total file size (`ranks × block`).
    pub fn file_size(&self) -> u64 {
        self.ranks as u64 * self.block
    }

    /// Transfers per rank.
    pub fn transfers_per_rank(&self) -> u64 {
        self.block.div_ceil(self.transfer)
    }

    /// Builds the scenario.
    pub fn scenario(&self) -> Scenario {
        let is_write = self.op == IorOp::Write;
        let mut programs: Vec<Box<dyn mpisim::OpStream>> = Vec::with_capacity(self.ranks);
        for r in 0..self.ranks {
            let base = r as u64 * self.block;
            let file = self.file;
            let transfer = self.transfer;
            let block = self.block;
            let collective = self.collective;
            let n = self.transfers_per_rank() as usize;
            let head = VecStream::new(vec![MpiOp::FileOpen {
                file,
                create: is_write,
            }]);
            let body = GenStream::new(n, move |i| {
                let offset = base + i as u64 * transfer;
                let len = transfer.min(block - i as u64 * transfer);
                match (is_write, collective) {
                    (true, false) => MpiOp::WriteAt { file, offset, len },
                    (true, true) => MpiOp::WriteAtAll { file, offset, len },
                    (false, false) => MpiOp::ReadAt { file, offset, len },
                    (false, true) => MpiOp::ReadAtAll { file, offset, len },
                }
            });
            let tail_ops = if is_write {
                vec![MpiOp::FileSync { file }, MpiOp::FileClose { file }]
            } else {
                vec![MpiOp::FileClose { file }]
            };
            let total_ops = 1 + n as u64 + tail_ops.len() as u64;
            let tail = VecStream::new(tail_ops);
            let chained: Box<dyn mpisim::OpStream> = Box::new(ChainStream::new(vec![
                Box::new(head),
                Box::new(body),
                Box::new(tail),
            ]));
            programs.push(if collective {
                chained
            } else {
                // Independent-I/O IOR is rank-symmetric: every rank runs
                // the same open/transfer/sync/close sequence and only the
                // offsets are rank-indexed — exactly the contract of a
                // stream signature, so symmetric runs may collapse.
                let sig = mpisim::StreamSignature::from_shape(
                    &format!(
                        "ior|{:?}|{:?}|{}|{}|{}",
                        self.op, self.file, self.block, self.transfer, is_write
                    ),
                    total_ops,
                );
                Box::new(mpisim::SignedStream::new(chained, sig))
            });
        }
        Scenario {
            name: format!(
                "IOR {:?} {} ranks, block {}, xfer {}{}",
                self.op,
                self.ranks,
                simcore::fmt_bytes(self.block),
                simcore::fmt_bytes(self.transfer),
                if self.collective { ", collective" } else { "" }
            ),
            programs,
            mounts: vec![(self.file, self.mount)],
            prealloc: if is_write {
                Vec::new()
            } else {
                vec![(self.file, self.file_size())]
            },
        }
    }
}

/// The paper's block-size sweep: 1 MiB to 1024 MiB in powers of two.
pub fn paper_block_sweep() -> Vec<u64> {
    let mut v = Vec::new();
    let mut b = 1024 * 1024u64;
    while b <= 1024 * 1024 * 1024 {
        v.push(b);
        b *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::OpStream;
    use simcore::MIB;

    fn drain(s: &mut Box<dyn OpStream>) -> Vec<MpiOp> {
        let mut v = Vec::new();
        while let Some(op) = s.next_op() {
            v.push(op);
        }
        v
    }

    #[test]
    fn block_sweep_spans_1m_to_1g() {
        let s = paper_block_sweep();
        assert_eq!(s.first(), Some(&MIB));
        assert_eq!(s.last(), Some(&(1024 * MIB)));
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn ranks_own_disjoint_contiguous_blocks() {
        let ior = Ior::new(4, FileId(9), 4 * MIB, IorOp::Write);
        let mut sc = ior.scenario();
        assert_eq!(sc.ranks(), 4);
        for (r, program) in sc.programs.iter_mut().enumerate() {
            let ops = drain(program);
            let writes: Vec<(u64, u64)> = ops
                .iter()
                .filter_map(|op| match op {
                    MpiOp::WriteAt { offset, len, .. } => Some((*offset, *len)),
                    _ => None,
                })
                .collect();
            assert_eq!(writes.len(), 16, "4 MiB / 256 KiB transfers");
            assert_eq!(writes[0].0, r as u64 * 4 * MIB);
            let total: u64 = writes.iter().map(|(_, l)| l).sum();
            assert_eq!(total, 4 * MIB);
        }
    }

    #[test]
    fn collective_variant_uses_all_ops() {
        let ior = Ior::new(2, FileId(9), MIB, IorOp::Write).collective();
        let mut sc = ior.scenario();
        let ops = drain(&mut sc.programs[0]);
        assert!(ops.iter().any(|op| matches!(op, MpiOp::WriteAtAll { .. })));
        assert!(!ops.iter().any(|op| matches!(op, MpiOp::WriteAt { .. })));
    }

    #[test]
    fn read_run_preallocates_whole_file() {
        let ior = Ior::new(8, FileId(9), 2 * MIB, IorOp::Read);
        let sc = ior.scenario();
        assert_eq!(sc.prealloc, vec![(FileId(9), 16 * MIB)]);
        let mut sc = Ior::new(8, FileId(9), 2 * MIB, IorOp::Read).scenario();
        let ops = drain(&mut sc.programs[7]);
        assert!(ops.iter().any(|op| matches!(op, MpiOp::ReadAt { .. })));
        // Read pass does not fsync.
        assert!(!ops.iter().any(|op| matches!(op, MpiOp::FileSync { .. })));
    }

    #[test]
    fn last_transfer_handles_non_multiple_blocks() {
        let ior = Ior::new(1, FileId(9), MIB + 100 * 1024, IorOp::Write);
        let mut sc = ior.scenario();
        let ops = drain(&mut sc.programs[0]);
        let lens: Vec<u64> = ops
            .iter()
            .filter_map(|op| match op {
                MpiOp::WriteAt { len, .. } => Some(*len),
                _ => None,
            })
            .collect();
        assert_eq!(lens.iter().sum::<u64>(), MIB + 100 * 1024);
        assert_eq!(*lens.last().unwrap(), 100 * 1024);
    }
}
