//! Synthetic NAS BT-IO.
//!
//! BT solves a block-tridiagonal system with a diagonal multi-partitioning:
//! with `P = ncells²` processes each rank owns `ncells` Cartesian cells.
//! Every 5 time steps the whole solution (5 doubles per mesh point) is
//! dumped; after all steps the dumps are read back for verification.
//!
//! Two I/O subtypes (paper §III-A.2):
//!
//! * **full** — MPI-IO with collective buffering: the dump is rearranged so
//!   each rank contributes one contiguous chunk of `dump_size / P` bytes
//!   (class C, 16 procs: 10.1 MiB — paper Table II's "10 MB"; 64 procs:
//!   2.53 MiB — Table V's "2.54 MB").
//! * **simple** — MPI-IO without collective buffering: each rank writes its
//!   x-lines individually. A line holds `5 × 8 × col_dim` bytes where
//!   `col_dim` is the x-extent of the owning cell column; class C/16p gives
//!   the paper's 1600/1640-byte operations, 6561 per rank per dump
//!   (4,199,040 writes overall), class C/64p gives 800/840 bytes.
//!
//! The communication skeleton issues 24 face exchanges per time step —
//! 120 messages between consecutive dumps, matching the paper's trace
//! description of Fig. 8 — plus per-step computation.

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{ChunkedStream, MpiOp};
use simcore::Time;

/// NAS problem classes (mesh edge size).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BtClass {
    /// 24³ mesh (mini, for tests).
    S,
    /// 64³ mesh.
    A,
    /// 102³ mesh.
    B,
    /// 162³ mesh (the paper's experiments).
    C,
    /// 408³ mesh.
    D,
}

impl BtClass {
    /// Mesh edge length.
    pub fn size(self) -> u64 {
        match self {
            BtClass::S => 24,
            BtClass::A => 64,
            BtClass::B => 102,
            BtClass::C => 162,
            BtClass::D => 408,
        }
    }

    /// Label ("C").
    pub fn label(self) -> &'static str {
        match self {
            BtClass::S => "S",
            BtClass::A => "A",
            BtClass::B => "B",
            BtClass::C => "C",
            BtClass::D => "D",
        }
    }
}

/// The I/O subtype.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BtSubtype {
    /// Collective buffering (`MPI_File_write_at_all`).
    Full,
    /// Independent small strided operations.
    Simple,
}

/// A BT-IO instance.
#[derive(Clone, Debug)]
pub struct BtIo {
    /// Problem class.
    pub class: BtClass,
    /// Number of processes (must be a perfect square).
    pub procs: usize,
    /// I/O subtype.
    pub subtype: BtSubtype,
    /// Output file.
    pub file: FileId,
    /// Mount the file lives on.
    pub mount: Mount,
    /// Number of solution dumps (the benchmark's 200 steps / 5 = 40).
    pub dumps: usize,
    /// Time steps between dumps.
    pub steps_per_dump: usize,
    /// Per-rank compute throughput used to derive per-step compute time.
    pub gflops_per_rank: f64,
    /// Whether the verification read phase runs.
    pub read_phase: bool,
}

impl BtIo {
    /// The paper's configuration for a class/process count.
    pub fn new(class: BtClass, procs: usize, subtype: BtSubtype) -> BtIo {
        let ncells = (procs as f64).sqrt() as usize;
        assert_eq!(ncells * ncells, procs, "BT needs a square process count");
        BtIo {
            class,
            procs,
            subtype,
            file: FileId(0xB710),
            mount: Mount::NfsDirect,
            dumps: 40,
            steps_per_dump: 5,
            gflops_per_rank: 1.0,
            read_phase: true,
        }
    }

    /// Shrinks the run (fewer dumps) for tests.
    pub fn with_dumps(mut self, dumps: usize) -> Self {
        self.dumps = dumps;
        self
    }

    /// Selects the mount.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Sets per-rank compute speed.
    pub fn gflops(mut self, g: f64) -> Self {
        self.gflops_per_rank = g;
        self
    }

    /// √P: cells per dimension and per rank.
    pub fn ncells(&self) -> u64 {
        (self.procs as f64).sqrt() as u64
    }

    /// x-extents of the cell columns (larger columns first).
    pub fn col_dims(&self) -> Vec<u64> {
        let size = self.class.size();
        let n = self.ncells();
        let base = size / n;
        let extra = size % n;
        (0..n)
            .map(|c| if c < extra { base + 1 } else { base })
            .collect()
    }

    /// Bytes of one x-line in column `c` (5 doubles per point).
    pub fn line_bytes(&self, c: usize) -> u64 {
        5 * 8 * self.col_dims()[c]
    }

    /// Lines per column (one per (y,z) pair).
    pub fn lines_per_col(&self) -> u64 {
        let s = self.class.size();
        s * s
    }

    /// Total lines per dump.
    pub fn lines_per_dump(&self) -> u64 {
        self.lines_per_col() * self.ncells()
    }

    /// Bytes of one complete dump (`40 × size³`).
    pub fn dump_bytes(&self) -> u64 {
        let s = self.class.size();
        5 * 8 * s * s * s
    }

    /// Per-rank contiguous chunk in the *full* subtype.
    pub fn full_chunk(&self, rank: usize) -> (u64, u64) {
        let d = self.dump_bytes();
        let p = self.procs as u64;
        let base = d / p;
        let rem = d % p;
        let r = rank as u64;
        // First `rem` ranks get one extra byte; offsets stay contiguous.
        let offset = r * base + r.min(rem);
        let len = base + if r < rem { 1 } else { 0 };
        (offset, len)
    }

    /// Byte offset of line `l` (global index) within a dump, and its size.
    pub fn line_location(&self, l: u64) -> (u64, u64) {
        let lpc = self.lines_per_col();
        let c = (l / lpc) as usize;
        let j = l % lpc;
        let dims = self.col_dims();
        let mut base = 0u64;
        for (i, &d) in dims.iter().enumerate() {
            if i == c {
                break;
            }
            base += lpc * 5 * 8 * d;
        }
        let sz = 5 * 8 * dims[c];
        (base + j * sz, sz)
    }

    /// Per-step compute time derived from the mesh size and rank speed.
    pub fn step_compute(&self) -> Time {
        let s = self.class.size() as f64;
        let flops = 3000.0 * s * s * s / self.procs as f64;
        Time::from_secs_f64(flops / (self.gflops_per_rank * 1e9))
    }

    /// Face-exchange message size (one cell face of 5 doubles per point).
    pub fn face_bytes(&self) -> u64 {
        let d = self.class.size() / self.ncells();
        5 * 8 * d * d / 5 // one component's face — keeps it under the eager limit
    }

    /// Writes per rank per dump in the simple subtype (paper Table II: 6561
    /// for class C / 16 procs).
    pub fn simple_ops_per_rank_per_dump(&self, rank: usize) -> u64 {
        let total = self.lines_per_dump();
        let p = self.procs as u64;
        total / p + if (rank as u64) < total % p { 1 } else { 0 }
    }

    /// The communication+compute ops of one time step for `rank`: BT's
    /// solver sweeps post nonblocking receives, issue the face sends, and
    /// complete them with `MPI_Waitall` — the "120 messages sent and their
    /// respective Wait and Wait All" visible in the paper's Fig. 8 traces.
    fn step_ops(&self, rank: usize, step_id: usize, out: &mut Vec<MpiOp>) {
        out.push(MpiOp::Compute(self.step_compute()));
        let p = self.procs;
        if p < 2 {
            return;
        }
        let face = self.face_bytes();
        // Three solver sweeps of 8 exchanges each (= 24 messages/step).
        for sweep in 0..3usize {
            for m in 0..8usize {
                let idx = step_id * 24 + sweep * 8 + m;
                let k = 1 + idx % (p - 1);
                let dst = (rank + k) % p;
                let src = (rank + p - k % p) % p;
                let tag = idx as u32;
                out.push(MpiOp::Irecv { src, tag });
                out.push(MpiOp::Isend {
                    dst,
                    bytes: face,
                    tag,
                });
            }
            out.push(MpiOp::WaitAll);
        }
    }

    /// The I/O ops of dump `d` for `rank` (write or read direction).
    fn dump_io_ops(&self, rank: usize, d: usize, write: bool, out: &mut Vec<MpiOp>) {
        let file = self.file;
        let dump_base = d as u64 * self.dump_bytes();
        match self.subtype {
            BtSubtype::Full => {
                let (off, len) = self.full_chunk(rank);
                let offset = dump_base + off;
                out.push(if write {
                    MpiOp::WriteAtAll { file, offset, len }
                } else {
                    MpiOp::ReadAtAll { file, offset, len }
                });
            }
            BtSubtype::Simple => {
                let p = self.procs as u64;
                let total = self.lines_per_dump();
                let mut l = rank as u64;
                while l < total {
                    let (off, len) = self.line_location(l);
                    let offset = dump_base + off;
                    out.push(if write {
                        MpiOp::WriteAt { file, offset, len }
                    } else {
                        MpiOp::ReadAt { file, offset, len }
                    });
                    l += p;
                }
            }
        }
    }

    /// Builds the scenario: open → (compute/comm, dump)×`dumps` → barrier →
    /// close/reopen → read-back → close.
    pub fn scenario(&self) -> Scenario {
        let mut programs: Vec<Box<dyn mpisim::OpStream>> = Vec::with_capacity(self.procs);
        for rank in 0..self.procs {
            let this = self.clone();
            // Chunks: 0 = open; 1..=dumps = solve+write; dumps+1 = fence;
            // dumps+2..=2*dumps+1 = read-back; 2*dumps+2 = close.
            let dumps = self.dumps;
            let read_phase = self.read_phase;
            let chunks = if read_phase { 2 * dumps + 3 } else { dumps + 2 };
            let gen = move |chunk: usize| -> Vec<MpiOp> {
                let file = this.file;
                let mut out = Vec::new();
                if chunk == 0 {
                    out.push(MpiOp::FileOpen { file, create: true });
                    out.push(MpiOp::Marker(0)); // write phase marker
                } else if chunk <= dumps {
                    let d = chunk - 1;
                    for s in 0..this.steps_per_dump {
                        this.step_ops(rank, d * this.steps_per_dump + s, &mut out);
                    }
                    this.dump_io_ops(rank, d, true, &mut out);
                } else if chunk == dumps + 1 {
                    out.push(MpiOp::Barrier);
                    out.push(MpiOp::FileClose { file });
                    if read_phase {
                        out.push(MpiOp::FileOpen {
                            file,
                            create: false,
                        });
                        out.push(MpiOp::Marker(1)); // read phase marker
                    }
                } else if chunk <= 2 * dumps + 1 {
                    let d = chunk - dumps - 2;
                    this.dump_io_ops(rank, d, false, &mut out);
                } else {
                    out.push(MpiOp::FileClose { file });
                }
                out
            };
            programs.push(Box::new(ChunkedStream::new(chunks, gen)));
        }
        Scenario {
            name: format!(
                "NAS BT-IO class {} {:?} {} procs",
                self.class.label(),
                self.subtype,
                self.procs
            ),
            programs,
            mounts: vec![(self.file, self.mount)],
            prealloc: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_c_16_matches_paper_table_2() {
        let bt = BtIo::new(BtClass::C, 16, BtSubtype::Full);
        // 10 MB collective chunks.
        let (_, len) = bt.full_chunk(0);
        assert_eq!(len, 10_628_820);
        // 640 writes across all ranks (40 per rank).
        assert_eq!(bt.dumps * 16, 640);

        let bt = BtIo::new(BtClass::C, 16, BtSubtype::Simple);
        // 6561 writes per rank per dump → 4,199,040 total writes.
        assert_eq!(bt.simple_ops_per_rank_per_dump(0), 6561);
        let total: u64 = (0..16)
            .map(|r| bt.simple_ops_per_rank_per_dump(r) * bt.dumps as u64)
            .sum();
        assert_eq!(total, 4_199_040);
        // Line sizes 1600 and 1640 bytes.
        let dims = bt.col_dims();
        assert_eq!(dims, vec![41, 41, 40, 40]);
        assert_eq!(bt.line_bytes(0), 1640);
        assert_eq!(bt.line_bytes(3), 1600);
    }

    #[test]
    fn class_c_64_matches_paper_table_5() {
        let bt = BtIo::new(BtClass::C, 64, BtSubtype::Full);
        let (_, len) = bt.full_chunk(0);
        assert_eq!(len, 2_657_205); // "2.54 MB"
        let bt = BtIo::new(BtClass::C, 64, BtSubtype::Simple);
        let dims = bt.col_dims();
        assert_eq!(dims.iter().sum::<u64>(), 162);
        assert_eq!(bt.line_bytes(0), 840); // 21-point columns
        assert_eq!(bt.line_bytes(7), 800); // 20-point columns
                                           // Ranks get 3280 or 3281 lines per dump.
        let ops0 = bt.simple_ops_per_rank_per_dump(0);
        let ops63 = bt.simple_ops_per_rank_per_dump(63);
        assert_eq!(ops0, 3281);
        assert_eq!(ops63, 3280);
    }

    #[test]
    fn dump_bytes_is_40_cubed_rule() {
        let bt = BtIo::new(BtClass::C, 16, BtSubtype::Full);
        assert_eq!(bt.dump_bytes(), 40 * 162 * 162 * 162);
    }

    #[test]
    fn full_chunks_partition_the_dump() {
        let bt = BtIo::new(BtClass::C, 16, BtSubtype::Full);
        let mut covered = 0u64;
        let mut expected_off = 0u64;
        for r in 0..16 {
            let (off, len) = bt.full_chunk(r);
            assert_eq!(off, expected_off, "chunks must be contiguous");
            expected_off += len;
            covered += len;
        }
        assert_eq!(covered, bt.dump_bytes());
    }

    #[test]
    fn simple_lines_partition_the_dump() {
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple);
        let mut bytes = 0u64;
        let mut seen = std::collections::BTreeSet::new();
        for l in 0..bt.lines_per_dump() {
            let (off, sz) = bt.line_location(l);
            assert!(seen.insert(off), "line offsets must be unique");
            bytes += sz;
        }
        assert_eq!(bytes, bt.dump_bytes());
    }

    #[test]
    fn face_messages_stay_eager() {
        let bt = BtIo::new(BtClass::C, 16, BtSubtype::Full);
        assert!(bt.face_bytes() < 64 * 1024, "face {}", bt.face_bytes());
    }

    #[test]
    fn program_has_120_messages_per_write_phase_at_16_procs() {
        let bt = BtIo::new(BtClass::S, 16, BtSubtype::Full).with_dumps(1);
        let mut sc = bt.scenario();
        let mut sends = 0;
        let mut waits = 0;
        let mut writes = 0;
        while let Some(op) = sc.programs[0].next_op() {
            match op {
                MpiOp::Isend { .. } => sends += 1,
                MpiOp::WaitAll => waits += 1,
                MpiOp::WriteAtAll { .. } => writes += 1,
                _ => {}
            }
        }
        assert_eq!(sends, 120, "120 messages before each write (paper Fig. 8)");
        assert_eq!(waits, 15, "three WaitAlls per step, five steps per dump");
        assert_eq!(writes, 1);
    }

    #[test]
    fn scenario_op_counts_match_geometry() {
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple).with_dumps(2);
        let per_dump = bt.simple_ops_per_rank_per_dump(0);
        let mut sc = bt.scenario();
        let mut writes = 0u64;
        let mut reads = 0u64;
        let mut opens = 0;
        while let Some(op) = sc.programs[0].next_op() {
            match op {
                MpiOp::WriteAt { .. } => writes += 1,
                MpiOp::ReadAt { .. } => reads += 1,
                MpiOp::FileOpen { .. } => opens += 1,
                _ => {}
            }
        }
        assert_eq!(writes, per_dump * 2);
        assert_eq!(reads, per_dump * 2);
        assert_eq!(opens, 2, "write-phase open + read-phase reopen");
    }

    #[test]
    #[should_panic(expected = "square process count")]
    fn non_square_process_count_rejected() {
        BtIo::new(BtClass::C, 10, BtSubtype::Full);
    }

    #[test]
    fn step_compute_scales_with_procs() {
        let t16 = BtIo::new(BtClass::C, 16, BtSubtype::Full).step_compute();
        let t64 = BtIo::new(BtClass::C, 64, BtSubtype::Full).step_compute();
        assert!(t16 > t64 * 3);
    }
}
