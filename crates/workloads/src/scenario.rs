//! A runnable workload instance.

use cluster::{ClusterMachine, Mount};
use fs::FileId;
use mpisim::OpStream;

/// One runnable workload: per-rank op streams plus the machine-side setup
/// they assume (file→mount routing and pre-existing input files).
pub struct Scenario {
    /// Report label.
    pub name: String,
    /// One op stream per rank.
    pub programs: Vec<Box<dyn OpStream>>,
    /// File routing to apply before the run.
    pub mounts: Vec<(FileId, Mount)>,
    /// Files that must pre-exist with the given size.
    pub prealloc: Vec<(FileId, u64)>,
}

impl Scenario {
    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.programs.len()
    }

    /// Applies mounts and preallocations to `machine` and returns the
    /// programs, consuming the scenario.
    pub fn install(self, machine: &mut ClusterMachine) -> Vec<Box<dyn OpStream>> {
        for &(file, mount) in &self.mounts {
            machine.mount(file, mount);
        }
        for &(file, size) in &self.prealloc {
            machine.preallocate(file, size);
        }
        self.programs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cluster::{presets, DeviceLayout, IoConfigBuilder};
    use mpisim::VecStream;

    #[test]
    fn install_applies_mounts_and_prealloc() {
        let spec = presets::test_cluster();
        let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
        let mut machine =
            ClusterMachine::try_new(&spec, &config).expect("valid cluster configuration");
        let s = Scenario {
            name: "t".into(),
            programs: vec![Box::new(VecStream::new(vec![]))],
            mounts: vec![(FileId(5), Mount::Nfs)],
            prealloc: vec![(FileId(5), 1024)],
        };
        assert_eq!(s.ranks(), 1);
        let programs = s.install(&mut machine);
        assert_eq!(programs.len(), 1);
        assert_eq!(machine.server().fs().file_size(FileId(5)), 1024);
    }
}
