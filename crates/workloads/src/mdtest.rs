//! An mdtest-like metadata benchmark.
//!
//! mdtest stresses the *namespace* rather than the data path: each rank
//! creates, stats and unlinks a population of zero-byte files, and the
//! result is an operation rate (ops/s) per verb. The IO500 convention
//! defines two access patterns:
//!
//! * **easy** — every rank works in its own private directory, so
//!   directory entries (and their locks) are spread across the metadata
//!   servers;
//! * **hard** — all ranks hammer one shared directory, serializing on its
//!   directory-entry lock exactly like N processes in one `mdtest -d`
//!   shared tree.
//!
//! Each rank's program follows the mdtest phase order — mkdir, create,
//! stat, unlink, readdir — with a barrier between phases so per-verb
//! timings are not overlapped.

use crate::scenario::Scenario;
use cluster::Mount;
use fs::{FileId, MetaVerb};
use mpisim::{ChainStream, GenStream, MpiOp, VecStream};

/// Which IO500 access pattern to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MdtestVariant {
    /// Unique directory per rank.
    Easy,
    /// Single shared directory for all ranks.
    Hard,
}

impl MdtestVariant {
    /// Lowercase label used in scenario names.
    pub fn label(self) -> &'static str {
        match self {
            MdtestVariant::Easy => "easy",
            MdtestVariant::Hard => "hard",
        }
    }
}

/// An mdtest run description.
#[derive(Clone, Debug)]
pub struct Mdtest {
    /// Number of ranks.
    pub ranks: usize,
    /// Files each rank creates/stats/unlinks.
    pub files_per_rank: usize,
    /// Access pattern.
    pub variant: MdtestVariant,
    /// Mount under test.
    pub mount: Mount,
    /// First [`FileId`] of the id range the run occupies (directories
    /// first, then per-rank file populations).
    pub base: FileId,
}

impl Mdtest {
    /// An easy (unique-directory) run over NFS.
    pub fn easy(ranks: usize, files_per_rank: usize) -> Mdtest {
        Mdtest::new(ranks, files_per_rank, MdtestVariant::Easy)
    }

    /// A hard (single-shared-directory) run over NFS.
    pub fn hard(ranks: usize, files_per_rank: usize) -> Mdtest {
        Mdtest::new(ranks, files_per_rank, MdtestVariant::Hard)
    }

    fn new(ranks: usize, files_per_rank: usize, variant: MdtestVariant) -> Mdtest {
        assert!(ranks > 0 && files_per_rank > 0);
        Mdtest {
            ranks,
            files_per_rank,
            variant,
            mount: Mount::Nfs,
            base: FileId(6000),
        }
    }

    /// Selects the mount under test.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Relocates the run's id range (directories and file populations).
    pub fn base(mut self, base: FileId) -> Self {
        self.base = base;
        self
    }

    /// The directory rank `r` works in.
    pub fn dir_of(&self, rank: usize) -> FileId {
        match self.variant {
            MdtestVariant::Easy => FileId(self.base.0 + rank as u64),
            MdtestVariant::Hard => self.base,
        }
    }

    /// The `i`-th file in rank `r`'s population.
    fn file_of(&self, rank: usize, i: usize) -> FileId {
        FileId(
            self.base.0 + self.ranks as u64 + rank as u64 * self.files_per_rank as u64 + i as u64,
        )
    }

    /// Total metadata operations the run issues across all ranks.
    pub fn total_ops(&self) -> u64 {
        // 3 file verbs per file, plus mkdir+readdir once per directory.
        let dirs = match self.variant {
            MdtestVariant::Easy => self.ranks as u64,
            MdtestVariant::Hard => 1,
        };
        3 * (self.ranks * self.files_per_rank) as u64 + 2 * dirs
    }

    /// Builds the scenario.
    pub fn scenario(&self) -> Scenario {
        let mut programs: Vec<Box<dyn mpisim::OpStream>> = Vec::with_capacity(self.ranks);
        for r in 0..self.ranks {
            let dir = self.dir_of(r);
            let owns_dir = self.variant == MdtestVariant::Easy || r == 0;
            let n = self.files_per_rank;
            let this = self.clone();
            let meta = move |verb, i| MpiOp::Meta {
                verb,
                dir,
                file: this.file_of(r, i),
            };
            // Phase order is MetaVerb::ALL: mkdir, create, stat, unlink,
            // readdir — barriers keep per-verb timings unoverlapped.
            let mut head = Vec::new();
            if owns_dir {
                head.push(MpiOp::Meta {
                    verb: MetaVerb::Mkdir,
                    dir,
                    file: dir,
                });
            }
            head.push(MpiOp::Barrier);
            let creates = {
                let meta = meta.clone();
                GenStream::new(n, move |i| meta(MetaVerb::Create, i))
            };
            let stats = {
                let meta = meta.clone();
                GenStream::new(n, move |i| meta(MetaVerb::Stat, i))
            };
            let unlinks = GenStream::new(n, move |i| meta(MetaVerb::Unlink, i));
            let mut tail = vec![MpiOp::Barrier];
            if owns_dir {
                tail.push(MpiOp::Meta {
                    verb: MetaVerb::Readdir,
                    dir,
                    file: dir,
                });
            }
            programs.push(Box::new(ChainStream::new(vec![
                Box::new(VecStream::new(head)),
                Box::new(creates),
                Box::new(VecStream::new(vec![MpiOp::Barrier])),
                Box::new(stats),
                Box::new(VecStream::new(vec![MpiOp::Barrier])),
                Box::new(unlinks),
                Box::new(VecStream::new(tail)),
            ])));
        }
        // Only the directories are mounted: every verb routes by its
        // containing directory, target files included.
        let mounts = match self.variant {
            MdtestVariant::Easy => (0..self.ranks)
                .map(|r| (self.dir_of(r), self.mount))
                .collect(),
            MdtestVariant::Hard => vec![(self.base, self.mount)],
        };
        Scenario {
            name: format!(
                "mdtest-{} {} ranks, {} files/rank",
                self.variant.label(),
                self.ranks,
                self.files_per_rank
            ),
            programs,
            mounts,
            prealloc: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpisim::OpStream;

    fn drain(s: &mut Box<dyn OpStream>) -> Vec<MpiOp> {
        let mut v = Vec::new();
        while let Some(op) = s.next_op() {
            v.push(op);
        }
        v
    }

    fn verbs(ops: &[MpiOp]) -> Vec<MetaVerb> {
        ops.iter()
            .filter_map(|op| match op {
                MpiOp::Meta { verb, .. } => Some(*verb),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn easy_gives_every_rank_its_own_directory() {
        let md = Mdtest::easy(4, 3);
        let mut sc = md.scenario();
        assert_eq!(sc.ranks(), 4);
        assert_eq!(sc.mounts.len(), 4, "one mounted directory per rank");
        let mut dirs = std::collections::BTreeSet::new();
        for program in sc.programs.iter_mut() {
            let ops = drain(program);
            let v = verbs(&ops);
            // Every rank mkdirs and readdirs its own directory.
            assert_eq!(v.first(), Some(&MetaVerb::Mkdir));
            assert_eq!(v.last(), Some(&MetaVerb::Readdir));
            for op in &ops {
                if let MpiOp::Meta { dir, .. } = op {
                    dirs.insert(*dir);
                }
            }
        }
        assert_eq!(dirs.len(), 4, "directories are disjoint");
    }

    #[test]
    fn hard_shares_one_directory_and_only_rank_zero_owns_it() {
        let md = Mdtest::hard(4, 3);
        let mut sc = md.scenario();
        assert_eq!(sc.mounts.len(), 1, "single shared directory");
        for (r, program) in sc.programs.iter_mut().enumerate() {
            let ops = drain(program);
            let v = verbs(&ops);
            if r == 0 {
                assert_eq!(v.first(), Some(&MetaVerb::Mkdir));
                assert_eq!(v.last(), Some(&MetaVerb::Readdir));
            } else {
                assert!(!v.contains(&MetaVerb::Mkdir));
                assert!(!v.contains(&MetaVerb::Readdir));
            }
            for op in &ops {
                if let MpiOp::Meta { dir, .. } = op {
                    assert_eq!(*dir, md.base, "all verbs hit the shared directory");
                }
            }
        }
    }

    #[test]
    fn phases_follow_mdtest_order_with_barriers_between() {
        let md = Mdtest::easy(2, 5);
        let mut sc = md.scenario();
        let ops = drain(&mut sc.programs[1]);
        let v = verbs(&ops);
        let expected: Vec<MetaVerb> = std::iter::once(MetaVerb::Mkdir)
            .chain(std::iter::repeat_n(MetaVerb::Create, 5))
            .chain(std::iter::repeat_n(MetaVerb::Stat, 5))
            .chain(std::iter::repeat_n(MetaVerb::Unlink, 5))
            .chain(std::iter::once(MetaVerb::Readdir))
            .collect();
        assert_eq!(v, expected);
        let barriers = ops.iter().filter(|op| matches!(op, MpiOp::Barrier)).count();
        assert_eq!(barriers, 4, "a barrier between each of the five phases");
    }

    #[test]
    fn file_populations_are_disjoint_across_ranks() {
        let md = Mdtest::hard(3, 4);
        let mut sc = md.scenario();
        let mut files = std::collections::BTreeSet::new();
        let mut total = 0usize;
        for program in sc.programs.iter_mut() {
            for op in drain(program) {
                if let MpiOp::Meta {
                    verb: MetaVerb::Create,
                    file,
                    ..
                } = op
                {
                    files.insert(file);
                    total += 1;
                }
            }
        }
        assert_eq!(total, 12);
        assert_eq!(files.len(), 12, "no two ranks create the same file");
        assert!(
            files.iter().all(|f| f.0 > md.base.0),
            "files sit above the directory range"
        );
    }

    #[test]
    fn total_ops_matches_the_drained_stream() {
        for md in [Mdtest::easy(3, 7), Mdtest::hard(3, 7)] {
            let mut sc = md.scenario();
            let mut seen = 0u64;
            for program in sc.programs.iter_mut() {
                seen += verbs(&drain(program)).len() as u64;
            }
            assert_eq!(seen, md.total_ops());
        }
    }
}
