//! A FLASH3-IO-like checkpoint benchmark.
//!
//! The third benchmark family the paper's related work evaluates ("NAS
//! BT-IO, MadBench2, and Flash3 I/O benchmarks", §II citing the Blue
//! Gene/P study). FLASH's I/O kernel writes a checkpoint file plus two
//! smaller plot files: every rank contributes a block of cell data per
//! variable, preceded by small metadata records — a *mixed-block-size*
//! pattern (a handful of tiny writes, then many large collective writes)
//! that exercises exactly the multi-row performance-table lookups of the
//! methodology.

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{MpiOp, VecStream};
use simcore::Time;

/// A FLASH-IO-like instance.
#[derive(Clone, Debug)]
pub struct FlashIo {
    /// Number of processes.
    pub procs: usize,
    /// Number of mesh variables (FLASH's checkpoint stores 24).
    pub variables: usize,
    /// Per-rank, per-variable block size (8x8x8 blocks of 80 doubles ≈
    /// FLASH defaults scale with `nxb*nyb*nzb*maxblocks`).
    pub block_bytes: u64,
    /// Number of checkpoint epochs.
    pub checkpoints: usize,
    /// Plot files per checkpoint (FLASH writes 2 smaller plot files).
    pub plots_per_checkpoint: usize,
    /// Plot files store a 4-byte-per-cell corner subset: this fraction of
    /// the checkpoint block.
    pub plot_fraction: u64,
    /// Metadata records written by rank 0 before the data (sim info,
    /// runtime parameters, scalars...).
    pub meta_records: usize,
    /// Size of one metadata record.
    pub meta_bytes: u64,
    /// Compute time between epochs.
    pub epoch_compute: Time,
    /// Whether data writes are collective.
    pub collective: bool,
    /// Base file id (one file per checkpoint/plot).
    pub file_base: u64,
    /// Mount the files live on.
    pub mount: Mount,
}

impl FlashIo {
    /// A FLASH-like configuration for `procs` ranks.
    pub fn new(procs: usize) -> FlashIo {
        FlashIo {
            procs,
            variables: 24,
            block_bytes: 512 * 1024,
            checkpoints: 3,
            plots_per_checkpoint: 2,
            plot_fraction: 8,
            meta_records: 6,
            meta_bytes: 2048,
            epoch_compute: Time::from_millis(800),
            collective: true,
            file_base: 0xF1A5,
            mount: Mount::NfsDirect,
        }
    }

    /// Shrinks the run for tests.
    pub fn quick(mut self) -> Self {
        self.variables = 4;
        self.block_bytes = 64 * 1024;
        self.checkpoints = 2;
        self
    }

    /// Selects the mount.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Files written over the whole run (checkpoints + plots).
    pub fn files(&self) -> Vec<FileId> {
        let per_epoch = 1 + self.plots_per_checkpoint;
        (0..self.checkpoints * per_epoch)
            .map(|i| FileId(self.file_base + i as u64))
            .collect()
    }

    /// Bytes one rank contributes to one checkpoint file.
    pub fn checkpoint_bytes_per_rank(&self) -> u64 {
        self.variables as u64 * self.block_bytes
    }

    /// Emits one output file's ops for `rank` into `ops`.
    fn emit_file(&self, rank: usize, file: FileId, block: u64, ops: &mut Vec<MpiOp>) {
        ops.push(MpiOp::FileOpen { file, create: true });
        // Rank 0 writes the metadata header records.
        let header = self.meta_records as u64 * self.meta_bytes;
        if rank == 0 {
            for m in 0..self.meta_records {
                ops.push(MpiOp::WriteAt {
                    file,
                    offset: m as u64 * self.meta_bytes,
                    len: self.meta_bytes,
                });
            }
        }
        // Data: variable-major layout, one block per rank per variable.
        for v in 0..self.variables {
            let var_base = header + (v as u64 * self.procs as u64) * block;
            let offset = var_base + rank as u64 * block;
            ops.push(if self.collective {
                MpiOp::WriteAtAll {
                    file,
                    offset,
                    len: block,
                }
            } else {
                MpiOp::WriteAt {
                    file,
                    offset,
                    len: block,
                }
            });
        }
        ops.push(MpiOp::FileClose { file });
    }

    /// Builds the scenario.
    pub fn scenario(&self) -> Scenario {
        let files = self.files();
        let mut programs: Vec<Box<dyn mpisim::OpStream>> = Vec::with_capacity(self.procs);
        for rank in 0..self.procs {
            let mut ops = Vec::new();
            let mut fidx = 0;
            for _epoch in 0..self.checkpoints {
                ops.push(MpiOp::Compute(self.epoch_compute));
                ops.push(MpiOp::Allreduce { bytes: 8 }); // dt reduction
                self.emit_file(rank, files[fidx], self.block_bytes, &mut ops);
                fidx += 1;
                for _ in 0..self.plots_per_checkpoint {
                    self.emit_file(
                        rank,
                        files[fidx],
                        (self.block_bytes / self.plot_fraction).max(1),
                        &mut ops,
                    );
                    fidx += 1;
                }
            }
            programs.push(Box::new(VecStream::new(ops)));
        }
        Scenario {
            name: format!(
                "FLASH-IO {} procs, {} vars, {} checkpoints",
                self.procs, self.variables, self.checkpoints
            ),
            programs,
            mounts: files.iter().map(|&f| (f, self.mount)).collect(),
            prealloc: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_structure_per_rank() {
        let f = FlashIo::new(4).quick();
        let mut sc = f.scenario();
        let mut writes_large = 0u64;
        let mut writes_small = 0u64;
        let mut opens = 0;
        let mut reduces = 0;
        while let Some(op) = sc.programs[1].next_op() {
            match op {
                MpiOp::WriteAtAll { len, .. } if len == 64 * 1024 => writes_large += 1,
                MpiOp::WriteAtAll { .. } => writes_small += 1,
                MpiOp::FileOpen { .. } => opens += 1,
                MpiOp::Allreduce { .. } => reduces += 1,
                _ => {}
            }
        }
        // 2 checkpoints × 4 variables of full blocks.
        assert_eq!(writes_large, 8);
        // 2 checkpoints × 2 plots × 4 variables of small blocks.
        assert_eq!(writes_small, 16);
        // One open per output file: 2 × (1 + 2).
        assert_eq!(opens, 6);
        assert_eq!(reduces, 2);
    }

    #[test]
    fn rank0_also_writes_metadata() {
        let f = FlashIo::new(4).quick();
        let mut sc = f.scenario();
        let mut meta = 0;
        while let Some(op) = sc.programs[0].next_op() {
            if let MpiOp::WriteAt { len, .. } = op {
                if len == f.meta_bytes {
                    meta += 1;
                }
            }
        }
        // 6 records × 6 files.
        assert_eq!(meta, 36);
    }

    #[test]
    fn data_offsets_never_collide() {
        let f = FlashIo::new(4).quick();
        let mut seen = std::collections::BTreeSet::new();
        for rank in 0..4 {
            let mut sc_ops = Vec::new();
            f.emit_file(rank, FileId(1), f.block_bytes, &mut sc_ops);
            for op in sc_ops {
                if let MpiOp::WriteAtAll { offset, len, .. } = op {
                    assert!(seen.insert(offset), "offset {offset} reused");
                    // No overlap with the metadata header.
                    assert!(offset >= f.meta_records as u64 * f.meta_bytes);
                    let _ = len;
                }
            }
        }
        assert_eq!(seen.len(), 4 * f.variables);
    }

    #[test]
    fn checkpoint_sizing() {
        let f = FlashIo::new(16);
        assert_eq!(f.checkpoint_bytes_per_rank(), 24 * 512 * 1024);
        assert_eq!(f.files().len(), 9);
    }
}
