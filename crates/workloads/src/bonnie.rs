//! A bonnie++-like filesystem exerciser.
//!
//! The paper: "To evaluate global filesystem and local filesystem, IOzone
//! and/or bonnie++ benchmarks can be used." Bonnie++'s distinctive tests —
//! beyond IOzone's pattern sweep — are the **rewrite** pass (read a block,
//! modify it, write it back) and the **random-seek** pass whose result is
//! an IOPs figure rather than a bandwidth.

use crate::scenario::Scenario;
use cluster::Mount;
use fs::FileId;
use mpisim::{ChainStream, GenStream, MpiOp, VecStream};
use simcore::SplitMix64;

/// The bonnie++ test being run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BonnieTest {
    /// Sequential block output (write the file front to back).
    SeqOutput,
    /// Sequential block input (read the file front to back).
    SeqInput,
    /// Rewrite: for each block, read it, then write it back.
    Rewrite,
    /// Random seeks: read small records at random offsets (IOPs test).
    RandomSeeks,
}

/// One bonnie++ run.
#[derive(Clone, Debug)]
pub struct Bonnie {
    /// File under test.
    pub file: FileId,
    /// File size (bonnie++ recommends ≥ 2× RAM, like the paper's rule).
    pub file_size: u64,
    /// Block size (bonnie++ default: 8 KiB chunks; we default to 64 KiB
    /// to match the era's tuned runs).
    pub block: u64,
    /// Which test.
    pub test: BonnieTest,
    /// Number of random seeks (bonnie++ default: 4000... scaled here).
    pub seeks: u64,
    /// Seek read size (bonnie++ reads 512 B per seek; chunk-aligned here).
    pub seek_read: u64,
    /// Mount under test.
    pub mount: Mount,
    /// RNG seed for the seek test.
    pub seed: u64,
}

impl Bonnie {
    /// A run with bonnie-ish defaults.
    pub fn new(file: FileId, file_size: u64, test: BonnieTest) -> Bonnie {
        Bonnie {
            file,
            file_size,
            block: 64 * 1024,
            test,
            seeks: 1000,
            seek_read: 4096,
            mount: Mount::ServerLocal,
            seed: 0xB0,
        }
    }

    /// Selects the mount under test.
    pub fn on(mut self, mount: Mount) -> Self {
        self.mount = mount;
        self
    }

    /// Builds the single-process scenario.
    pub fn scenario(&self) -> Scenario {
        let file = self.file;
        let block = self.block;
        let blocks = self.file_size / block;
        let needs_input = !matches!(self.test, BonnieTest::SeqOutput);

        let head = VecStream::new(vec![MpiOp::FileOpen {
            file,
            create: matches!(self.test, BonnieTest::SeqOutput),
        }]);

        let body: Box<dyn mpisim::OpStream> = match self.test {
            BonnieTest::SeqOutput => {
                Box::new(GenStream::new(blocks as usize, move |i| MpiOp::WriteAt {
                    file,
                    offset: i as u64 * block,
                    len: block,
                }))
            }
            BonnieTest::SeqInput => {
                Box::new(GenStream::new(blocks as usize, move |i| MpiOp::ReadAt {
                    file,
                    offset: i as u64 * block,
                    len: block,
                }))
            }
            // Rewrite interleaves a read and a write per block: generate
            // 2×blocks ops, even index = read, odd = write-back.
            BonnieTest::Rewrite => Box::new(GenStream::new(2 * blocks as usize, move |i| {
                let offset = (i as u64 / 2) * block;
                if i % 2 == 0 {
                    MpiOp::ReadAt {
                        file,
                        offset,
                        len: block,
                    }
                } else {
                    MpiOp::WriteAt {
                        file,
                        offset,
                        len: block,
                    }
                }
            })),
            BonnieTest::RandomSeeks => {
                let mut rng = SplitMix64::new(self.seed);
                let span = self.file_size - self.seek_read;
                let read = self.seek_read;
                Box::new(GenStream::new(self.seeks as usize, move |_| {
                    let offset = rng.next_below(span / read) * read;
                    MpiOp::ReadAt {
                        file,
                        offset,
                        len: read,
                    }
                }))
            }
        };

        let tail = VecStream::new(match self.test {
            BonnieTest::SeqOutput | BonnieTest::Rewrite => {
                vec![MpiOp::FileSync { file }, MpiOp::FileClose { file }]
            }
            _ => vec![MpiOp::FileClose { file }],
        });

        Scenario {
            name: format!("bonnie++ {:?}", self.test),
            programs: vec![Box::new(ChainStream::new(vec![
                Box::new(head),
                body,
                Box::new(tail),
            ]))],
            mounts: vec![(file, self.mount)],
            prealloc: if needs_input {
                vec![(file, self.file_size)]
            } else {
                Vec::new()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::MIB;

    fn drain(sc: &mut Scenario) -> Vec<MpiOp> {
        let mut v = Vec::new();
        while let Some(op) = sc.programs[0].next_op() {
            v.push(op);
        }
        v
    }

    #[test]
    fn rewrite_alternates_read_then_write_per_block() {
        let b = Bonnie::new(FileId(1), MIB, BonnieTest::Rewrite);
        let mut sc = b.scenario();
        let ops = drain(&mut sc);
        let io: Vec<&MpiOp> = ops
            .iter()
            .filter(|op| matches!(op, MpiOp::ReadAt { .. } | MpiOp::WriteAt { .. }))
            .collect();
        assert_eq!(io.len(), 32, "16 blocks x (read + write)");
        for pair in io.chunks(2) {
            let (MpiOp::ReadAt { offset: ro, .. }, MpiOp::WriteAt { offset: wo, .. }) =
                (pair[0], pair[1])
            else {
                panic!("expected read-then-write, got {pair:?}");
            };
            assert_eq!(ro, wo, "write-back targets the block just read");
        }
        // Rewrite needs pre-existing content.
        assert_eq!(sc.prealloc, vec![(FileId(1), MIB)]);
    }

    #[test]
    fn random_seeks_are_bounded_and_counted() {
        let mut b = Bonnie::new(FileId(1), 64 * MIB, BonnieTest::RandomSeeks);
        b.seeks = 200;
        let mut sc = b.scenario();
        let ops = drain(&mut sc);
        let reads: Vec<(u64, u64)> = ops
            .iter()
            .filter_map(|op| match op {
                MpiOp::ReadAt { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(reads.len(), 200);
        for (off, len) in reads {
            assert_eq!(len, 4096);
            assert!(off + len <= 64 * MIB);
        }
    }

    #[test]
    fn seq_output_writes_whole_file_and_syncs() {
        let b = Bonnie::new(FileId(1), 4 * MIB, BonnieTest::SeqOutput);
        let mut sc = b.scenario();
        let ops = drain(&mut sc);
        let written: u64 = ops
            .iter()
            .filter_map(|op| match op {
                MpiOp::WriteAt { len, .. } => Some(*len),
                _ => None,
            })
            .sum();
        assert_eq!(written, 4 * MIB);
        assert!(ops.iter().any(|op| matches!(op, MpiOp::FileSync { .. })));
        assert!(sc.prealloc.is_empty());
    }

    #[test]
    fn seq_input_reads_without_sync() {
        let b = Bonnie::new(FileId(1), 4 * MIB, BonnieTest::SeqInput);
        let mut sc = b.scenario();
        let ops = drain(&mut sc);
        assert!(!ops.iter().any(|op| matches!(op, MpiOp::FileSync { .. })));
        assert!(ops.iter().any(|op| matches!(op, MpiOp::ReadAt { .. })));
    }
}
