//! # workloads — characterization benchmarks and the paper's applications
//!
//! * [`iozone`] — an IOzone-like filesystem exerciser: one process sweeping
//!   record sizes over a file of twice the node's RAM ("a file size which
//!   doubles the main memory size"), in sequential / strided / random read
//!   and write modes. Used to characterize the local and network filesystem
//!   levels (paper Figs. 5 and 13).
//! * [`bonnie`] — a bonnie++-like exerciser (the paper's named IOzone
//!   alternative): sequential input/output, block *rewrite*, and the
//!   random-seek IOPs test.
//! * [`ior`] — an IOR-like MPI-IO benchmark: N ranks, per-rank blocks
//!   written/read in fixed transfer units, independent or collective. Used
//!   to characterize the I/O library level (Figs. 6 and 14).
//! * [`btio`] — synthetic NAS BT-IO (class A–D, *full* and *simple*
//!   subtypes) reproducing the exact operation counts and block sizes of
//!   paper Tables II and V, including the diagonal multi-partitioning
//!   communication pattern (120 messages per write phase at 16 processes).
//! * [`flashio`] — a FLASH3-IO-like checkpoint kernel (the third benchmark
//!   family in the paper's related work): mixed tiny-metadata / large-data
//!   collective writes across checkpoint and plot files.
//! * [`madbench`] — synthetic MADbench2 (IO mode): the S/W/C function
//!   structure with 8 writes / 8 writes + 8 reads / 8 reads per process of
//!   162 MB (16p) or 40.5 MB (64p) components, UNIQUE or SHARED filetypes
//!   (Table VIII, Figs. 16–18).
//! * [`mdtest`] — an mdtest-like metadata exerciser in the IO500 easy
//!   (unique directory per rank) and hard (single shared directory)
//!   patterns: per-rank create/stat/unlink populations with barriers
//!   between verb phases, driving the metadata level instead of the data
//!   path.
//!
//! Each generator returns a [`scenario::Scenario`]: per-rank op streams
//! plus file-mount routing and preallocation directives for the
//! [`cluster::ClusterMachine`].
//!
//! Beyond the hand-coded generators, [`grammar`] provides a declarative
//! scenario grammar — phases, loops, probabilistic branches, and
//! size/count distributions — whose seeded sampler draws thousands of
//! concrete workload variants byte-reproducibly for campaign-scale
//! what-if exploration.

pub mod bonnie;
pub mod btio;
pub mod flashio;
pub mod grammar;
pub mod ior;
pub mod iozone;
pub mod madbench;
pub mod mdtest;
pub mod scenario;

pub use bonnie::{Bonnie, BonnieTest};
pub use btio::{BtClass, BtIo, BtSubtype};
pub use flashio::FlashIo;
pub use grammar::{source_digest, Dist, Grammar, GrammarError, Variant};
pub use ior::{Ior, IorOp};
pub use iozone::{IozonePattern, IozoneRun};
pub use madbench::{FileType, MadBench};
pub use mdtest::{Mdtest, MdtestVariant};
pub use scenario::Scenario;
