//! Microbenchmarks of the filesystem models: range-cache operations (the
//! hot path of every simulated I/O) and LocalFs streaming.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fs::{FileId, LocalFs, LocalFsParams, RangeCache};
use simcore::{SplitMix64, Time, GIB, KIB, MIB};
use storage::{Disk, DiskParams, Jbod};

fn bench_range_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("range_cache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sequential_insert_coalescing", |b| {
        let mut cache = RangeCache::new(u64::MAX);
        let mut off = 0u64;
        b.iter(|| {
            cache.insert(FileId(1), off, off + 1600, true);
            off += 1600;
        });
    });
    g.bench_function("strided_insert", |b| {
        let mut cache = RangeCache::new(16 * GIB);
        let mut off = 0u64;
        b.iter(|| {
            cache.insert(FileId(1), off, off + 1600, true);
            off += 64 * KIB;
        });
    });
    g.bench_function("lookup_hit", |b| {
        let mut cache = RangeCache::new(u64::MAX);
        cache.insert(FileId(1), 0, GIB, false);
        let mut rng = SplitMix64::new(5);
        b.iter(|| {
            let off = rng.next_below(GIB - MIB);
            black_box(cache.lookup(FileId(1), off, off + 4096));
        });
    });
    g.bench_function("lookup_miss", |b| {
        let mut cache = RangeCache::new(u64::MAX);
        // Sparse population: every other MiB cached.
        for i in 0..512u64 {
            cache.insert(FileId(1), i * 2 * MIB, i * 2 * MIB + MIB, false);
        }
        let mut rng = SplitMix64::new(5);
        b.iter(|| {
            let off = rng.next_below(1023) * MIB;
            black_box(cache.lookup(FileId(1), off, off + MIB / 2));
        });
    });
    g.finish();
}

fn bench_local_fs(c: &mut Criterion) {
    let mut g = c.benchmark_group("local_fs");
    g.throughput(Throughput::Bytes(MIB));
    g.bench_function("streaming_write_1mib", |b| {
        let mut fs = LocalFs::new(
            LocalFsParams::ext4(2 * GIB),
            Box::new(Jbod::new(Disk::new(DiskParams::sata_7200(230, 75), 1))),
        );
        let mut now = fs.create(Time::ZERO, FileId(1));
        let mut off = 0u64;
        b.iter(|| {
            now = fs.write(now, FileId(1), off, MIB);
            off += MIB;
        });
    });
    g.bench_function("streaming_read_1mib", |b| {
        let mut fs = LocalFs::new(
            LocalFsParams::ext4(2 * GIB),
            Box::new(Jbod::new(Disk::new(DiskParams::sata_7200(230, 75), 1))),
        );
        fs.preallocate(FileId(1), 64 * GIB);
        let mut now = Time::ZERO;
        let mut off = 0u64;
        b.iter(|| {
            now = fs.read(now, FileId(1), off, MIB);
            off += MIB;
        });
    });
    g.finish();
}

criterion_group!(benches, bench_range_cache, bench_local_fs);
criterion_main!(benches);
