//! Microbenchmarks of the simulation kernel — the per-event costs that
//! bound how fast multi-million-operation scenarios simulate.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simcore::{EventQueue, FifoResource, SplitMix64, Time};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(1));
    g.bench_function("schedule_pop_interleaved", |b| {
        let mut q = EventQueue::new();
        let mut t = 0u64;
        // Keep a standing population of 1024 events.
        for i in 0..1024u64 {
            q.schedule(Time::from_nanos(i), i);
        }
        b.iter(|| {
            let (at, v) = q.pop().expect("population maintained");
            t = at.as_nanos().max(t) + 100;
            q.schedule(Time::from_nanos(t), black_box(v));
        });
    });
    g.finish();
}

fn bench_fifo_resource(c: &mut Criterion) {
    let mut g = c.benchmark_group("fifo_resource");
    g.throughput(Throughput::Elements(1));
    g.bench_function("submit", |b| {
        let mut r = FifoResource::new();
        let mut now = Time::ZERO;
        b.iter(|| {
            let grant = r.submit(now, Time::from_micros(3));
            now = black_box(grant.end);
        });
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.throughput(Throughput::Elements(1));
    g.bench_function("splitmix64_next", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| black_box(rng.next_u64()));
    });
    g.bench_function("splitmix64_below", |b| {
        let mut rng = SplitMix64::new(42);
        b.iter(|| black_box(rng.next_below(1_000_003)));
    });
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    use simcore::stats::{OnlineStats, TransferMeter};
    let mut g = c.benchmark_group("stats");
    g.throughput(Throughput::Elements(1));
    g.bench_function("online_stats_push", |b| {
        let mut s = OnlineStats::new();
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            s.push(black_box(x));
        });
    });
    g.bench_function("transfer_meter_record", |b| {
        let mut m = TransferMeter::new();
        b.iter(|| m.record(black_box(4096), Time::from_micros(100)));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fifo_resource,
    bench_rng,
    bench_stats
);
criterion_main!(benches);
