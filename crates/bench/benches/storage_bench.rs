//! Microbenchmarks of the storage models: per-request costs of the disk
//! timing math and the RAID engines (including the aggregated-span
//! submission paths that keep 162 MB requests cheap).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use simcore::{SplitMix64, Time, KIB, MIB};
use storage::{raid::raid5_locate, BlockReq, Disk, DiskParams, Raid5, Volume};

fn disk() -> Disk {
    Disk::new(DiskParams::sata_7200(230, 75), 7)
}

fn disks(n: usize) -> Vec<Disk> {
    (0..n as u64)
        .map(|i| Disk::new(DiskParams::sata_7200(230, 75), i + 1))
        .collect()
}

fn bench_disk(c: &mut Criterion) {
    let mut g = c.benchmark_group("disk");
    g.throughput(Throughput::Elements(1));
    g.bench_function("sequential_submit", |b| {
        let mut d = disk();
        let mut now = Time::ZERO;
        let mut off = 0u64;
        b.iter(|| {
            let grant = d.submit(now, BlockReq::write(off, 64 * KIB));
            now = grant.ack;
            off += 64 * KIB;
        });
    });
    g.bench_function("random_submit", |b| {
        let mut d = disk();
        let mut rng = SplitMix64::new(3);
        let mut now = Time::ZERO;
        b.iter(|| {
            let off = rng.next_below(200_000) * MIB;
            let grant = d.submit(now, BlockReq::read(off, 64 * KIB));
            now = grant.ack;
        });
    });
    g.finish();
}

fn bench_raid5(c: &mut Criterion) {
    let mut g = c.benchmark_group("raid5");
    g.bench_function("locate", |b| {
        let mut off = 0u64;
        b.iter(|| {
            off += 100_003;
            black_box(raid5_locate(off, 256 * KIB, 5));
        });
    });
    g.throughput(Throughput::Bytes(MIB));
    g.bench_function("full_stripe_write_1mib", |b| {
        let mut r = Raid5::new(disks(5), 256 * KIB, true);
        let mut now = Time::ZERO;
        let mut off = 0u64;
        b.iter(|| {
            let grant = r.submit(now, BlockReq::write(off, MIB));
            now = grant.ack;
            off += MIB;
        });
    });
    g.throughput(Throughput::Bytes(162 * MIB));
    g.bench_function("large_write_162mib", |b| {
        let mut r = Raid5::new(disks(5), 256 * KIB, true);
        let mut now = Time::ZERO;
        let mut off = 0u64;
        b.iter(|| {
            let grant = r.submit(now, BlockReq::write(off, 162 * MIB));
            now = grant.ack;
            off += 162 * MIB;
        });
    });
    g.finish();
}

fn bench_raid5_small_write_penalty(c: &mut Criterion) {
    let mut g = c.benchmark_group("raid5_small_writes");
    g.throughput(Throughput::Elements(1));
    g.bench_function("random_4k_rmw", |b| {
        let mut r = Raid5::new(disks(5), 256 * KIB, true);
        let mut rng = SplitMix64::new(9);
        let mut now = Time::ZERO;
        b.iter(|| {
            let row = rng.next_below(100_000);
            let grant = r.submit(now, BlockReq::write(row * MIB, 4096));
            now = grant.ack;
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_disk,
    bench_raid5,
    bench_raid5_small_write_penalty
);
criterion_main!(benches);
