//! Microbenchmarks of the methodology kernel: the Fig. 11 table search and
//! the streaming trace profiler (which must keep up with multi-million-op
//! applications).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use fs::FileId;
use ioeval_core::perf_table::{AccessMode, AccessType, OpType, PerfRow, PerfTable};
use ioeval_core::trace::ProfileSink;
use mpisim::{TraceEvent, TraceKind, TraceSink};
use simcore::{Bandwidth, SplitMix64, Time, KIB};

fn full_table() -> PerfTable {
    let mut t = PerfTable::new();
    for op in [OpType::Read, OpType::Write] {
        for mode in [
            AccessMode::Sequential,
            AccessMode::Strided,
            AccessMode::Random,
        ] {
            for i in 0..10u64 {
                t.insert(PerfRow {
                    op,
                    block: (32 * KIB) << i,
                    access: AccessType::Global,
                    mode,
                    rate: Bandwidth::from_mib_per_sec(40 + i),
                    iops: 100.0,
                    latency: Time::from_millis(1),
                });
            }
        }
    }
    t
}

fn bench_search(c: &mut Criterion) {
    let t = full_table();
    let mut g = c.benchmark_group("perf_table");
    g.throughput(Throughput::Elements(1));
    g.bench_function("fig11_search", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let block = rng.next_below(64 * 1024 * 1024) + 1;
            black_box(t.search(
                OpType::Write,
                block,
                AccessType::Global,
                AccessMode::Sequential,
            ));
        });
    });
    g.finish();
}

fn bench_profile_sink(c: &mut Criterion) {
    let mut g = c.benchmark_group("profile_sink");
    g.throughput(Throughput::Elements(1));
    g.bench_function("record_write_event", |b| {
        let mut sink = ProfileSink::new(16);
        let mut t = 0u64;
        let mut rank = 0usize;
        b.iter(|| {
            t += 1000;
            rank = (rank + 1) % 16;
            sink.record(TraceEvent {
                rank,
                start: Time::from_nanos(t),
                end: Time::from_nanos(t + 500),
                kind: TraceKind::Write {
                    file: FileId(1),
                    offset: t,
                    len: 1600,
                    collective: false,
                },
            });
        });
    });
    g.finish();
}

criterion_group!(benches, bench_search, bench_profile_sink);
criterion_main!(benches);
