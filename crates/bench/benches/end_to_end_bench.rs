//! End-to-end simulation throughput: how much simulated application does
//! the engine execute per second of host time. These are the numbers that
//! decide whether the paper-scale experiments (8.4 × 10⁶ I/O operations in
//! BT-IO *simple* class C) are practical.

use cluster::{presets, DeviceLayout, IoConfigBuilder};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ioeval_core::charact::characterize_app;
use workloads::{BtClass, BtIo, BtSubtype, FileType, MadBench};

fn bench_btio(c: &mut Criterion) {
    let spec = presets::test_cluster();
    let config = IoConfigBuilder::new(DeviceLayout::Jbod).build();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);

    let ops = {
        let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple).with_dumps(2);
        (0..4)
            .map(|r| bt.simple_ops_per_rank_per_dump(r) * 2 * 2) // writes+reads
            .sum::<u64>()
    };
    g.throughput(Throughput::Elements(ops));
    g.bench_function("btio_simple_class_s", |b| {
        b.iter(|| {
            let bt = BtIo::new(BtClass::S, 4, BtSubtype::Simple)
                .with_dumps(2)
                .gflops(50.0);
            characterize_app(&spec, &config, bt.scenario(), None)
        });
    });

    g.bench_function("btio_full_class_s", |b| {
        b.iter(|| {
            let bt = BtIo::new(BtClass::S, 4, BtSubtype::Full)
                .with_dumps(2)
                .gflops(50.0);
            characterize_app(&spec, &config, bt.scenario(), None)
        });
    });

    g.bench_function("madbench_1kpix", |b| {
        b.iter(|| {
            let mb = MadBench::new(4, FileType::Shared).with_kpix(1);
            characterize_app(&spec, &config, mb.scenario(), None)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_btio);
criterion_main!(benches);
