//! # bench — the paper-reproduction harness
//!
//! One function per table and figure of the paper's evaluation section;
//! the `repro` binary dispatches to them. Each experiment renders the same
//! rows/series the paper reports (see `DESIGN.md` §4 for the index).
//!
//! Two scales are supported:
//!
//! * [`Scale::Paper`] — the paper's exact parameters (class C BT-IO,
//!   18 KPIX MADbench2, full characterization sweeps). Minutes of host
//!   time; used to produce `EXPERIMENTS.md`.
//! * [`Scale::Quick`] — reduced parameters with the same structure, for CI
//!   and smoke-testing the harness end to end in seconds.

pub mod checkpoint;
pub mod context;
pub mod experiments;
pub mod hotpath;
pub mod scenario_grid;

pub use checkpoint::{CampaignStore, CheckpointDir, WriteRetry};
pub use context::{write_artifact, PfsFaultProfile, Repro, Scale};
