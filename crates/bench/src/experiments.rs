//! One function per table/figure of the paper (see DESIGN.md §4).

use crate::context::Repro;
use cluster::ClusterSpec;
use ioeval_core::charact::characterize_app;
use ioeval_core::eval::EvalReport;
use ioeval_core::perf_table::{AccessMode, IoLevel, OpType, PerfTableSet};
use ioeval_core::report::{
    render_app_profile, render_metrics, render_phase_timeline, render_usage_matrix, TextTable,
};
use ioeval_core::trace::PhaseClass;
use simcore::fmt_bytes;
use workloads::madbench::markers;
use workloads::{BtSubtype, FileType};

fn rate_cell(set: &PerfTableSet, level: IoLevel, op: OpType, block: u64) -> String {
    set.get(level)
        .and_then(|t| t.search_lenient(op, block, level.access_type(), AccessMode::Sequential))
        .map(|r| format!("{:.1}", r.rate.as_mib_per_sec()))
        .unwrap_or_else(|| "-".into())
}

/// Table I: the performance-table data structure, demonstrated on a live
/// characterization.
pub fn table1(r: &mut Repro) -> String {
    let spec = r.aohyper();
    let config = &r.aohyper_configs()[0];
    let set = r.characterize(&spec, config);
    let mut out = String::from(
        "Table I — data structure of the I/O performance table\n\
         Attributes: OperationType {read(0), write(1)}, Blocksize (bytes),\n\
         AccessType {Local(0), Global(1)}, AccessesMode {Sequential, Strided,\n\
         Random}, transferRate (MiB/s) — plus measured IOPs and latency.\n\n\
         Sample rows (Aohyper / JBOD / local filesystem level):\n\n",
    );
    if let Some(t) = set.get(IoLevel::LocalFs) {
        out.push_str(&ioeval_core::report::render_perf_table(t));
    }
    out
}

/// Fig. 4: the I/O configurations of the cluster Aohyper.
pub fn fig4(r: &mut Repro) -> String {
    let spec = r.aohyper();
    let mut t = TextTable::new(vec!["configuration", "devices", "network", "write cache"]);
    for c in r.aohyper_configs() {
        t.row(vec![
            c.name.clone(),
            format!("{:?}", c.devices),
            format!("{:?}", c.network),
            if c.write_cache_mib > 0 {
                format!("{} MiB write-back", c.write_cache_mib)
            } else {
                "none".into()
            },
        ]);
    }
    format!(
        "Fig. 4 — I/O configurations of the cluster {} \
         ({} compute nodes, {} RAM each; I/O node {} RAM):\n\n{}",
        spec.name,
        spec.compute_nodes,
        fmt_bytes(spec.node_ram),
        fmt_bytes(spec.io_node_ram),
        t.render()
    )
}

fn fs_characterization_figure(r: &mut Repro, spec: &ClusterSpec, title: &str) -> String {
    let configs = if spec.name == "Aohyper" {
        r.aohyper_configs()
    } else {
        vec![r.cluster_a_config()]
    };
    let records = r.charact_options(spec).records;
    let mut out = format!("{title}\n");
    for config in &configs {
        let set = r.characterize(spec, config);
        let mut t = TextTable::new(vec![
            "record",
            "localFS write MiB/s",
            "localFS read MiB/s",
            "NFS write MiB/s",
            "NFS read MiB/s",
        ]);
        for &rec in &records {
            t.row(vec![
                fmt_bytes(rec),
                rate_cell(&set, IoLevel::LocalFs, OpType::Write, rec),
                rate_cell(&set, IoLevel::LocalFs, OpType::Read, rec),
                rate_cell(&set, IoLevel::GlobalFs, OpType::Write, rec),
                rate_cell(&set, IoLevel::GlobalFs, OpType::Read, rec),
            ]);
        }
        out.push_str(&format!(
            "\n-- configuration: {} --\n{}",
            config.name,
            t.render()
        ));
    }
    out
}

/// Fig. 5: local and network filesystem characterization of Aohyper
/// (sequential IOzone sweep; the paper's curves).
pub fn fig5(r: &mut Repro) -> String {
    let spec = r.aohyper();
    fs_characterization_figure(
        r,
        &spec,
        "Fig. 5 — Aohyper local/network filesystem characterization \
         (IOzone, file = 2x RAM, sequential):",
    )
}

fn library_characterization_figure(r: &mut Repro, spec: &ClusterSpec, title: &str) -> String {
    let configs = if spec.name == "Aohyper" {
        r.aohyper_configs()
    } else {
        vec![r.cluster_a_config()]
    };
    let blocks = r.charact_options(spec).ior_blocks;
    let mut out = format!("{title}\n");
    for config in &configs {
        let set = r.characterize(spec, config);
        let mut t = TextTable::new(vec!["block", "write MiB/s", "read MiB/s"]);
        for &b in &blocks {
            t.row(vec![
                fmt_bytes(b),
                rate_cell(&set, IoLevel::Library, OpType::Write, b),
                rate_cell(&set, IoLevel::Library, OpType::Read, b),
            ]);
        }
        out.push_str(&format!(
            "\n-- configuration: {} --\n{}",
            config.name,
            t.render()
        ));
    }
    out
}

/// Fig. 6: I/O library characterization of Aohyper (IOR sweep).
pub fn fig6(r: &mut Repro) -> String {
    let spec = r.aohyper();
    library_characterization_figure(
        r,
        &spec,
        "Fig. 6 — Aohyper I/O library characterization \
         (IOR, 8 procs, 256 KiB transfers):",
    )
}

/// Table II: NAS BT-IO characterization, class C, 16 processes.
pub fn table2(r: &mut Repro) -> String {
    btio_characterization_table(r, 16, "Table II — NAS BT-IO characterization, 16 processes")
}

/// Table V: NAS BT-IO characterization, class C, 64 processes.
pub fn table5(r: &mut Repro) -> String {
    btio_characterization_table(r, 64, "Table V — NAS BT-IO characterization, 64 processes")
}

fn btio_characterization_table(r: &mut Repro, procs: usize, title: &str) -> String {
    let spec = r.aohyper();
    let config = &r.aohyper_configs()[0];
    let mut out = format!("{title}\n");
    for subtype in [BtSubtype::Full, BtSubtype::Simple] {
        let bt = r.btio(procs, subtype);
        let profile = characterize_app(&spec, config, bt.scenario(), None)
            .expect("BT-IO characterization on a preset configuration");
        out.push_str(&format!("\n-- subtype: {subtype:?} --\n"));
        out.push_str(&render_app_profile(&profile));
    }
    out
}

fn phase_figure(title: &str, profile: &ioeval_core::trace::AppProfile) -> String {
    let mut t = TextTable::new(vec!["phase", "class", "ops", "bytes", "start", "duration"]);
    // Show at most the first 20 I/O bursts plus a summary.
    for (i, p) in profile.phases.io_phases().take(20).enumerate() {
        t.row(vec![
            format!("{i}"),
            format!("{:?}", p.class),
            p.ops.to_string(),
            fmt_bytes(p.bytes),
            format!("{}", p.start),
            format!("{}", p.end.saturating_sub(p.start)),
        ]);
    }
    let mut sig = TextTable::new(vec!["class", "bytes bucket", "repetitions (weight)"]);
    for (class, bucket, n) in profile.phases.signature_weights() {
        sig.row(vec![format!("{class:?}"), fmt_bytes(bucket), n.to_string()]);
    }
    let writes = profile
        .phases
        .io_phases()
        .filter(|p| p.class == PhaseClass::Write)
        .count();
    let reads = profile
        .phases
        .io_phases()
        .filter(|p| p.class == PhaseClass::Read)
        .count();
    format!(
        "{title}\n\nI/O phases on the representative rank: {writes} write, {reads} read\n\n\
         timeline:\n{}\nfirst bursts:\n{}\nphase signatures (repetitive behaviour):\n{}",
        render_phase_timeline(profile, 100),
        t.render(),
        sig.render()
    )
}

/// Fig. 8: BT-IO trace phases (write phases interleaved with
/// communication, one read phase at the end).
pub fn fig8(r: &mut Repro) -> String {
    let spec = r.aohyper();
    let config = &r.aohyper_configs()[0];
    let mut out = String::new();
    for subtype in [BtSubtype::Full, BtSubtype::Simple] {
        let bt = r.btio(16, subtype);
        let profile = characterize_app(&spec, config, bt.scenario(), None)
            .expect("BT-IO characterization on a preset configuration");
        out.push_str(&phase_figure(
            &format!("Fig. 8 — NAS BT-IO {subtype:?} subtype traces (16 processes)"),
            &profile,
        ));
        out.push('\n');
    }
    out
}

/// Runs BT-IO over every Aohyper configuration (memoized); returns
/// `(config name, subtype label, report)` triples.
fn btio_aohyper_runs(r: &mut Repro, procs: usize) -> Vec<(String, String, EvalReport)> {
    let spec = r.aohyper();
    let mut out = Vec::new();
    for config in r.aohyper_configs() {
        for subtype in [BtSubtype::Full, BtSubtype::Simple] {
            let bt = r.btio(procs, subtype);
            let key = format!("btio{procs}-{subtype:?}");
            let report = r.eval(&spec, &config, &key, bt.scenario());
            out.push((
                config.name.clone(),
                format!("{subtype:?}").to_uppercase(),
                report,
            ));
        }
    }
    out
}

/// Fig. 12: BT-IO class C / 16 procs on the three Aohyper configurations —
/// execution time, I/O time and throughput.
pub fn fig12(r: &mut Repro) -> String {
    let runs = btio_aohyper_runs(r, 16);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    format!(
        "Fig. 12 — NAS BT-IO 16 processes on Aohyper:\n\n{}",
        render_metrics(&refs)
    )
}

/// Table III: % of I/O system used by BT-IO writes on Aohyper.
pub fn table3(r: &mut Repro) -> String {
    let runs = btio_aohyper_runs(r, 16);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    render_usage_matrix(
        "Table III — % of I/O system use for NAS BT-IO on Aohyper",
        OpType::Write,
        &refs,
    )
}

/// Table IV: % of I/O system used by BT-IO reads on Aohyper.
pub fn table4(r: &mut Repro) -> String {
    let runs = btio_aohyper_runs(r, 16);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    render_usage_matrix(
        "Table IV — % of I/O system use for NAS BT-IO on Aohyper",
        OpType::Read,
        &refs,
    )
}

/// Fig. 13: cluster A local/network filesystem characterization.
pub fn fig13(r: &mut Repro) -> String {
    let spec = r.cluster_a();
    fs_characterization_figure(
        r,
        &spec,
        "Fig. 13 — Cluster A local/network filesystem characterization:",
    )
}

/// Fig. 14: cluster A I/O library characterization.
pub fn fig14(r: &mut Repro) -> String {
    let spec = r.cluster_a();
    library_characterization_figure(
        r,
        &spec,
        "Fig. 14 — Cluster A I/O library characterization (IOR):",
    )
}

/// Runs BT-IO on cluster A for 16 and 64 procs.
fn btio_cluster_a_runs(r: &mut Repro) -> Vec<(String, String, EvalReport)> {
    let spec = r.cluster_a();
    let config = r.cluster_a_config();
    let mut out = Vec::new();
    for procs in [16usize, 64] {
        for subtype in [BtSubtype::Full, BtSubtype::Simple] {
            let bt = r.btio(procs, subtype).gflops(2.0); // faster Xeons
            let key = format!("btioA{procs}-{subtype:?}");
            let report = r.eval(&spec, &config, &key, bt.scenario());
            out.push((
                format!("{procs}"),
                format!("{subtype:?}").to_uppercase(),
                report,
            ));
        }
    }
    out
}

/// Fig. 15: BT-IO on cluster A for 16 and 64 processes.
pub fn fig15(r: &mut Repro) -> String {
    let runs = btio_cluster_a_runs(r);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    format!(
        "Fig. 15 — NAS BT-IO on Cluster A (rows: processes):\n\n{}",
        render_metrics(&refs)
    )
}

/// Table VI: % use, BT-IO writes on cluster A.
pub fn table6(r: &mut Repro) -> String {
    let runs = btio_cluster_a_runs(r);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    render_usage_matrix(
        "Table VI — % of I/O system use for NAS BT-IO on Cluster A (rows: processes)",
        OpType::Write,
        &refs,
    )
}

/// Table VII: % use, BT-IO reads on cluster A.
pub fn table7(r: &mut Repro) -> String {
    let runs = btio_cluster_a_runs(r);
    let refs: Vec<(&str, &str, &EvalReport)> = runs
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    render_usage_matrix(
        "Table VII — % of I/O system use for NAS BT-IO on Cluster A (rows: processes)",
        OpType::Read,
        &refs,
    )
}

/// Fig. 16: MADbench2 trace phases, cross-checked against the I/O-path
/// event stream: the traced phase boundaries bin the observed MPI-IO,
/// fabric and storage activity into a per-phase utilization timeline.
pub fn fig16(r: &mut Repro) -> String {
    use ioeval_core::obs::{phase_timeline, render_phase_utilization, Collector};
    let spec = r.aohyper();
    let config = &r.aohyper_configs()[0];
    let mut out = String::new();
    for ft in [FileType::Unique, FileType::Shared] {
        let mb = r.madbench(16, ft);
        let collector = Collector::new();
        let profile = {
            let _guard = collector.install();
            characterize_app(&spec, config, mb.scenario(), None)
                .expect("MADbench2 characterization on a preset configuration")
        };
        out.push_str(&phase_figure(
            &format!("Fig. 16 — MADbench2 traces, 16 processes, {ft:?} filetype"),
            &profile,
        ));
        let timeline = phase_timeline(&collector.take().events, &profile);
        out.push_str(&format!(
            "per-phase I/O-path utilization (observed events binned into the traced phases):\n{}",
            render_phase_utilization(&timeline)
        ));
        out.push('\n');
    }
    out
}

/// Table VIII: MADbench2 characterization, 16 and 64 processes.
pub fn table8(r: &mut Repro) -> String {
    let spec = r.cluster_a();
    let config = r.cluster_a_config();
    let mut out = String::from("Table VIII — MADbench2 characterization\n");
    for procs in [16usize, 64] {
        for ft in [FileType::Unique, FileType::Shared] {
            let mb = r.madbench(procs, ft);
            let profile = characterize_app(&spec, &config, mb.scenario(), None)
                .expect("MADbench2 characterization on a preset configuration");
            out.push_str(&format!("\n-- {procs} processes, {ft:?} --\n"));
            out.push_str(&render_app_profile(&profile));
        }
    }
    out
}

const MARKER_COLS: [(&str, u32, OpType); 4] = [
    ("W_r", markers::W, OpType::Read),
    ("C_r", markers::C, OpType::Read),
    ("S_w", markers::S, OpType::Write),
    ("W_w", markers::W, OpType::Write),
];

fn marker_usage_matrix(
    title: &str,
    level: IoLevel,
    runs: &[(String, String, EvalReport)],
) -> String {
    let mut t = TextTable::new(vec![
        "I/O configuration".to_string(),
        "W_r %".to_string(),
        "C_r %".to_string(),
        "S_w %".to_string(),
        "W_w %".to_string(),
        "FILETYPE".to_string(),
    ]);
    for (config, variant, report) in runs {
        let mut cells = vec![config.clone()];
        for (_, marker, op) in MARKER_COLS {
            cells.push(match report.marker_usage_of(marker, op, level) {
                Some(v) => format!("{v:.1}"),
                None if report.has_marker_usage_row(marker, op, level) => "n/a".into(),
                None => "-".into(),
            });
        }
        cells.push(variant.clone());
        t.row(cells);
    }
    format!("=== {title} ===\n{}", t.render())
}

fn madbench_marker_metrics(runs: &[(String, String, EvalReport)]) -> String {
    let mut t = TextTable::new(vec![
        "config",
        "filetype",
        "exec",
        "io_time",
        "S_w MiB/s",
        "W_w MiB/s",
        "W_r MiB/s",
        "C_r MiB/s",
    ]);
    for (config, variant, r) in runs {
        let rate = |marker: u32, op: OpType| {
            r.profile
                .per_marker
                .iter()
                .find(|m| m.marker == marker && m.op == op)
                .map(|m| format!("{:.1}", m.rate.as_mib_per_sec()))
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            config.clone(),
            variant.clone(),
            format!("{}", r.exec_time),
            format!("{}", r.io_time),
            rate(markers::S, OpType::Write),
            rate(markers::W, OpType::Write),
            rate(markers::W, OpType::Read),
            rate(markers::C, OpType::Read),
        ]);
    }
    t.render()
}

/// Runs MADbench2 on the three Aohyper configurations.
fn madbench_aohyper_runs(r: &mut Repro) -> Vec<(String, String, EvalReport)> {
    let spec = r.aohyper();
    let mut out = Vec::new();
    for config in r.aohyper_configs() {
        for ft in [FileType::Unique, FileType::Shared] {
            let mb = r.madbench(16, ft);
            let key = format!("madbench16-{ft:?}");
            let report = r.eval(&spec, &config, &key, mb.scenario());
            out.push((
                config.name.clone(),
                format!("{ft:?}").to_uppercase(),
                report,
            ));
        }
    }
    out
}

/// Fig. 17: MADbench2 on Aohyper — per-phase times and transfer rates.
pub fn fig17(r: &mut Repro) -> String {
    let runs = madbench_aohyper_runs(r);
    format!(
        "Fig. 17 — MADbench2 on Aohyper (16 processes):\n\n{}",
        madbench_marker_metrics(&runs)
    )
}

/// Table IX: % used by MADbench2 on the local filesystem level (Aohyper).
pub fn table9(r: &mut Repro) -> String {
    let runs = madbench_aohyper_runs(r);
    marker_usage_matrix(
        "Table IX — % of use for MADbench2 on local filesystem (Aohyper)",
        IoLevel::LocalFs,
        &runs,
    )
}

/// Runs MADbench2 on cluster A for 16 and 64 procs.
fn madbench_cluster_a_runs(r: &mut Repro) -> Vec<(String, String, EvalReport)> {
    let spec = r.cluster_a();
    let config = r.cluster_a_config();
    let mut out = Vec::new();
    for procs in [16usize, 64] {
        for ft in [FileType::Unique, FileType::Shared] {
            let mb = r.madbench(procs, ft);
            let key = format!("madbenchA{procs}-{ft:?}");
            let report = r.eval(&spec, &config, &key, mb.scenario());
            out.push((format!("{procs}"), format!("{ft:?}").to_uppercase(), report));
        }
    }
    out
}

/// Fig. 18: MADbench2 on cluster A.
pub fn fig18(r: &mut Repro) -> String {
    let runs = madbench_cluster_a_runs(r);
    format!(
        "Fig. 18 — MADbench2 on Cluster A (rows: processes):\n\n{}",
        madbench_marker_metrics(&runs)
    )
}

/// Table X: % used by MADbench2 at the network-filesystem level (cluster A).
pub fn table10(r: &mut Repro) -> String {
    let runs = madbench_cluster_a_runs(r);
    marker_usage_matrix(
        "Table X — % used by MADbench2 on network filesystem (Cluster A; rows: processes)",
        IoLevel::GlobalFs,
        &runs,
    )
}

/// Table XI: % used by MADbench2 at the local-filesystem level (cluster A).
pub fn table11(r: &mut Repro) -> String {
    let runs = madbench_cluster_a_runs(r);
    marker_usage_matrix(
        "Table XI — % used by MADbench2 on local filesystem (Cluster A; rows: processes)",
        IoLevel::LocalFs,
        &runs,
    )
}

/// Ablation: the shared-vs-dedicated-network factor the paper lists among
/// the configurable factors but could not vary on its testbeds.
pub fn ablation_network(r: &mut Repro) -> String {
    use cluster::{IoConfigBuilder, NetworkLayout};
    let spec = r.aohyper();
    let mut rows = Vec::new();
    for (label, layout) in [
        ("dedicated data network", NetworkLayout::Split),
        ("shared single network", NetworkLayout::Shared),
    ] {
        let config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .network(layout)
            .name(label)
            .build();
        let bt = r.btio(16, BtSubtype::Full);
        let key = format!("ablation-net-{label}");
        let report = r.eval(&spec, &config, &key, bt.scenario());
        rows.push((label.to_string(), "FULL".to_string(), report));
    }
    let refs: Vec<(&str, &str, &EvalReport)> = rows
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    format!(
        "Ablation — network layout (BT-IO full, 16 procs, RAID 5):\n\n{}",
        render_metrics(&refs)
    )
}

/// Ablation: controller write-back cache on/off (the paper's arrays run
/// "with write-cache enabled (write back)").
pub fn ablation_write_cache(r: &mut Repro) -> String {
    use cluster::IoConfigBuilder;
    let spec = r.aohyper();
    let mut rows = Vec::new();
    for (label, mib) in [("write-back 256MiB", 256u64), ("write-through (off)", 0)] {
        let config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .write_cache_mib(mib)
            .name(label)
            .build();
        let mb = r.madbench(16, FileType::Shared);
        let key = format!("ablation-wc-{label}");
        let report = r.eval(&spec, &config, &key, mb.scenario());
        rows.push((label.to_string(), "SHARED".to_string(), report));
    }
    format!(
        "Ablation — RAID 5 controller write cache (MADbench2, 16 procs):\n\n{}",
        madbench_marker_metrics(&rows)
    )
}

/// Ablation: RAID 5 sequential parity coalescing (stripe cache) on/off.
pub fn ablation_coalesce(r: &mut Repro) -> String {
    use cluster::IoConfigBuilder;
    use ioeval_core::charact::{characterize_system, CharacterizeOptions};
    use simcore::{KIB, MIB};
    let spec = r.aohyper();
    let mut out =
        String::from("Ablation — RAID 5 stripe coalescing (local-FS characterized write rates):\n");
    for (label, on) in [("coalescing on", true), ("coalescing off", false)] {
        let config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .raid5_coalesce(on)
            .name(label)
            .build();
        // This ablation needs the random-mode sweep, which the paper-scale
        // (sequential) characterization does not produce; run a dedicated
        // reduced sweep covering both modes.
        let mut opts = CharacterizeOptions::quick().all_modes();
        opts.records = vec![64 * KIB, MIB, 16 * MIB];
        opts.iozone_file_size = Some(512 * MIB);
        let set = characterize_system(&spec, &config, &opts)
            .expect("coalescing ablation characterization");
        let records = opts.records.clone();
        let mut t = TextTable::new(vec!["record", "seq write MiB/s", "rand write MiB/s"]);
        for &rec in &records {
            t.row(vec![
                fmt_bytes(rec),
                rate_cell(&set, IoLevel::LocalFs, OpType::Write, rec),
                set.get(IoLevel::LocalFs)
                    .and_then(|tb| {
                        tb.search_lenient(
                            OpType::Write,
                            rec,
                            IoLevel::LocalFs.access_type(),
                            AccessMode::Random,
                        )
                    })
                    .map(|r| format!("{:.1}", r.rate.as_mib_per_sec()))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        out.push_str(&format!("\n-- {label} --\n{}", t.render()));
    }
    out
}

/// Extension: the alternative I/O *architecture* the paper planned to study
/// with the SIMCAN simulator — a parallel filesystem with multiple I/O
/// servers vs. the single NFS node. BT-IO runs with its file on each
/// architecture; the `simple` subtype is where the architecture matters
/// most (PVFS needs no locking, so its tiny strided operations avoid the
/// `lockd` serialization that strangles them on NFS).
pub fn ablation_pfs(r: &mut Repro) -> String {
    use cluster::{IoConfigBuilder, Mount};
    let spec = r.aohyper();
    let mut rows = Vec::new();
    for subtype in [BtSubtype::Full, BtSubtype::Simple] {
        // NFS architecture (the paper's RAID 5 I/O node).
        let nfs_config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper()).build();
        let bt = r.btio(16, subtype);
        let key = format!("btio16-{subtype:?}");
        let report = r.eval(&spec, &nfs_config, &key, bt.scenario());
        rows.push((
            "NFS, 1 I/O node".to_string(),
            format!("{subtype:?}").to_uppercase(),
            report,
        ));
        // PVFS architecture: 4 I/O servers on compute nodes.
        let pfs_config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .pfs(4)
            .name("PVFS x4")
            .build();
        let bt = r.btio(16, subtype).on(Mount::Pfs);
        let key = format!("btio16-pfs-{subtype:?}");
        let report = r.eval(&spec, &pfs_config, &key, bt.scenario());
        rows.push((
            "PVFS, 4 I/O servers".to_string(),
            format!("{subtype:?}").to_uppercase(),
            report,
        ));
    }
    let refs: Vec<(&str, &str, &EvalReport)> = rows
        .iter()
        .map(|(c, v, rep)| (c.as_str(), v.as_str(), rep))
        .collect();
    format!(
        "Ablation — I/O architecture: single NFS node vs parallel FS \
         (BT-IO, 16 procs):\n\n{}",
        render_metrics(&refs)
    )
}

/// The paper's future work, validated: predict each application's I/O time
/// on every Aohyper configuration from the performance tables alone, rank
/// the configurations, and compare the ranking with the actually simulated
/// I/O times.
pub fn advisor(r: &mut Repro) -> String {
    use ioeval_core::advisor::rank_configs;
    let spec = r.aohyper();
    let configs = r.aohyper_configs();

    let mut out =
        String::from("Advisor (paper §V future work) — predicted vs simulated I/O time:\n");
    let cases: Vec<(String, Vec<(String, EvalReport)>)> = vec![
        (
            "BT-IO full 16p".to_string(),
            configs
                .iter()
                .map(|c| {
                    let bt = r.btio(16, BtSubtype::Full);
                    let key = "btio16-Full".to_string();
                    (c.name.clone(), r.eval(&spec, c, &key, bt.scenario()))
                })
                .collect(),
        ),
        (
            "MADbench2 SHARED 16p".to_string(),
            configs
                .iter()
                .map(|c| {
                    let mb = r.madbench(16, FileType::Shared);
                    let key = "madbench16-Shared".to_string();
                    (c.name.clone(), r.eval(&spec, c, &key, mb.scenario()))
                })
                .collect(),
        ),
    ];

    for (app, runs) in cases {
        let table_sets: Vec<ioeval_core::perf_table::PerfTableSet> =
            configs.iter().map(|c| r.characterize(&spec, c)).collect();
        // Use the first configuration's profile as the application model
        // (the paper: "it is not necessary to re-characterize the
        // application in other system for the same class and processes").
        let profile = &runs[0].1.profile;
        let ranked = rank_configs(profile, table_sets.iter());

        let mut t = TextTable::new(vec!["config", "predicted io", "bottleneck", "simulated io"]);
        for p in &ranked {
            let actual = runs
                .iter()
                .find(|(name, _)| *name == p.config)
                .map(|(_, rep)| format!("{}", rep.io_time))
                .unwrap_or_else(|| "-".into());
            t.row(vec![
                p.config.clone(),
                format!("{}", p.io_time),
                p.bottleneck.label().to_string(),
                actual,
            ]);
        }
        out.push_str(&format!(
            "\n-- {app} (ranked best-first) --\n{}",
            t.render()
        ));
    }
    out
}

/// Beyond the paper: the same IOR-style read campaign on the RAID 5
/// configuration while the array is healthy, one-disk degraded, and
/// rebuilding onto a hot-spare. Degraded cold reads reconstruct the dead
/// member's chunks from every survivor, and the resilver competes with the
/// foreground stream — the table reports how much of the healthy transfer
/// rate each condition retains and how long the rebuild window lasts.
///
/// A second table runs an IOR write campaign on the replicated PVFS
/// deployment (4 I/O servers, 2 replicas per stripe) under the context's
/// [`PfsFaultProfile`]: nominal vs one-server-down (writes fail over to
/// the surviving replica holders) vs recover-mid-run (the returning server
/// resyncs the writes it missed). `--pfs-profile none` skips the second
/// table entirely, rendering exactly the RAID-only output.
pub fn resilience(r: &mut Repro) -> String {
    use crate::context::PfsFaultProfile;
    use cluster::{IoConfigBuilder, Mount};
    use ioeval_core::eval::FaultScenario;
    use ioeval_core::report::render_resilience_table;
    use simcore::{Time, MIB};
    use workloads::{Ior, IorOp};

    let spec = r.aohyper();
    let config = r.aohyper_configs().remove(2); // RAID 5
    let (ranks, block) = match r.scale {
        crate::context::Scale::Paper => (8, 256 * MIB),
        crate::context::Scale::Quick => (4, 32 * MIB),
    };
    let ior = Ior::new(ranks, fs::FileId(90), block, IorOp::Read);
    let key = format!("resilience-ior{ranks}-{}", fmt_bytes(block));

    let scenarios = [
        FaultScenario::Healthy,
        FaultScenario::Degraded {
            disk: 1,
            at: Time::from_millis(100),
        },
        FaultScenario::Rebuilding {
            disk: 1,
            fail_at: Time::from_millis(100),
            replace_at: Time::from_millis(500),
        },
    ];
    let reports: Vec<EvalReport> = scenarios
        .iter()
        .map(|f| r.eval_under(&spec, &config, &key, ior.scenario(), f.clone()))
        .collect();
    let refs: Vec<&EvalReport> = reports.iter().collect();
    let mut out = format!(
        "Resilience — {} on {} / {}: healthy vs degraded vs rebuilding:\n\n{}",
        reports[0].app,
        spec.name,
        config.name,
        render_resilience_table(&refs)
    );

    let fail_at = Time::from_millis(100);
    let recover_at = Time::from_millis(500);
    let pfs_faults: Vec<FaultScenario> = match r.pfs_profile() {
        PfsFaultProfile::Off => Vec::new(),
        PfsFaultProfile::Fail => vec![FaultScenario::PfsDegraded {
            server: 1,
            at: fail_at,
        }],
        PfsFaultProfile::Recover => vec![FaultScenario::PfsRecovered {
            server: 1,
            fail_at,
            recover_at,
        }],
        PfsFaultProfile::Full => vec![
            FaultScenario::PfsDegraded {
                server: 1,
                at: fail_at,
            },
            FaultScenario::PfsRecovered {
                server: 1,
                fail_at,
                recover_at,
            },
        ],
    };
    if !pfs_faults.is_empty() {
        let pfs_config = IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .pfs(4)
            .pfs_replicas(2)
            .name("PVFS x4 r2")
            .build();
        let pfs_ior = Ior::new(ranks, fs::FileId(91), block, IorOp::Write).on(Mount::Pfs);
        let pfs_key = format!("resilience-pfs-ior{ranks}-{}", fmt_bytes(block));
        let pfs_reports: Vec<EvalReport> = std::iter::once(FaultScenario::Healthy)
            .chain(pfs_faults)
            .map(|f| r.eval_under(&spec, &pfs_config, &pfs_key, pfs_ior.scenario(), f))
            .collect();
        let pfs_refs: Vec<&EvalReport> = pfs_reports.iter().collect();
        out.push_str(&format!(
            "\n\nPFS resilience — {} on {} / {} (2 replicas): nominal vs server faults:\n\n{}",
            pfs_reports[0].app,
            spec.name,
            pfs_config.name,
            render_resilience_table(&pfs_refs)
        ));
    }
    out
}

/// Beyond the paper: the whole methodology as one *supervised* campaign —
/// every Aohyper configuration characterized, BT-IO evaluated on each, the
/// advisor's table-only predictions validated against the simulated runs.
/// Cells run panic-isolated under the context's watchdog budgets; with a
/// checkpoint directory attached (`repro --checkpoint DIR`), every
/// finished characterization and cell persists to disk as it completes,
/// so a killed run resumes from the last finished cell and renders
/// byte-identically to an uninterrupted one.
pub fn campaign(r: &mut Repro) -> String {
    use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore};
    let spec = r.aohyper();
    let configs = r.aohyper_configs();
    let opts = r.charact_options(&spec);
    let sup = r.supervise_options();
    let bt_full = r.btio(16, BtSubtype::Full);
    let bt_simple = r.btio(16, BtSubtype::Simple);
    let full = || bt_full.scenario();
    let simple = || bt_simple.scenario();
    let apps: Vec<AppFactory> = vec![("btio-full-16p", &full), ("btio-simple-16p", &simple)];
    let campaign = match r.cell_store_mut() {
        Some(store) => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, store),
        None => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore),
    };
    format!(
        "Campaign — supervised methodology run (paper Fig. 1 end to end):\n\n{}",
        campaign.render()
    )
}

/// Geometric mean of strictly positive samples (`None` when empty or any
/// sample is non-positive — a zero phase score voids an IO500 submission
/// rather than silently inflating the mean).
fn geomean(vals: &[f64]) -> Option<f64> {
    if vals.is_empty() || vals.iter().any(|v| *v <= 0.0) {
        return None;
    }
    Some((vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp())
}

/// Beyond the paper: an IO500-style flagship run — the bandwidth phases
/// (ior-easy: large sequential transfers; ior-hard: small 47008-byte
/// interleaved transfers into a shared file) and the metadata phases
/// (mdtest-easy: unique directory per rank; mdtest-hard: one shared
/// directory), executed as one supervised campaign per storage backend
/// (single NFS node vs replicated PVFS). Each backend's score is the
/// IO500 composite: the geometric mean of the ior rates (MiB/s), the
/// geometric mean of the mdtest rates (kIOPS), and the square root of
/// their product. With a checkpoint directory attached the campaign cells
/// persist and resume exactly like the `campaign` experiment.
pub fn io500(r: &mut Repro) -> String {
    use cluster::{IoConfigBuilder, Mount};
    use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore};
    use simcore::MIB;
    use workloads::{Ior, IorOp, Mdtest};

    let spec = r.aohyper();
    let (ranks, easy_block, hard_block, files) = match r.scale {
        crate::context::Scale::Paper => (8usize, 64 * MIB, 8 * MIB, 200usize),
        crate::context::Scale::Quick => (4, 8 * MIB, MIB, 25),
    };
    let backends: [(cluster::IoConfig, Mount); 2] = [
        (
            IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
                .name("NFS RAID5")
                .build(),
            Mount::NfsDirect,
        ),
        (
            IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
                .pfs(4)
                .pfs_replicas(2)
                .name("PVFS x4 r2")
                .build(),
            Mount::Pfs,
        ),
    ];

    let mut out = String::from(
        "IO500 — flagship composite: ior bandwidth + mdtest metadata phases per backend:\n",
    );
    for (config, mount) in backends {
        // ior-hard uses the IO500's odd 47008-byte transfers, so the last
        // transfer of every rank is a ragged remainder.
        let mut ior_hard_w = Ior::new(ranks, fs::FileId(700), hard_block, IorOp::Write).on(mount);
        ior_hard_w.transfer = 47_008;
        let mut ior_hard_r = Ior::new(ranks, fs::FileId(700), hard_block, IorOp::Read).on(mount);
        ior_hard_r.transfer = 47_008;
        let ior_easy_w = Ior::new(ranks, fs::FileId(701), easy_block, IorOp::Write).on(mount);
        let ior_easy_r = Ior::new(ranks, fs::FileId(701), easy_block, IorOp::Read).on(mount);
        let md_easy = Mdtest::easy(ranks, files).on(mount).base(fs::FileId(6000));
        let md_hard = Mdtest::hard(ranks, files).on(mount).base(fs::FileId(7000));

        let f_easy_w = || ior_easy_w.scenario();
        let f_easy_r = || ior_easy_r.scenario();
        let f_hard_w = || ior_hard_w.scenario();
        let f_hard_r = || ior_hard_r.scenario();
        let f_md_easy = || md_easy.scenario();
        let f_md_hard = || md_hard.scenario();
        let apps: Vec<AppFactory> = vec![
            ("ior-easy-write", &f_easy_w),
            ("ior-easy-read", &f_easy_r),
            ("ior-hard-write", &f_hard_w),
            ("ior-hard-read", &f_hard_r),
            ("mdtest-easy", &f_md_easy),
            ("mdtest-hard", &f_md_hard),
        ];
        let opts = r.charact_options(&spec);
        let sup = r.supervise_options();
        let configs = [config];
        let campaign = match r.cell_store_mut() {
            Some(store) => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, store),
            None => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore),
        };

        // A phase that completed without moving any bytes (or metadata
        // ops) has a zero — or, with a zero-duration run, NaN — rate.
        // Feeding that into the geometric mean would void the whole
        // composite with no explanation (or worse, propagate NaN/-inf
        // into the score line), so undefined phases render `n/a` with the
        // reason, are excluded from their mean, and are named next to the
        // composite — the same discipline `EvalNote` applies to zero
        // characterized rates.
        let mut t = TextTable::new(vec!["phase", "result"]);
        let mut bw = Vec::new();
        let mut md = Vec::new();
        let mut undefined: Vec<String> = Vec::new();
        for (app, _) in &apps {
            let cell = campaign.cells.iter().find(|c| c.app == *app);
            let result = match cell {
                Some(c) if app.starts_with("ior") => {
                    let rate = c.report.write_rate.max(c.report.read_rate).as_mib_per_sec();
                    if rate.is_finite() && rate > 0.0 {
                        bw.push(rate);
                        format!("{rate:.1} MiB/s")
                    } else {
                        undefined.push(app.to_string());
                        "n/a (zero I/O rate)".into()
                    }
                }
                Some(c) => {
                    let kiops = c.report.meta_ops_per_sec() / 1000.0;
                    if kiops.is_finite() && kiops > 0.0 {
                        md.push(kiops);
                        format!("{kiops:.3} kIOPS")
                    } else {
                        undefined.push(app.to_string());
                        "n/a (zero metadata rate)".into()
                    }
                }
                None => {
                    undefined.push(app.to_string());
                    "n/a (cell did not complete)".into()
                }
            };
            t.row(vec![app.to_string(), result]);
        }
        out.push_str(&format!(
            "\n-- backend: {} ({} ranks) --\n{}",
            configs[0].name,
            ranks,
            t.render()
        ));
        match (geomean(&bw), geomean(&md)) {
            (Some(b), Some(m)) => {
                out.push_str(&format!(
                    "bandwidth score: {b:.1} MiB/s (geometric mean of {} ior phases)\n\
                     metadata score: {m:.3} kIOPS (geometric mean of {} mdtest phases)\n\
                     io500 score: {:.3} (sqrt of bandwidth x metadata)\n",
                    bw.len(),
                    md.len(),
                    (b * m).sqrt()
                ));
                if !undefined.is_empty() {
                    out.push_str(&format!(
                        "note: composite over defined phases only; n/a: {}\n",
                        undefined.join(", ")
                    ));
                }
            }
            _ => out.push_str(&format!(
                "io500 score: incomplete (every {} phase is n/a: {})\n",
                if bw.is_empty() {
                    "bandwidth"
                } else {
                    "metadata"
                },
                undefined.join(", ")
            )),
        }
        if campaign.is_degraded() {
            out.push_str(&format!(
                "degraded campaign: {}\n",
                campaign.error_summary()
            ));
        }
    }
    out
}

/// The experiment registry: (id, description, function).
pub type ExperimentFn = fn(&mut Repro) -> String;

/// All experiments in paper order.
pub fn registry() -> Vec<(&'static str, &'static str, ExperimentFn)> {
    vec![
        (
            "table1",
            "performance-table schema with sample rows",
            table1,
        ),
        ("fig4", "Aohyper I/O configurations", fig4),
        (
            "fig5",
            "Aohyper local/NFS filesystem characterization",
            fig5,
        ),
        ("fig6", "Aohyper I/O library characterization", fig6),
        ("table2", "BT-IO characterization, 16 procs", table2),
        ("fig8", "BT-IO trace phases", fig8),
        ("fig12", "BT-IO metrics on Aohyper", fig12),
        ("table3", "BT-IO write usage on Aohyper", table3),
        ("table4", "BT-IO read usage on Aohyper", table4),
        ("fig13", "Cluster A filesystem characterization", fig13),
        ("fig14", "Cluster A library characterization", fig14),
        ("table5", "BT-IO characterization, 64 procs", table5),
        ("fig15", "BT-IO metrics on Cluster A", fig15),
        ("table6", "BT-IO write usage on Cluster A", table6),
        ("table7", "BT-IO read usage on Cluster A", table7),
        ("fig16", "MADbench2 trace phases", fig16),
        ("table8", "MADbench2 characterization", table8),
        ("fig17", "MADbench2 metrics on Aohyper", fig17),
        ("table9", "MADbench2 local-FS usage on Aohyper", table9),
        ("fig18", "MADbench2 metrics on Cluster A", fig18),
        ("table10", "MADbench2 NFS usage on Cluster A", table10),
        ("table11", "MADbench2 local-FS usage on Cluster A", table11),
        // Extensions beyond the paper's artifacts:
        (
            "ablation-net",
            "shared vs dedicated data network",
            ablation_network,
        ),
        (
            "ablation-wcache",
            "controller write cache on/off",
            ablation_write_cache,
        ),
        (
            "ablation-coalesce",
            "RAID 5 stripe coalescing on/off",
            ablation_coalesce,
        ),
        (
            "ablation-pfs",
            "single NFS node vs parallel FS",
            ablation_pfs,
        ),
        (
            "advisor",
            "predicted vs simulated config ranking (paper §V)",
            advisor,
        ),
        (
            "resilience",
            "RAID 5 healthy vs degraded vs rebuilding",
            resilience,
        ),
        (
            "campaign",
            "supervised, resumable methodology campaign",
            campaign,
        ),
        (
            "io500",
            "IO500-style composite: ior + mdtest, NFS vs PFS",
            io500,
        ),
        (
            "scenario",
            "sampled scenario-grammar what-if grid",
            crate::scenario_grid::scenario,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn registry_covers_every_paper_artifact() {
        let ids: Vec<&str> = registry().iter().map(|(id, _, _)| *id).collect();
        for required in [
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
            "table9", "table10", "table11", "fig4", "fig5", "fig6", "fig8", "fig12", "fig13",
            "fig14", "fig15", "fig16", "fig17", "fig18", "io500",
        ] {
            assert!(ids.contains(&required), "missing experiment {required}");
        }
    }

    #[test]
    fn marker_columns_cover_the_papers_four() {
        let names: Vec<&str> = MARKER_COLS.iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, vec!["W_r", "C_r", "S_w", "W_w"]);
    }

    #[test]
    fn fig4_renders_three_configs() {
        let mut r = Repro::new(Scale::Quick);
        let s = fig4(&mut r);
        assert!(s.contains("JBOD"));
        assert!(s.contains("RAID 1"));
        assert!(s.contains("RAID 5"));
    }
}
