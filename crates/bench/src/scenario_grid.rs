//! The `scenario` experiment — campaign-scale what-if exploration over a
//! sampled workload grid.
//!
//! A [`workloads::grammar::Grammar`] describes a *space* of workloads;
//! this experiment draws `sample` concrete variants from it under a fixed
//! seed and sweeps every variant across every Aohyper storage
//! configuration (plus a PVFS deployment) as one supervised campaign —
//! the same scheduler, characterization memo, retry/quarantine policy,
//! and checkpoint store every other campaign experiment uses. The grid
//! easily reaches thousands of cells (`--sample 2500` × 4 configurations
//! = 10k), and renders byte-identically for any `--jobs` value.
//!
//! Checkpoint namespacing: campaign cells persist keyed by `(app,
//! config)` label, so every app label carries a grid tag derived from the
//! [`GridKey`] (grammar digest × seed × sample count). Changing the
//! grammar text, the seed, or the sample count moves the tag and no stale
//! cell can replay into the new grid.

use crate::context::Repro;
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, CellOutcome, GridKey, NoStore};
use ioeval_core::report::TextTable;
use workloads::grammar::{source_digest, Grammar, EXAMPLE};
use workloads::Scenario;

/// Default variant counts per scale: 16 variants × 4 configurations is
/// the pinned 64-cell golden grid; paper scale quadruples the sample.
fn default_sample(r: &Repro) -> usize {
    match r.scale {
        crate::context::Scale::Paper => 64,
        crate::context::Scale::Quick => 16,
    }
}

/// The grid identity of the scenario run this context would perform —
/// grammar source digest (parse not required), sampler seed, sample
/// count. The `repro` binary keys the experiment checkpoint by this, so
/// `--grammar`/`--seed`/`--sample` changes never replay a stale output.
pub fn grid_key(r: &Repro) -> GridKey {
    GridKey {
        grammar: source_digest(r.scenario_grammar().unwrap_or(EXAMPLE)),
        seed: r.scenario_seed(),
        sample: r.scenario_sample().unwrap_or_else(|| default_sample(r)),
    }
}

/// Short per-grid tag baked into campaign app labels (see module docs).
fn grid_tag(key: &GridKey) -> String {
    let s = key.to_string();
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{:08x}", (h ^ (h >> 32)) as u32)
}

/// Beyond the paper: the methodology as a *what-if engine*. Samples the
/// scenario grammar (the worked example by default, `--grammar FILE` to
/// bring your own), compiles every variant to an op program, and runs the
/// variant × configuration grid as one supervised campaign. Per-variant
/// rows show the simulated execution time under every configuration and
/// the advisor's pick; the sampler is seeded, so the whole grid is
/// byte-reproducible and the quick-scale default is pinned as a golden
/// table.
pub fn scenario(r: &mut Repro) -> String {
    let src = r.scenario_grammar().unwrap_or(EXAMPLE).to_string();
    let grammar = match Grammar::parse(&src) {
        Ok(g) => g,
        Err(e) => return format!("Scenario grid: cannot compile grammar: {e}\n"),
    };
    let sample = r.scenario_sample().unwrap_or_else(|| default_sample(r));
    let seed = r.scenario_seed();
    let key = GridKey {
        grammar: grammar.digest,
        seed,
        sample,
    };
    let tag = grid_tag(&key);

    let spec = r.aohyper();
    // The three paper configurations plus a write-cache-off RAID 5 — a
    // fourth axis the paper's tables never sweep, which is the point of a
    // what-if grid. (A PFS deployment would be a no-op column here:
    // grammar files without an explicit `on pfs` mount route to NFS.)
    let mut configs = r.aohyper_configs();
    configs.push(
        cluster::IoConfigBuilder::new(cluster::DeviceLayout::raid5_paper())
            .write_cache_mib(0)
            .name("RAID 5 wc-off")
            .build(),
    );

    let variants = grammar.sample(seed, sample);
    let labels: Vec<String> = variants
        .iter()
        .map(|v| format!("{}@{tag}", v.label))
        .collect();
    let factories: Vec<Box<dyn Fn() -> Scenario + Sync>> = variants
        .iter()
        .map(|v| {
            let v = v.clone();
            Box::new(move || v.scenario()) as Box<dyn Fn() -> Scenario + Sync>
        })
        .collect();
    let apps: Vec<AppFactory> = labels
        .iter()
        .zip(&factories)
        .map(|(label, f)| (label.as_str(), f.as_ref()))
        .collect();

    let opts = r.charact_options(&spec);
    let sup = r.supervise_options();
    let campaign = match r.cell_store_mut() {
        Some(store) => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, store),
        None => run_campaign_supervised(&spec, &configs, &apps, &opts, &sup, &mut NoStore),
    };

    let mut out = format!(
        "Scenario grid — grammar '{}' ({key}): {sample} variants x {} configurations = {} cells on {}:\n",
        grammar.name,
        configs.len(),
        sample * configs.len(),
        spec.name,
    );
    let distinct: std::collections::BTreeSet<u64> = variants.iter().map(|v| v.digest).collect();
    let (rmin, rmax) = variants.iter().fold((usize::MAX, 0), |(lo, hi), v| {
        (lo.min(v.ranks), hi.max(v.ranks))
    });
    out.push_str(&format!(
        "variant space: {} distinct resolved programs, ranks {rmin}..{rmax}\n\n",
        distinct.len()
    ));

    // One row per variant, one execution-time column per configuration —
    // the what-if grid itself.
    let mut header = vec![
        "variant".to_string(),
        "ranks".to_string(),
        "ops".to_string(),
    ];
    header.extend(configs.iter().map(|c| c.name.clone()));
    header.push("fastest".to_string());
    let mut t = TextTable::new(header.iter().map(String::as_str).collect());
    for (vi, v) in variants.iter().enumerate() {
        let mut row = vec![
            v.label.clone(),
            v.ranks.to_string(),
            v.ops_per_rank().to_string(),
        ];
        let mut best: Option<(&str, simcore::Time)> = None;
        for (ci, config) in configs.iter().enumerate() {
            let outcome = &campaign.outcomes[vi * configs.len() + ci];
            match outcome {
                CellOutcome::Ok(cell) => {
                    let exec = cell.report.exec_time;
                    if best.is_none_or(|(_, b)| exec < b) {
                        best = Some((&config.name, exec));
                    }
                    row.push(format!("{exec}"));
                }
                other => row.push(other.label().to_string()),
            }
        }
        row.push(best.map_or("-".to_string(), |(name, _)| name.to_string()));
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str(&format!("\noutcomes: {}\n", campaign.error_summary()));
    if let Some(err) = campaign.mean_prediction_error() {
        out.push_str(&format!(
            "advisor mean prediction error over the grid: {:.1}%\n",
            err * 100.0
        ));
    }
    if campaign.is_degraded() {
        for (config, error) in &campaign.charact_errors {
            out.push_str(&format!("characterization of {config} failed: {error}\n"));
        }
        let mut t = TextTable::new(vec!["variant", "config", "outcome", "detail"]);
        for o in campaign.outcomes.iter().filter(|o| !o.is_ok()) {
            let detail = match o {
                CellOutcome::Failed {
                    error, attempts, ..
                } => format!("{error} (attempt {attempts})"),
                CellOutcome::TimedOut {
                    abort, attempts, ..
                } => format!("{abort} (attempt {attempts})"),
                CellOutcome::Skipped { reason, .. } => reason.clone(),
                CellOutcome::Ok(_) => unreachable!("filtered"),
            };
            t.row(vec![
                o.app().to_string(),
                o.config().to_string(),
                o.label().to_string(),
                detail,
            ]);
        }
        out.push_str(&t.render());
    }
    // Store-health footer intentionally matches Campaign::render's
    // discipline: operational state surfaces only when something broke.
    let health = ioeval_core::campaign::StoreHealth {
        quarantined: 0,
        ..campaign.store_health
    };
    if health.any() {
        out.push_str(&format!(
            "{}{} --\n",
            ioeval_core::campaign::STORE_HEALTH_MARKER,
            health.summary()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Scale;

    #[test]
    fn grid_key_tracks_grammar_seed_and_sample() {
        let base = grid_key(&Repro::new(Scale::Quick));
        let reseeded = grid_key(&Repro::new(Scale::Quick).with_scenario_seed(7));
        assert_ne!(base, reseeded);
        let resampled = grid_key(&Repro::new(Scale::Quick).with_scenario_sample(99));
        assert_ne!(base, resampled);
        let regrammar = grid_key(
            &Repro::new(Scale::Quick).with_scenario_grammar("scenario x\nphase p { barrier }"),
        );
        assert_ne!(base, regrammar);
        // Comments and whitespace do not move the grid.
        let reformatted = grid_key(
            &Repro::new(Scale::Quick)
                .with_scenario_grammar(workloads::grammar::EXAMPLE.to_string() + "\n# trailing\n"),
        );
        assert_eq!(base, reformatted);
        assert_ne!(grid_tag(&base), grid_tag(&reseeded));
    }

    #[test]
    fn bad_grammar_renders_a_typed_error_not_a_panic() {
        let mut r = Repro::new(Scale::Quick).with_scenario_grammar("scenario s\nphase p {");
        let out = scenario(&mut r);
        assert!(out.contains("cannot compile grammar"), "{out}");
        assert!(out.contains("grammar error"), "{out}");
    }

    #[test]
    fn tiny_grid_runs_and_reports_every_cell() {
        let mut r = Repro::new(Scale::Quick).with_scenario_sample(2);
        let out = scenario(&mut r);
        assert!(
            out.contains("2 variants x 4 configurations = 8 cells"),
            "{out}"
        );
        assert!(out.contains("mixed/v0000"), "{out}");
        assert!(out.contains("mixed/v0001"), "{out}");
        assert!(
            out.contains("8 ok, 0 failed, 0 timed out, 0 skipped"),
            "{out}"
        );
    }
}
