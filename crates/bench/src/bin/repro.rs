//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--out FILE] [--checkpoint DIR | --resume DIR]
//!       [--deadline SECS] [--wall-budget SECS] [--jobs N] [--no-memo]
//!       [--memo-stats] [--trace-out FILE] [--trace-format jsonl|chrome] [--metrics]
//!       [--chaos-seed N] [--chaos-profile NAME] [--chaos-repro TOKEN]
//!       [--pfs-profile full|fail|recover|none] [--strict-store]
//!       [--grammar FILE] [--sample N] [--seed S]
//!       <experiment>... | all | list
//! ```
//!
//! `--grammar FILE`, `--sample N`, and `--seed S` parameterize the
//! `scenario` experiment: the grammar file describes a workload *space*
//! (see `DESIGN.md` §5k), the sampler draws `N` concrete variants under
//! seed `S`, and the variant × configuration grid runs as one supervised
//! campaign — 10k+ cells sweep fine under `--jobs`, with byte-identical
//! output for any worker count.
//!
//! Experiments are named after the paper's artifacts (`table3`, `fig12`,
//! ...); `all` runs the full evaluation section in order. `--scale paper`
//! uses the paper's exact parameters (class C BT-IO, 18 KPIX MADbench2,
//! full sweeps); `--scale quick` (default) runs a structurally identical
//! reduced version in seconds.
//!
//! `--checkpoint DIR` makes the run *resumable*: every finished experiment
//! output and every completed characterization is persisted to `DIR`
//! (digest-verified, written atomically), and a later run with `--resume
//! DIR` (or the same `--checkpoint DIR`) replays finished work from disk
//! instead of recomputing it — a `kill -9` mid-campaign costs at most the
//! cell in flight, and the resumed output is byte-identical to an
//! uninterrupted run. Corrupt or truncated checkpoint files are detected
//! and recomputed.
//!
//! `--deadline SECS` arms a simulated-time watchdog on every run (a
//! livelocked or runaway simulation aborts instead of hanging the
//! campaign); `--wall-budget SECS` adds a host-time ceiling per run.
//!
//! `--jobs N` runs campaign experiments on N worker threads (default 1,
//! or the `IOEVAL_JOBS` environment variable). Parallel campaigns merge
//! deterministically: the rendered output and every checkpoint file are
//! byte-identical to a sequential run — `--jobs` only trades wall-clock
//! for cores.
//!
//! Characterizations are memoized in-process by default: revisiting the
//! same `(cluster, configuration, sweep)` point replays the cached tables
//! instead of re-simulating the sweep. The memo is a pure cache — output
//! is byte-identical with or without it — and its hit/miss counts are
//! reported to stderr at the end of the run. `--no-memo` disables it
//! (every characterization is recomputed), for timing studies.
//!
//! `--trace-out FILE` records the I/O-path event stream of every directly
//! evaluated run and writes it at exit: schema-versioned JSONL by default
//! (one header line per run, then one line per event; all times integer
//! nanoseconds of simulated time), or a Chrome trace loadable in
//! `chrome://tracing` / Perfetto with `--trace-format chrome`.
//! `--metrics` appends an aggregated per-level metrics table (ops, bytes,
//! rate, service time, mean queue depth per I/O-path level) to the report.
//! Both are pure observation: experiment tables stay byte-identical.
//! Experiments restored from a checkpoint are not re-run, so they
//! contribute no events — use a fresh run for a complete trace.
//!
//! `--pfs-profile` selects which PFS fault rows the `resilience`
//! experiment adds to its RAID table: `full` (default) runs
//! one-server-down *and* recover-mid-run against the replicated PVFS
//! deployment, `fail` / `recover` run just one of them, and `none` skips
//! the PFS table entirely (the experiment renders exactly its RAID-only
//! output).
//!
//! `--chaos-seed N` installs a deterministic host-fault plan drawn under
//! `--chaos-profile` (`store`, `panic`, `memo`, `trace`, or the default
//! `mixed`) that injects failures into the campaign *runtime* — torn or
//! failed checkpoint writes, ENOSPC, worker panics at cell boundaries,
//! memo-cache corruption, trace-export errors. The runtime heals every
//! one of them (retry, quarantine-and-recompute, degrade to in-memory),
//! and resuming an interrupted chaos run with `--resume` renders output
//! byte-identical to an uninterrupted fault-free run. `--chaos-repro
//! TOKEN` replays an exact fault schedule (the token is printed by every
//! chaos run and by the shrinker). `--strict-store` turns surviving
//! store-level damage (serialize errors, write failures, quarantines)
//! into exit code 3 after all output is written.

use bench::experiments::registry;
use bench::{PfsFaultProfile, Repro, Scale};
use simcore::chaos::{ChaosProfile, HostFaultPlan};
use simcore::{Time, WatchdogSpec};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut out_file: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut deadline_secs: Option<u64> = None;
    let mut wall_budget_secs: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut no_memo = false;
    let mut memo_stats = false;
    let mut trace_out: Option<String> = None;
    let mut trace_chrome = false;
    let mut metrics = false;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_profile: Option<String> = None;
    let mut chaos_repro: Option<String> = None;
    let mut strict_store = false;
    let mut pfs_profile = PfsFaultProfile::default();
    let mut grammar_file: Option<String> = None;
    let mut scenario_sample: Option<usize> = None;
    let mut scenario_seed: Option<u64> = None;
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("expected --scale quick|paper"));
            }
            "--out" => {
                i += 1;
                out_file = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --out FILE")),
                );
            }
            "--checkpoint" | "--resume" => {
                i += 1;
                checkpoint = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --checkpoint DIR")),
                );
            }
            "--deadline" => {
                i += 1;
                deadline_secs = Some(parse_secs(args.get(i), "--deadline"));
            }
            "--wall-budget" => {
                i += 1;
                wall_budget_secs = Some(parse_secs(args.get(i), "--wall-budget"));
            }
            "--jobs" => {
                i += 1;
                jobs = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<usize>().ok())
                        .filter(|&j| j >= 1)
                        .unwrap_or_else(|| die("expected --jobs N (N >= 1)")),
                );
            }
            "--no-memo" => no_memo = true,
            "--memo-stats" => memo_stats = true,
            "--trace-out" => {
                i += 1;
                trace_out = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --trace-out FILE")),
                );
            }
            "--trace-format" => {
                i += 1;
                trace_chrome = match args.get(i).map(String::as_str) {
                    Some("jsonl") => false,
                    Some("chrome") => true,
                    _ => die("expected --trace-format jsonl|chrome"),
                };
            }
            "--metrics" => metrics = true,
            "--chaos-seed" => {
                i += 1;
                chaos_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| die("expected --chaos-seed N")),
                );
            }
            "--chaos-profile" => {
                i += 1;
                chaos_profile = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --chaos-profile NAME")),
                );
            }
            "--chaos-repro" => {
                i += 1;
                chaos_repro = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --chaos-repro TOKEN")),
                );
            }
            "--pfs-profile" => {
                i += 1;
                pfs_profile = args
                    .get(i)
                    .and_then(|s| PfsFaultProfile::parse(s))
                    .unwrap_or_else(|| die("expected --pfs-profile full|fail|recover|none"));
            }
            "--strict-store" => strict_store = true,
            "--grammar" => {
                i += 1;
                grammar_file = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --grammar FILE")),
                );
            }
            "--sample" => {
                i += 1;
                scenario_sample = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<usize>().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| die("expected --sample N (N >= 1)")),
                );
            }
            "--seed" => {
                i += 1;
                scenario_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| die("expected --seed N")),
                );
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    if selected.is_empty() {
        if memo_stats {
            // Report the memo state without running any experiments. The
            // memo is in-process, so a fresh invocation reports an empty
            // cache — useful as a machine-checkable baseline and as the
            // no-rerun form of the report experiments print at exit.
            let repro = if no_memo {
                Repro::new(scale).without_memo()
            } else {
                Repro::new(scale)
            };
            print_memo_report(&repro);
            return;
        }
        usage();
        return;
    }
    if selected.iter().any(|s| s == "list") {
        for (id, desc, _) in registry() {
            println!("{id:<8} {desc}");
        }
        return;
    }

    let reg = registry();
    let to_run: Vec<&(&str, &str, bench::experiments::ExperimentFn)> =
        if selected.iter().any(|s| s == "all") {
            reg.iter().collect()
        } else {
            selected
                .iter()
                .map(|want| {
                    reg.iter().find(|(id, _, _)| id == want).unwrap_or_else(|| {
                        die(&format!("unknown experiment '{want}' (try 'list')"))
                    })
                })
                .collect()
        };

    // Host-fault injection: a replay token wins over a seeded draw. The
    // plan is printed up front so any chaos run is reproducible verbatim.
    let plan = match (&chaos_repro, chaos_seed) {
        (Some(token), _) => Some(
            HostFaultPlan::parse(token)
                .unwrap_or_else(|e| die(&format!("bad --chaos-repro token: {e}"))),
        ),
        (None, Some(seed)) => {
            let name = chaos_profile.as_deref().unwrap_or("mixed");
            let profile = ChaosProfile::named(name).unwrap_or_else(|| {
                die(&format!(
                    "unknown --chaos-profile '{name}' (store|panic|memo|trace|mixed)"
                ))
            });
            Some(HostFaultPlan::random(seed, &profile))
        }
        (None, None) if chaos_profile.is_some() => {
            die("--chaos-profile requires --chaos-seed (or use --chaos-repro TOKEN)")
        }
        (None, None) => None,
    };
    let chaos_guard = plan.map(|p| {
        eprintln!("[chaos] installing host-fault plan: {}", p.token());
        simcore::chaos::install(p)
    });

    let mut repro = Repro::new(scale).with_pfs_profile(pfs_profile);
    if let Some(path) = &grammar_file {
        let src = std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(&format!("cannot read --grammar {path}: {e}")));
        repro = repro.with_scenario_grammar(src);
    }
    if let Some(n) = scenario_sample {
        repro = repro.with_scenario_sample(n);
    }
    if let Some(s) = scenario_seed {
        repro = repro.with_scenario_seed(s);
    }
    if no_memo {
        repro = repro.without_memo();
    }
    if trace_out.is_some() || metrics {
        repro = repro.with_tracing();
    }
    if let Some(j) = jobs {
        repro = repro.with_jobs(j);
    }
    if deadline_secs.is_some() || wall_budget_secs.is_some() {
        let mut w = WatchdogSpec::default();
        if let Some(s) = deadline_secs {
            w.sim_deadline = Some(Time::from_secs(s));
        }
        if let Some(s) = wall_budget_secs {
            w = w.with_wall_budget_ms(s.saturating_mul(1000));
        }
        repro = repro.with_watchdog(w);
    }
    if let Some(dir) = &checkpoint {
        repro = repro
            .with_checkpoint(dir)
            .unwrap_or_else(|e| die(&format!("cannot open checkpoint dir {dir}: {e}")));
    }

    let mut full_output = String::new();
    for (id, desc, f) in to_run {
        // The scenario experiment's output depends on the grammar, seed,
        // and sample count, so its checkpoint key carries the full grid
        // identity — a rerun with different scenario flags recomputes
        // instead of replaying a stale grid.
        let exp_key = if *id == "scenario" {
            format!(
                "exp-scenario-{}-{}",
                scale.label(),
                bench::scenario_grid::grid_key(&repro)
            )
        } else {
            format!("exp-{id}-{}", scale.label())
        };
        let output = match repro.checkpoint_dir().and_then(|d| d.load(&exp_key)) {
            Some(cached) => {
                eprintln!("[repro] {id} restored from checkpoint");
                cached
            }
            None => {
                eprintln!("[repro] running {id} ({desc}, scale {scale:?}) ...");
                let t0 = std::time::Instant::now();
                let output = f(&mut repro);
                eprintln!("[repro] {id} done in {:.1}s", t0.elapsed().as_secs_f64());
                if let Some(d) = repro.checkpoint_dir() {
                    // Checkpoint the results only: the store-health footer
                    // is this process's operational state, and persisting
                    // it would replay old trouble into a healthy resume.
                    d.save(&exp_key, ioeval_core::campaign::strip_store_health(&output));
                }
                output
            }
        };
        println!("\n######## {id} ########\n{output}");
        full_output.push_str(&format!("\n######## {id} ########\n{output}"));
    }
    if metrics {
        let block = match repro.metrics_report() {
            Some(table) => format!("\n######## metrics ########\n{table}"),
            None => "\n######## metrics ########\n(no cells observed)\n".to_string(),
        };
        println!("{block}");
        full_output.push_str(&block);
    }
    if let Some(path) = trace_out {
        let runs = repro.traces();
        let text = if trace_chrome {
            ioeval_core::obs::to_chrome(runs)
        } else {
            runs.iter()
                .map(|(meta, data)| ioeval_core::obs::to_jsonl(data, meta))
                .collect::<String>()
        };
        // A trace is a secondary artifact: a failed export (real or
        // injected) is reported and swallowed — it never poisons the
        // evaluation results or the exit code.
        if bench::write_artifact("trace", std::path::Path::new(&path), &text) {
            let events: usize = runs.iter().map(|(_, d)| d.events.len()).sum();
            eprintln!(
                "[repro] wrote {} ({} runs, {events} events)",
                path,
                runs.len()
            );
        }
    }
    if let Some((hits, misses)) = repro.memo_stats() {
        let (ph, pm) = repro.memo_phase_stats().unwrap_or((0, 0));
        eprintln!(
            "[repro] charact memo: {hits} hits, {misses} misses ({ph} phase hits, {pm} phase misses)"
        );
    }
    if memo_stats {
        print_memo_report(&repro);
    }
    if let Some(path) = out_file {
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        f.write_all(full_output.as_bytes())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("[repro] wrote {path}");
    }
    if let Some(guard) = &chaos_guard {
        let fired = guard.fired();
        let token = HostFaultPlan::from_injections(
            fired
                .iter()
                .map(|f| simcore::chaos::Injection {
                    site: f.site,
                    nth: f.nth,
                    action: f.action,
                })
                .collect(),
        )
        .token();
        eprintln!(
            "[chaos] {} of the planned injections fired (replay what fired: --chaos-repro '{token}')",
            fired.len()
        );
    }
    drop(chaos_guard);
    let health = repro.store_health();
    if health.any() {
        eprintln!("[repro] store health: {}", health.summary());
        if strict_store {
            eprintln!("repro: exiting non-zero (--strict-store)");
            std::process::exit(3);
        }
    }
}

/// The `--memo-stats` report: whole-triple and phase-level counters of the
/// characterization memo, on stdout so it can be machine-checked.
fn print_memo_report(repro: &Repro) {
    match (repro.memo_stats(), repro.memo_phase_stats()) {
        (Some((hits, misses)), Some((ph, pm))) => {
            println!("charact memo: {hits} hits, {misses} misses");
            println!("phase memo:   {ph} hits, {pm} misses");
        }
        _ => println!("charact memo: disabled (--no-memo)"),
    }
}

fn parse_secs(arg: Option<&String>, flag: &str) -> u64 {
    arg.and_then(|s| s.parse().ok())
        .unwrap_or_else(|| die(&format!("expected {flag} SECS")))
}

fn usage() {
    eprintln!(
        "usage: repro [--scale quick|paper] [--out FILE] [--checkpoint DIR | --resume DIR]\n\
         \x20            [--deadline SECS] [--wall-budget SECS] [--jobs N] [--no-memo]\n\
         \x20            [--memo-stats]\n\
         \x20            [--trace-out FILE] [--trace-format jsonl|chrome] [--metrics]\n\
         \x20            [--chaos-seed N] [--chaos-profile store|panic|memo|trace|mixed]\n\
         \x20            [--chaos-repro TOKEN] [--pfs-profile full|fail|recover|none]\n\
         \x20            [--strict-store] [--grammar FILE] [--sample N] [--seed S]\n\
         \x20            <experiment>... | all | list\n\
         experiments regenerate the paper's tables/figures; see 'repro list'.\n\
         --checkpoint/--resume persist finished work to DIR and replay it on rerun;\n\
         --deadline arms a simulated-time watchdog, --wall-budget a host-time ceiling;\n\
         --jobs runs campaign cells on N workers (deterministic merge: output is\n\
         byte-identical to --jobs 1; defaults to $IOEVAL_JOBS, else 1);\n\
         --no-memo disables the in-process characterization memo (pure cache:\n\
         output is byte-identical either way; hit/miss counts go to stderr);\n\
         --memo-stats prints the memo report (whole-triple and phase counters)\n\
         to stdout — with no experiments selected it reports without running;\n\
         --trace-out records the I/O-path event stream of every evaluated run\n\
         (schema-versioned JSONL; --trace-format chrome for chrome://tracing);\n\
         --metrics appends an aggregated per-level metrics table to the report;\n\
         --chaos-seed/--chaos-profile inject deterministic host faults (torn\n\
         checkpoint writes, ENOSPC, worker panics, memo corruption, trace errors)\n\
         to exercise recovery; --chaos-repro TOKEN replays an exact schedule;\n\
         --pfs-profile picks the PFS fault rows of the resilience experiment\n\
         (full = fail + recover, none = RAID-only table);\n\
         --strict-store exits 3 if store-level damage survived the run;\n\
         --grammar/--sample/--seed parameterize the scenario experiment: a\n\
         grammar file describing a workload space, how many variants to draw,\n\
         and the sampler seed (grid identity keys the checkpoint)."
    );
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
