//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--scale quick|paper] [--out FILE] <experiment>... | all | list
//! ```
//!
//! Experiments are named after the paper's artifacts (`table3`, `fig12`,
//! ...); `all` runs the full evaluation section in order. `--scale paper`
//! uses the paper's exact parameters (class C BT-IO, 18 KPIX MADbench2,
//! full sweeps); `--scale quick` (default) runs a structurally identical
//! reduced version in seconds.

use bench::experiments::registry;
use bench::{Repro, Scale};
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut out_file: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("expected --scale quick|paper"));
            }
            "--out" => {
                i += 1;
                out_file = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("expected --out FILE")),
                );
            }
            "--help" | "-h" => {
                usage();
                return;
            }
            other => selected.push(other.to_string()),
        }
        i += 1;
    }

    if selected.is_empty() {
        usage();
        return;
    }
    if selected.iter().any(|s| s == "list") {
        for (id, desc, _) in registry() {
            println!("{id:<8} {desc}");
        }
        return;
    }

    let reg = registry();
    let to_run: Vec<&(&str, &str, bench::experiments::ExperimentFn)> =
        if selected.iter().any(|s| s == "all") {
            reg.iter().collect()
        } else {
            selected
                .iter()
                .map(|want| {
                    reg.iter().find(|(id, _, _)| id == want).unwrap_or_else(|| {
                        die(&format!("unknown experiment '{want}' (try 'list')"))
                    })
                })
                .collect()
        };

    let mut repro = Repro::new(scale);
    let mut full_output = String::new();
    for (id, desc, f) in to_run {
        eprintln!("[repro] running {id} ({desc}, scale {scale:?}) ...");
        let t0 = std::time::Instant::now();
        let output = f(&mut repro);
        eprintln!("[repro] {id} done in {:.1}s", t0.elapsed().as_secs_f64());
        println!("\n######## {id} ########\n{output}");
        full_output.push_str(&format!("\n######## {id} ########\n{output}"));
    }
    if let Some(path) = out_file {
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
        f.write_all(full_output.as_bytes())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        eprintln!("[repro] wrote {path}");
    }
}

fn usage() {
    eprintln!(
        "usage: repro [--scale quick|paper] [--out FILE] <experiment>... | all | list\n\
         experiments regenerate the paper's tables/figures; see 'repro list'."
    );
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
