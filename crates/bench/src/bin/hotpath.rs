//! `hotpath` — runs the hot-path microbenchmarks and writes
//! `BENCH_hotpath.json`.
//!
//! ```text
//! cargo run --release -p bench --bin hotpath [-- --out FILE]
//! ```
//!
//! The output path defaults to `BENCH_hotpath.json` in the current
//! directory; `--out FILE` or the `IOEVAL_BENCH_OUT` environment variable
//! override it. Build with `--release` — debug-build numbers are not
//! comparable to the committed baseline.

use bench::hotpath::{run, HotpathConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::env::var("IOEVAL_BENCH_OUT").unwrap_or_else(|_| "BENCH_hotpath.json".into());
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("hotpath: expected --out FILE");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("hotpath: unknown argument '{other}' (usage: hotpath [--out FILE])");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if cfg!(debug_assertions) {
        eprintln!("[hotpath] warning: debug build; numbers are not comparable to the baseline");
    }

    let report = run(&HotpathConfig::full());
    eprintln!(
        "[hotpath] event queue      {:>10.1} M ops/s",
        report.event_queue_mops
    );
    eprintln!(
        "[hotpath] striping         {:>10.1} ns/op",
        report.striping_ns_per_op
    );
    for cell in &report.cells {
        eprintln!("[hotpath] cell {:<17} {:>8.2} ms", cell.config, cell.ms);
    }
    eprintln!(
        "[hotpath] pinned cells     {:>10.2} ms",
        report.pinned_cell_ms
    );
    eprintln!(
        "[hotpath] memo cold/warm   {:>8.2} / {:.2} ms ({:.0}x)",
        report.memo_cold_ms, report.memo_warm_ms, report.memo_speedup
    );
    eprintln!(
        "[hotpath] scale full/coll  {:>8.2} / {:.2} ms ({:.0}x)",
        report.scale_full_ms, report.scale_collapsed_ms, report.scale_speedup
    );

    let json = report.to_json();
    std::fs::write(&out, format!("{json}\n")).unwrap_or_else(|e| {
        eprintln!("hotpath: cannot write {out}: {e}");
        std::process::exit(2);
    });
    eprintln!("[hotpath] wrote {out}");
}
