//! Shared experiment context: scales, cached characterizations and runs.

use crate::checkpoint::{CampaignStore, CheckpointDir};
use cluster::{config as ioconfig, presets, ClusterSpec, IoConfig};
use ioeval_core::campaign::{CellStore, StoreHealth, SuperviseOptions};
use ioeval_core::charact::{characterize_system_memo, CharacterizeOptions};
use ioeval_core::eval::{evaluate, EvalOptions, EvalReport, FaultScenario};
use ioeval_core::memo::CharactMemo;
use ioeval_core::obs::{Collector, MetricsHub, ObsData, TraceMeta};
use ioeval_core::perf_table::{AccessMode, PerfTableSet};
use simcore::{Time, WatchdogSpec, KIB, MIB};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use workloads::{BtClass, BtIo, BtSubtype, FileType, MadBench, Scenario};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters, same structure (seconds of host time).
    Quick,
    /// The paper's parameters (minutes of host time).
    Paper,
}

impl Scale {
    /// Parses `"quick"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Stable label for checkpoint keys.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Which PFS fault rows the resilience experiment runs alongside its
/// nominal row (selected by `repro --pfs-profile`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PfsFaultProfile {
    /// One-server-down *and* recover-mid-run (the full comparison).
    #[default]
    Full,
    /// One-server-down only.
    Fail,
    /// Recover-mid-run only.
    Recover,
    /// No PFS rows at all: the experiment renders exactly its pre-PFS
    /// RAID-only table.
    Off,
}

impl PfsFaultProfile {
    /// Parses `"full"` / `"fail"` / `"recover"` / `"none"`.
    pub fn parse(s: &str) -> Option<PfsFaultProfile> {
        match s {
            "full" => Some(PfsFaultProfile::Full),
            "fail" => Some(PfsFaultProfile::Fail),
            "recover" => Some(PfsFaultProfile::Recover),
            "none" => Some(PfsFaultProfile::Off),
            _ => None,
        }
    }

    /// Stable label (the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            PfsFaultProfile::Full => "full",
            PfsFaultProfile::Fail => "fail",
            PfsFaultProfile::Recover => "recover",
            PfsFaultProfile::Off => "none",
        }
    }
}

/// Experiment context: clusters, configurations, and memoized
/// characterizations/evaluations shared between related experiments
/// (Fig. 12 and Tables III/IV reuse the same runs, exactly like the paper).
///
/// With a checkpoint directory attached, every characterization is also
/// persisted (digest-verified, atomically) and restored across processes,
/// so an interrupted `repro` run resumes instead of restarting.
pub struct Repro {
    /// Selected scale.
    pub scale: Scale,
    tables: HashMap<String, PerfTableSet>,
    reports: HashMap<String, EvalReport>,
    store: Option<CampaignStore>,
    watchdog: Option<WatchdogSpec>,
    jobs: usize,
    memo: Option<Arc<CharactMemo>>,
    obs: Option<ReproObs>,
    pfs_profile: PfsFaultProfile,
    scenario_grammar: Option<String>,
    scenario_sample: Option<usize>,
    scenario_seed: u64,
}

/// Default sampler seed of the `scenario` experiment (pinned so default
/// runs and the golden grid agree).
pub const SCENARIO_SEED: u64 = 42;

/// Observability state of a tracing-enabled context.
struct ReproObs {
    /// Per-cell metrics, shared with campaign workers.
    hub: Arc<MetricsHub>,
    /// Raw event streams of directly evaluated runs, in run order.
    traces: Vec<(TraceMeta, ObsData)>,
    /// Summed simulated execution time of the directly traced runs
    /// (denominator for aggregate rates / queue depths).
    traced_exec: Time,
}

impl Repro {
    /// A fresh context. The campaign worker count defaults to the
    /// `IOEVAL_JOBS` environment variable (when set to a positive
    /// integer), else 1 — parallelism is opt-in, so published outputs
    /// stay reproducible by default. Parallel campaigns are
    /// byte-identical to sequential ones anyway; the knob only trades
    /// wall-clock for cores.
    pub fn new(scale: Scale) -> Repro {
        let jobs = std::env::var("IOEVAL_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j >= 1)
            .unwrap_or(1);
        Repro {
            scale,
            tables: HashMap::new(),
            reports: HashMap::new(),
            store: None,
            watchdog: None,
            jobs,
            memo: Some(Arc::new(CharactMemo::new())),
            obs: None,
            pfs_profile: PfsFaultProfile::default(),
            scenario_grammar: None,
            scenario_sample: None,
            scenario_seed: SCENARIO_SEED,
        }
    }

    /// Overrides the scenario grammar the `scenario` experiment sweeps
    /// (`repro scenario --grammar FILE`). Defaults to the worked example,
    /// [`workloads::grammar::EXAMPLE`].
    pub fn with_scenario_grammar(mut self, src: impl Into<String>) -> Repro {
        self.scenario_grammar = Some(src.into());
        self
    }

    /// The grammar source override, if any.
    pub fn scenario_grammar(&self) -> Option<&str> {
        self.scenario_grammar.as_deref()
    }

    /// Overrides how many variants the scenario sampler draws (`--sample
    /// N`). Defaults per scale (see `scenario_grid`).
    pub fn with_scenario_sample(mut self, n: usize) -> Repro {
        self.scenario_sample = Some(n.max(1));
        self
    }

    /// The sample-count override, if any.
    pub fn scenario_sample(&self) -> Option<usize> {
        self.scenario_sample
    }

    /// Sets the scenario sampler seed (`--seed S`).
    pub fn with_scenario_seed(mut self, seed: u64) -> Repro {
        self.scenario_seed = seed;
        self
    }

    /// The scenario sampler seed.
    pub fn scenario_seed(&self) -> u64 {
        self.scenario_seed
    }

    /// Selects which PFS fault rows the resilience experiment runs.
    pub fn with_pfs_profile(mut self, profile: PfsFaultProfile) -> Repro {
        self.pfs_profile = profile;
        self
    }

    /// The selected PFS fault profile.
    pub fn pfs_profile(&self) -> PfsFaultProfile {
        self.pfs_profile
    }

    /// Enables I/O-path observability: every evaluation this context runs
    /// (directly or through campaign supervision) is collected — raw event
    /// streams for [`Repro::traces`] and per-level metrics aggregated
    /// across cells for [`Repro::metrics_report`]. Pure observation: all
    /// rendered experiment output stays byte-identical.
    pub fn with_tracing(mut self) -> Repro {
        self.obs = Some(ReproObs {
            hub: Arc::new(MetricsHub::new()),
            traces: Vec::new(),
            traced_exec: Time::ZERO,
        });
        self
    }

    /// Whether observability collection is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.obs.is_some()
    }

    /// The raw event streams of directly evaluated runs (empty unless
    /// [`Repro::with_tracing`] was called). Memoized re-evaluations do not
    /// re-trace: each distinct cell appears once.
    pub fn traces(&self) -> &[(TraceMeta, ObsData)] {
        self.obs.as_ref().map_or(&[], |o| o.traces.as_slice())
    }

    /// Renders the aggregated per-level metrics table, when tracing is
    /// enabled and at least one cell was observed. Rates and queue depths
    /// are computed over the summed execution time of the directly traced
    /// runs (campaign-supervised cells contribute counters only).
    pub fn metrics_report(&self) -> Option<String> {
        let obs = self.obs.as_ref().filter(|o| !o.hub.is_empty())?;
        let agg = obs.hub.aggregate();
        Some(format!(
            "I/O-path metrics over {} cells ({} traced directly):\n{}",
            obs.hub.len(),
            obs.traces.len(),
            ioeval_core::obs::render_obs_metrics(&agg, obs.traced_exec),
        ))
    }

    /// Disables the in-process characterization memo (campaigns recompute
    /// every characterization from scratch). The memo is a pure cache —
    /// rendered output is byte-identical either way — so this knob exists
    /// for timing studies and as an escape hatch, not for correctness.
    pub fn without_memo(mut self) -> Repro {
        self.memo = None;
        self
    }

    /// `(hits, misses)` of the characterization memo, when one is enabled.
    pub fn memo_stats(&self) -> Option<(u64, u64)> {
        self.memo.as_ref().map(|m| m.stats())
    }

    /// `(phase hits, phase misses)` of the characterization memo — the
    /// per-measurement granularity that replays individual sweep points
    /// even when the whole-triple key misses.
    pub fn memo_phase_stats(&self) -> Option<(u64, u64)> {
        self.memo.as_ref().map(|m| m.phase_stats())
    }

    /// Sets the campaign worker count (clamped to at least 1); overrides
    /// `IOEVAL_JOBS`.
    pub fn with_jobs(mut self, jobs: usize) -> Repro {
        self.jobs = jobs.max(1);
        self
    }

    /// The campaign worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attaches a durable checkpoint directory: characterizations and
    /// campaign cells persist there and are restored on the next run.
    pub fn with_checkpoint(mut self, path: impl Into<PathBuf>) -> std::io::Result<Repro> {
        self.store = Some(CampaignStore::open(path)?);
        Ok(self)
    }

    /// Applies watchdog budgets to every simulation this context runs.
    pub fn with_watchdog(mut self, watchdog: WatchdogSpec) -> Repro {
        self.watchdog = Some(watchdog);
        self
    }

    /// The checkpoint directory, when one is attached.
    pub fn checkpoint_dir(&self) -> Option<&CheckpointDir> {
        self.store.as_ref().map(CampaignStore::dir)
    }

    /// The durable cell store, when a checkpoint directory is attached
    /// (campaign experiments persist their cells through it).
    pub fn cell_store_mut(&mut self) -> Option<&mut CampaignStore> {
        self.store.as_mut()
    }

    /// Host-side store health for this context: the checkpoint store's
    /// failure counters, with memo-cache quarantines folded into
    /// `quarantined`. All-zero (default) when nothing went wrong — the
    /// `--strict-store` exit code gates on [`StoreHealth::any`].
    pub fn store_health(&self) -> StoreHealth {
        let mut health = self.store.as_ref().map(|s| s.health()).unwrap_or_default();
        if let Some(m) = self.memo.as_deref() {
            health.quarantined += m.quarantined();
        }
        health
    }

    /// Supervision policy for campaign experiments: the context's watchdog
    /// plus default retry/quarantine limits.
    pub fn supervise_options(&self) -> SuperviseOptions {
        SuperviseOptions {
            watchdog: self.watchdog.clone(),
            memo: self.memo.clone(),
            metrics: self.obs.as_ref().map(|o| o.hub.clone()),
            ..SuperviseOptions::default()
        }
        .with_jobs(self.jobs)
    }

    /// The Aohyper spec.
    pub fn aohyper(&self) -> ClusterSpec {
        presets::aohyper()
    }

    /// The Cluster A spec.
    pub fn cluster_a(&self) -> ClusterSpec {
        presets::cluster_a()
    }

    /// Aohyper's three configurations (paper Fig. 4).
    pub fn aohyper_configs(&self) -> Vec<IoConfig> {
        ioconfig::aohyper_configs()
    }

    /// Cluster A's configuration.
    pub fn cluster_a_config(&self) -> IoConfig {
        ioconfig::cluster_a_config()
    }

    /// Characterization sweep for the scale.
    pub fn charact_options(&self, spec: &ClusterSpec) -> CharacterizeOptions {
        let mut o = match self.scale {
            Scale::Paper => {
                // The paper's published sweep (sequential, full record and
                // block ranges); applications' strided/random operations
                // resolve through the lenient mode fallback, as the
                // paper's usage tables do against its sequential curves.
                let _ = spec;
                CharacterizeOptions::paper()
            }
            Scale::Quick => {
                let mut o = CharacterizeOptions::quick();
                o.records = vec![64 * KIB, MIB, 16 * MIB];
                o.iozone_file_size = Some(256 * MIB);
                o.ior_blocks = vec![MIB, 16 * MIB];
                o.ior_ranks = 4;
                o.modes = vec![AccessMode::Sequential];
                o
            }
        };
        o.watchdog = self.watchdog.clone();
        o
    }

    /// Memoized system characterization of `(spec, config)`: served from
    /// memory, then from the checkpoint directory (digest-verified), and
    /// only then computed — after which both caches are filled.
    pub fn characterize(&mut self, spec: &ClusterSpec, config: &IoConfig) -> PerfTableSet {
        let key = format!("{}::{}", spec.name, config.name);
        if let Some(t) = self.tables.get(&key) {
            return t.clone();
        }
        let opts = self.charact_options(spec);
        let restored = self
            .store
            .as_mut()
            .and_then(|s| s.load_tables(&spec.name, &config.name))
            .filter(|t| opts.levels.iter().all(|&l| t.get(l).is_some()));
        // The process-wide memo sits between the checkpoint directory and a
        // fresh computation, so campaign cells and direct characterizations
        // share one cache (keyed by the full `(spec, config, opts)` digest,
        // not just the names).
        let memo_key = self
            .memo
            .as_deref()
            .map(|m| (m, CharactMemo::key(spec, config, &opts)));
        let set = match restored.or_else(|| memo_key.and_then(|(m, k)| m.get(k))) {
            Some(t) => t,
            None => {
                let t = characterize_system_memo(spec, config, &opts, self.memo.as_deref())
                    .unwrap_or_else(|e| {
                        panic!(
                            "characterization of {} / {} failed: {e}",
                            spec.name, config.name
                        )
                    });
                if let Some(s) = self.store.as_mut() {
                    s.save_tables(&t);
                }
                if let Some((m, k)) = memo_key {
                    m.put(k, t.clone());
                }
                t
            }
        };
        self.tables.insert(key, set.clone());
        set
    }

    /// A BT-IO instance at the scale.
    pub fn btio(&self, procs: usize, subtype: BtSubtype) -> BtIo {
        match self.scale {
            Scale::Paper => BtIo::new(BtClass::C, procs, subtype),
            Scale::Quick => BtIo::new(BtClass::A, procs, subtype).with_dumps(8),
        }
    }

    /// A MADbench2 instance at the scale.
    pub fn madbench(&self, procs: usize, filetype: FileType) -> MadBench {
        match self.scale {
            Scale::Paper => MadBench::new(procs, filetype),
            Scale::Quick => MadBench::new(procs, filetype).with_kpix(4),
        }
    }

    /// Memoized evaluation of a scenario on `(spec, config)`.
    pub fn eval(
        &mut self,
        spec: &ClusterSpec,
        config: &IoConfig,
        key: &str,
        scenario: Scenario,
    ) -> EvalReport {
        self.eval_under(spec, config, key, scenario, FaultScenario::Healthy)
    }

    /// Memoized evaluation under a fault scenario; the scenario label is
    /// part of the memoization key, so the same workload can be compared
    /// healthy vs degraded vs rebuilding without re-running either.
    pub fn eval_under(
        &mut self,
        spec: &ClusterSpec,
        config: &IoConfig,
        key: &str,
        scenario: Scenario,
        faults: FaultScenario,
    ) -> EvalReport {
        let full_key = format!(
            "{}::{}::{}::{}",
            spec.name,
            config.name,
            key,
            faults.label()
        );
        if let Some(r) = self.reports.get(&full_key) {
            return r.clone();
        }
        let tables = self.characterize(spec, config);
        let scenario_label = faults.label().to_string();
        let opts = EvalOptions {
            faults,
            watchdog: self.watchdog.clone(),
            ..EvalOptions::default()
        };
        let collector = self.obs.as_ref().map(|_| Collector::new());
        let report = {
            let _guard = collector.as_ref().map(Collector::install);
            evaluate(spec, config, scenario, &tables, &opts)
                .unwrap_or_else(|e| panic!("evaluation of {key} on {} failed: {e}", config.name))
        };
        if let (Some(obs), Some(col)) = (self.obs.as_mut(), collector) {
            let data = col.take();
            obs.hub.add(full_key.clone(), data.metrics.clone());
            obs.traced_exec = obs.traced_exec.saturating_add(report.profile.exec_time);
            obs.traces.push((
                TraceMeta {
                    cluster: spec.name.clone(),
                    config: config.name.clone(),
                    app: key.to_string(),
                    scenario: scenario_label,
                },
                data,
            ));
        }
        self.reports.insert(full_key, report.clone());
        report
    }
}

/// Best-effort write of a *secondary* artifact (trace export, metrics
/// dump). Export failures — real or injected via
/// [`simcore::chaos::ChaosSite::TraceWrite`] — must never poison the
/// evaluation results, so errors are reported to stderr and swallowed.
/// Returns whether the artifact reached disk. Primary results (`--out`)
/// do not go through here; losing those is an error worth dying for.
pub fn write_artifact(label: &str, path: &std::path::Path, content: &str) -> bool {
    use simcore::chaos::{self, ChaosSite};
    let result = if chaos::decide(ChaosSite::TraceWrite).is_some() {
        Err(std::io::Error::other("injected trace write failure"))
    } else {
        std::fs::write(path, content)
    };
    match result {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "[repro] cannot write {label} {} (evaluation results unaffected): {e}",
                path.display()
            );
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("x"), None);
        assert_eq!(Scale::Quick.label(), "quick");
    }

    #[test]
    fn pfs_profile_parsing() {
        assert_eq!(PfsFaultProfile::parse("full"), Some(PfsFaultProfile::Full));
        assert_eq!(PfsFaultProfile::parse("fail"), Some(PfsFaultProfile::Fail));
        assert_eq!(
            PfsFaultProfile::parse("recover"),
            Some(PfsFaultProfile::Recover)
        );
        assert_eq!(PfsFaultProfile::parse("none"), Some(PfsFaultProfile::Off));
        assert_eq!(PfsFaultProfile::parse("x"), None);
        assert_eq!(PfsFaultProfile::default(), PfsFaultProfile::Full);
        assert_eq!(PfsFaultProfile::Off.label(), "none");
        let r = Repro::new(Scale::Quick).with_pfs_profile(PfsFaultProfile::Fail);
        assert_eq!(r.pfs_profile(), PfsFaultProfile::Fail);
    }

    #[test]
    fn btio_scales() {
        let quick = Repro::new(Scale::Quick).btio(16, BtSubtype::Full);
        assert_eq!(quick.dumps, 8);
        let paper = Repro::new(Scale::Paper).btio(16, BtSubtype::Full);
        assert_eq!(paper.dumps, 40);
        assert_eq!(paper.class.size(), 162);
    }

    #[test]
    fn jobs_default_and_override() {
        // The env default is read in `new`; the builder wins over it and
        // clamps to at least one worker.
        let r = Repro::new(Scale::Quick).with_jobs(4);
        assert_eq!(r.jobs(), 4);
        assert_eq!(r.supervise_options().jobs, 4);
        assert_eq!(Repro::new(Scale::Quick).with_jobs(0).jobs(), 1);
    }

    #[test]
    fn characterization_is_memoized() {
        let mut r = Repro::new(Scale::Quick);
        let spec = presets::test_cluster();
        let config = r.aohyper_configs().remove(0);
        let a = r.characterize(&spec, &config);
        let b = r.characterize(&spec, &config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(r.tables.len(), 1);
    }

    #[test]
    fn characterization_persists_across_contexts_via_checkpoint() {
        let dir = std::env::temp_dir().join(format!("ioeval-repro-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = presets::test_cluster();

        let mut first = Repro::new(Scale::Quick).with_checkpoint(&dir).unwrap();
        let config = first.aohyper_configs().remove(0);
        let a = first.characterize(&spec, &config);
        assert!(!first.checkpoint_dir().unwrap().is_empty());

        // A fresh context (empty memory cache) restores from disk — the
        // restored tables are byte-identical to the computed ones.
        let mut second = Repro::new(Scale::Quick).with_checkpoint(&dir).unwrap();
        let b = second.characterize(&spec, &config);
        assert_eq!(a.to_json(), b.to_json());
    }
}
