//! Shared experiment context: scales, cached characterizations and runs.

use cluster::{config as ioconfig, presets, ClusterSpec, IoConfig};
use ioeval_core::charact::{characterize_system, CharacterizeOptions};
use ioeval_core::eval::{evaluate, EvalOptions, EvalReport, FaultScenario};
use ioeval_core::perf_table::{AccessMode, PerfTableSet};
use simcore::{KIB, MIB};
use std::collections::HashMap;
use workloads::{BtClass, BtIo, BtSubtype, FileType, MadBench, Scenario};

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters, same structure (seconds of host time).
    Quick,
    /// The paper's parameters (minutes of host time).
    Paper,
}

impl Scale {
    /// Parses `"quick"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Experiment context: clusters, configurations, and memoized
/// characterizations/evaluations shared between related experiments
/// (Fig. 12 and Tables III/IV reuse the same runs, exactly like the paper).
pub struct Repro {
    /// Selected scale.
    pub scale: Scale,
    tables: HashMap<String, PerfTableSet>,
    reports: HashMap<String, EvalReport>,
}

impl Repro {
    /// A fresh context.
    pub fn new(scale: Scale) -> Repro {
        Repro {
            scale,
            tables: HashMap::new(),
            reports: HashMap::new(),
        }
    }

    /// The Aohyper spec.
    pub fn aohyper(&self) -> ClusterSpec {
        presets::aohyper()
    }

    /// The Cluster A spec.
    pub fn cluster_a(&self) -> ClusterSpec {
        presets::cluster_a()
    }

    /// Aohyper's three configurations (paper Fig. 4).
    pub fn aohyper_configs(&self) -> Vec<IoConfig> {
        ioconfig::aohyper_configs()
    }

    /// Cluster A's configuration.
    pub fn cluster_a_config(&self) -> IoConfig {
        ioconfig::cluster_a_config()
    }

    /// Characterization sweep for the scale.
    pub fn charact_options(&self, spec: &ClusterSpec) -> CharacterizeOptions {
        match self.scale {
            Scale::Paper => {
                // The paper's published sweep (sequential, full record and
                // block ranges); applications' strided/random operations
                // resolve through the lenient mode fallback, as the
                // paper's usage tables do against its sequential curves.
                let _ = spec;
                CharacterizeOptions::paper()
            }
            Scale::Quick => {
                let mut o = CharacterizeOptions::quick();
                o.records = vec![64 * KIB, MIB, 16 * MIB];
                o.iozone_file_size = Some(256 * MIB);
                o.ior_blocks = vec![MIB, 16 * MIB];
                o.ior_ranks = 4;
                o.modes = vec![AccessMode::Sequential];
                o
            }
        }
    }

    /// Memoized system characterization of `(spec, config)`.
    pub fn characterize(&mut self, spec: &ClusterSpec, config: &IoConfig) -> PerfTableSet {
        let key = format!("{}::{}", spec.name, config.name);
        if let Some(t) = self.tables.get(&key) {
            return t.clone();
        }
        let opts = self.charact_options(spec);
        let set = characterize_system(spec, config, &opts);
        self.tables.insert(key, set.clone());
        set
    }

    /// A BT-IO instance at the scale.
    pub fn btio(&self, procs: usize, subtype: BtSubtype) -> BtIo {
        match self.scale {
            Scale::Paper => BtIo::new(BtClass::C, procs, subtype),
            Scale::Quick => BtIo::new(BtClass::A, procs, subtype).with_dumps(8),
        }
    }

    /// A MADbench2 instance at the scale.
    pub fn madbench(&self, procs: usize, filetype: FileType) -> MadBench {
        match self.scale {
            Scale::Paper => MadBench::new(procs, filetype),
            Scale::Quick => MadBench::new(procs, filetype).with_kpix(4),
        }
    }

    /// Memoized evaluation of a scenario on `(spec, config)`.
    pub fn eval(
        &mut self,
        spec: &ClusterSpec,
        config: &IoConfig,
        key: &str,
        scenario: Scenario,
    ) -> EvalReport {
        self.eval_under(spec, config, key, scenario, FaultScenario::Healthy)
    }

    /// Memoized evaluation under a fault scenario; the scenario label is
    /// part of the memoization key, so the same workload can be compared
    /// healthy vs degraded vs rebuilding without re-running either.
    pub fn eval_under(
        &mut self,
        spec: &ClusterSpec,
        config: &IoConfig,
        key: &str,
        scenario: Scenario,
        faults: FaultScenario,
    ) -> EvalReport {
        let full_key = format!(
            "{}::{}::{}::{}",
            spec.name,
            config.name,
            key,
            faults.label()
        );
        if let Some(r) = self.reports.get(&full_key) {
            return r.clone();
        }
        let tables = self.characterize(spec, config);
        let opts = EvalOptions {
            faults,
            ..EvalOptions::default()
        };
        let report = evaluate(spec, config, scenario, &tables, &opts);
        self.reports.insert(full_key, report.clone());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("x"), None);
    }

    #[test]
    fn btio_scales() {
        let quick = Repro::new(Scale::Quick).btio(16, BtSubtype::Full);
        assert_eq!(quick.dumps, 8);
        let paper = Repro::new(Scale::Paper).btio(16, BtSubtype::Full);
        assert_eq!(paper.dumps, 40);
        assert_eq!(paper.class.size(), 162);
    }

    #[test]
    fn characterization_is_memoized() {
        let mut r = Repro::new(Scale::Quick);
        let spec = presets::test_cluster();
        let config = r.aohyper_configs().remove(0);
        let a = r.characterize(&spec, &config);
        let b = r.characterize(&spec, &config);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(r.tables.len(), 1);
    }
}
