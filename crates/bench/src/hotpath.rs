//! Hot-path microbenchmark harness (no external bench framework).
//!
//! Measures the three quantities the simulation engine's fast paths exist
//! for, and serializes them to `BENCH_hotpath.json` so every PR leaves a
//! perf trajectory behind:
//!
//! * **event-queue throughput** — schedule/pop Mops/s of the slab-indexed
//!   four-ary heap in `simcore`;
//! * **striping ns/op** — cost of mapping one volume request onto member
//!   extents (`Raid0::spans`, the allocation-free [`storage::InlineVec`]
//!   path);
//! * **pinned-cell wall time** — a pinned IOR characterization sweep
//!   (library level, 1 MiB / 16 MiB blocks, 4 ranks, 256 KiB transfers)
//!   per Aohyper configuration, the cell the release profile was taken
//!   on;
//! * **memo cold/warm** — the same characterization campaign run twice
//!   against one [`ioeval_core::CharactMemo`]: the second run replays
//!   every point from the memo;
//! * **scale full/collapsed** — a 1024-rank IOR sweep on the leaf-spine
//!   scale testbed, run with rank-group collapsing off and on; the ratio
//!   is the scale-out fast-path speedup (CI gates it at ≥ 10×).
//!
//! The `hotpath` binary runs the full sizes and writes the JSON; the
//! `hotpath` integration test runs a smoke-sized version to pin the
//! schema. Timings are wall-clock and host-dependent — the committed
//! baseline is compared with generous tolerance (CI allows 25%
//! regression on the pinned cell), never byte-for-byte.

use cluster::{ClusterSpec, IoConfig};
use ioeval_core::campaign::{run_campaign_supervised, AppFactory, NoStore, SuperviseOptions};
use ioeval_core::charact::{characterize_system, CharacterizeOptions};
use ioeval_core::memo::CharactMemo;
use ioeval_core::perf_table::IoLevel;
use serde::{Deserialize, Serialize};
use simcore::{EventQueue, Time, KIB, MIB};
use std::sync::Arc;
use std::time::Instant;

/// Work sizes for one harness run.
#[derive(Clone, Copy, Debug)]
pub struct HotpathConfig {
    /// Events scheduled in the queue benchmark.
    pub events: u64,
    /// Striping requests mapped.
    pub striping_iters: u64,
    /// Repetitions per characterization cell (best-of is reported, which
    /// filters scheduler noise).
    pub cell_reps: u32,
    /// Ranks of the scale-out IOR sweep (the 1024-rank cell).
    pub scale_ranks: usize,
    /// Per-rank block of the scale-out sweep's largest point.
    pub scale_block: u64,
}

impl HotpathConfig {
    /// The published sizes (used by the `hotpath` binary and baseline).
    pub fn full() -> HotpathConfig {
        HotpathConfig {
            events: 4_000_000,
            striping_iters: 2_000_000,
            cell_reps: 5,
            scale_ranks: 1024,
            scale_block: 64 * MIB,
        }
    }

    /// Tiny sizes for schema/smoke tests (sub-second in debug builds).
    /// The scale cell keeps its full 1024 ranks — the rank-group collapse
    /// is exactly what makes that affordable — and shrinks only the
    /// per-rank block.
    pub fn smoke() -> HotpathConfig {
        HotpathConfig {
            events: 20_000,
            striping_iters: 10_000,
            cell_reps: 1,
            scale_ranks: 1024,
            scale_block: 4 * MIB,
        }
    }
}

/// Wall time of one pinned characterization cell.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellTime {
    /// Configuration name.
    pub config: String,
    /// Best-of-reps wall time, milliseconds.
    pub ms: f64,
}

/// One harness run, as serialized to `BENCH_hotpath.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HotpathReport {
    /// Schema version of this JSON shape.
    pub schema: u32,
    /// Event-queue schedule+pop throughput, million ops per second.
    pub event_queue_mops: f64,
    /// Striping cost per request (`Raid0::spans`), nanoseconds.
    pub striping_ns_per_op: f64,
    /// Pinned IOR sweep wall time per Aohyper configuration.
    pub cells: Vec<CellTime>,
    /// Sum of the per-configuration cell times — the single number the CI
    /// smoke job compares against the committed baseline.
    pub pinned_cell_ms: f64,
    /// Wall time of the characterization campaign with an empty memo.
    pub memo_cold_ms: f64,
    /// Wall time of the same campaign replayed from the filled memo.
    pub memo_warm_ms: f64,
    /// `memo_cold_ms / memo_warm_ms`.
    pub memo_speedup: f64,
    /// Wall time of the 1024-rank IOR sweep with rank-group collapsing
    /// disabled (full per-rank execution).
    pub scale_full_ms: f64,
    /// Wall time of the same sweep with collapsing enabled.
    pub scale_collapsed_ms: f64,
    /// `scale_full_ms / scale_collapsed_ms` — the speedup the rank-group
    /// fast path buys at scale (CI gates this at ≥ 10×).
    pub scale_speedup: f64,
}

impl HotpathReport {
    /// Pretty JSON rendering (what the binary writes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// The pinned IOR sweep: library level only, 1 MiB and 16 MiB blocks,
/// 4 ranks, 256 KiB transfers, against the paper's Aohyper cluster.
pub fn pinned_sweep_options() -> CharacterizeOptions {
    CharacterizeOptions {
        records: vec![],
        iozone_file_size: None,
        modes: vec![],
        ior_blocks: vec![MIB, 16 * MIB],
        ior_ranks: 4,
        ior_transfer: 256 * KIB,
        levels: vec![IoLevel::Library],
        watchdog: None,
    }
}

fn aohyper() -> (ClusterSpec, Vec<IoConfig>) {
    (
        cluster::presets::aohyper(),
        cluster::config::aohyper_configs(),
    )
}

/// Schedule `events` timestamped events (popping every fourth), then
/// drain; returns million ops per second over the combined
/// schedule+pop count.
pub fn event_queue_mops(events: u64) -> f64 {
    let mut q = EventQueue::new();
    let t0 = Instant::now();
    for i in 0..events {
        q.schedule_after(Time::from_nanos((i * 7919) % 100_000), i);
        if i % 4 == 3 {
            std::hint::black_box(q.pop());
        }
    }
    while q.pop().is_some() {}
    (2 * events) as f64 / t0.elapsed().as_secs_f64() / 1e6
}

/// Map `iters` striped requests (mixed offsets/lengths across an 8-disk
/// RAID 0) to member extents; returns nanoseconds per request.
pub fn striping_ns_per_op(iters: u64) -> f64 {
    use storage::{BlockReq, Disk, DiskParams, Raid0};
    let disks = (0..8)
        .map(|i| Disk::new(DiskParams::sata_7200(230, 75), i + 1))
        .collect();
    let raid = Raid0::new(disks, 64 * KIB);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for i in 0..iters {
        let offset = (i.wrapping_mul(37) * KIB) % (512 * MIB);
        let len = 192 * KIB + (i % 7) * KIB;
        let spans = raid.spans(&BlockReq::write(offset, len));
        acc = acc
            .wrapping_add(spans.len() as u64)
            .wrapping_add(spans[0].2);
    }
    std::hint::black_box(acc);
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Best-of-`reps` wall time of the pinned sweep on every Aohyper
/// configuration.
pub fn pinned_cell_times(reps: u32) -> Vec<CellTime> {
    let (spec, configs) = aohyper();
    let opts = pinned_sweep_options();
    configs
        .iter()
        .map(|config| {
            let mut best = f64::INFINITY;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let set = characterize_system(&spec, config, &opts).expect("characterize");
                assert!(set.get(IoLevel::Library).is_some());
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            CellTime {
                config: config.name.clone(),
                ms: best,
            }
        })
        .collect()
}

/// Runs the pinned characterization campaign twice against one shared
/// memo; returns `(cold_ms, warm_ms)`. The first run computes every
/// point, the second replays all of them from the memo — the ratio is
/// the repeated-point campaign speedup the memo buys.
pub fn memo_campaign_ms() -> (f64, f64) {
    let (spec, configs) = aohyper();
    let opts = pinned_sweep_options();
    let memo = Arc::new(CharactMemo::new());
    let sup = SuperviseOptions {
        memo: Some(memo.clone()),
        ..SuperviseOptions::default()
    };
    let apps: &[AppFactory] = &[];
    let run = || {
        let t0 = Instant::now();
        let campaign = run_campaign_supervised(&spec, &configs, apps, &opts, &sup, &mut NoStore);
        assert_eq!(campaign.tables.len(), configs.len());
        t0.elapsed().as_secs_f64() * 1e3
    };
    let cold = run();
    let warm = run();
    let (hits, misses) = memo.stats();
    assert_eq!(
        (hits, misses),
        (configs.len() as u64, configs.len() as u64),
        "second campaign should replay every point"
    );
    (cold, warm)
}

/// Wall time of the scale-out IOR sweep: `ranks` ranks on the 1024-host
/// leaf-spine testbed, writing then reading at two block sizes, with the
/// rank-group collapse toggled by `collapse`. The harness toggle is the
/// only difference between the two timings — collapse provably changes
/// speed, never results (see `mpisim::collapse`).
pub fn scale_sweep_ms(ranks: usize, block: u64, collapse: bool) -> f64 {
    use workloads::ior::{Ior, IorOp};
    let spec = cluster::scale::scale_1024();
    let placement = spec.placement(ranks);
    let t0 = Instant::now();
    for b in [block / 4, block] {
        for op in [IorOp::Write, IorOp::Read] {
            // The scenario's mounts/prealloc are ClusterMachine concerns;
            // the scale machine models the PFS itself, so the rank
            // programs run on it directly.
            let programs = Ior::new(ranks, fs::FileId(0x5CA1E), b, op)
                .scenario()
                .programs;
            let mut machine = spec.machine();
            let mut sink = mpisim::NullSink;
            let stats = mpisim::Runtime::default().with_collapse(collapse).run(
                &mut machine,
                &placement,
                programs,
                &mut sink,
            );
            assert_eq!(stats.per_rank.len(), ranks);
            assert!(stats.wall_time > Time::ZERO);
        }
    }
    t0.elapsed().as_secs_f64() * 1e3
}

/// One full harness run at the given sizes.
pub fn run(cfg: &HotpathConfig) -> HotpathReport {
    let event_queue_mops = event_queue_mops(cfg.events);
    let striping_ns_per_op = striping_ns_per_op(cfg.striping_iters);
    let cells = pinned_cell_times(cfg.cell_reps);
    let pinned_cell_ms = cells.iter().map(|c| c.ms).sum();
    let (memo_cold_ms, memo_warm_ms) = memo_campaign_ms();
    let scale_full_ms = scale_sweep_ms(cfg.scale_ranks, cfg.scale_block, false);
    let before = mpisim::collapsed_run_count();
    let scale_collapsed_ms = scale_sweep_ms(cfg.scale_ranks, cfg.scale_block, true);
    assert!(
        mpisim::collapsed_run_count() > before,
        "the scale sweep must engage the rank-group fast path"
    );
    HotpathReport {
        schema: 1,
        event_queue_mops,
        striping_ns_per_op,
        cells,
        pinned_cell_ms,
        memo_cold_ms,
        memo_warm_ms,
        memo_speedup: memo_cold_ms / memo_warm_ms.max(1e-6),
        scale_full_ms,
        scale_collapsed_ms,
        scale_speedup: scale_full_ms / scale_collapsed_ms.max(1e-6),
    }
}
