//! Durable campaign checkpoints: versioned, digest-verified, atomic.
//!
//! Every artifact (a characterization, a cell outcome, a finished
//! experiment's output) is one file under the checkpoint directory,
//! wrapped in an [`Envelope`] carrying a format version and an FNV-1a
//! digest of the payload. Writes go through a temp file and an atomic
//! rename, so a `kill -9` mid-write leaves either the previous complete
//! checkpoint or none — never a torn file. Loads verify version and
//! digest and treat *any* mismatch (truncated file, flipped byte, future
//! format) as a cache miss: the artifact is recomputed, never trusted.

use ioeval_core::campaign::{CellOutcome, CellStore};
use ioeval_core::perf_table::PerfTableSet;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// Bump when the on-disk layout of any payload changes; older checkpoints
/// are then recomputed instead of misparsed.
pub const CHECKPOINT_VERSION: u32 = 1;

/// 64-bit FNV-1a — tiny, dependency-free, and plenty to catch truncation
/// and bit-flips (this is integrity, not authentication).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The on-disk wrapper around every checkpointed payload.
#[derive(Serialize, Deserialize)]
struct Envelope {
    version: u32,
    digest: String,
    payload: String,
}

/// A directory of digest-verified checkpoint files.
pub struct CheckpointDir {
    root: PathBuf,
}

impl CheckpointDir {
    /// Opens (creating if needed) a checkpoint directory.
    pub fn new(root: impl Into<PathBuf>) -> std::io::Result<CheckpointDir> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(CheckpointDir { root })
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_for(&self, key: &str) -> PathBuf {
        self.root.join(format!("{}.json", sanitize(key)))
    }

    /// Atomically checkpoints `payload` under `key`: the envelope is
    /// written to a temp file first and renamed into place, so an
    /// interrupted save never corrupts an existing checkpoint. Errors are
    /// reported but non-fatal — a campaign that cannot checkpoint still
    /// completes, it just cannot resume.
    pub fn save(&self, key: &str, payload: &str) {
        let envelope = Envelope {
            version: CHECKPOINT_VERSION,
            digest: format!("{:016x}", fnv1a64(payload.as_bytes())),
            payload: payload.to_string(),
        };
        let Some(bytes) = lossy_serialize(key, serde_json::to_string(&envelope)) else {
            return;
        };
        let target = self.file_for(key);
        let tmp = self.root.join(format!(".{}.tmp", sanitize(key)));
        let result = fs::write(&tmp, &bytes).and_then(|()| fs::rename(&tmp, &target));
        if let Err(e) = result {
            let _ = fs::remove_file(&tmp);
            eprintln!(
                "[checkpoint] cannot save {} (continuing uncheckpointed): {e}",
                target.display()
            );
        }
    }

    /// Loads and verifies the checkpoint under `key`. Missing, truncated,
    /// corrupt, or version-mismatched files all return `None`.
    pub fn load(&self, key: &str) -> Option<String> {
        let text = fs::read_to_string(self.file_for(key)).ok()?;
        let envelope: Envelope = serde_json::from_str(&text).ok()?;
        if envelope.version != CHECKPOINT_VERSION {
            return None;
        }
        if envelope.digest != format!("{:016x}", fnv1a64(envelope.payload.as_bytes())) {
            return None;
        }
        Some(envelope.payload)
    }

    /// Number of checkpoint files present (tests and progress reporting).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.root)
            .map(|d| {
                d.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether no checkpoints exist yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Store failures are uniformly non-fatal: a serialization error is
/// logged against the key it would have checkpointed and the campaign
/// continues (it just cannot resume that artifact), matching the
/// behavior of I/O errors in [`CheckpointDir::save`].
fn lossy_serialize(key: &str, result: Result<String, serde_json::Error>) -> Option<String> {
    match result {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("[checkpoint] cannot serialize {key} (continuing uncheckpointed): {e}");
            None
        }
    }
}

/// Keys become file names; keep them portable.
fn sanitize(key: &str) -> String {
    key.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// A [`CellStore`] persisting every artifact to a [`CheckpointDir`] as it
/// completes, so a killed campaign resumes from the last finished cell.
pub struct CampaignStore {
    dir: CheckpointDir,
}

impl CampaignStore {
    /// A store over `dir`.
    pub fn new(dir: CheckpointDir) -> CampaignStore {
        CampaignStore { dir }
    }

    /// Opens (creating if needed) a store at `path`.
    pub fn open(path: impl Into<PathBuf>) -> std::io::Result<CampaignStore> {
        Ok(CampaignStore {
            dir: CheckpointDir::new(path)?,
        })
    }

    /// The underlying checkpoint directory.
    pub fn dir(&self) -> &CheckpointDir {
        &self.dir
    }

    fn tables_key(cluster: &str, config: &str) -> String {
        format!("tables-{cluster}-{config}")
    }

    fn cell_key(app: &str, config: &str) -> String {
        format!("cell-{app}-{config}")
    }
}

impl CellStore for CampaignStore {
    fn load_tables(&mut self, cluster: &str, config: &str) -> Option<PerfTableSet> {
        let payload = self.dir.load(&Self::tables_key(cluster, config))?;
        PerfTableSet::from_json(&payload).ok()
    }

    fn save_tables(&mut self, tables: &PerfTableSet) {
        self.dir.save(
            &Self::tables_key(&tables.cluster, &tables.config),
            &tables.to_json(),
        );
    }

    fn load_outcome(&mut self, app: &str, config: &str) -> Option<CellOutcome> {
        let payload = self.dir.load(&Self::cell_key(app, config))?;
        serde_json::from_str(&payload).ok()
    }

    fn save_outcome(&mut self, outcome: &CellOutcome) {
        let key = Self::cell_key(outcome.app(), outcome.config());
        if let Some(payload) = lossy_serialize(&key, serde_json::to_string_pretty(outcome)) {
            self.dir.save(&key, &payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ioeval-ckpt-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = CheckpointDir::new(scratch("roundtrip")).unwrap();
        assert!(dir.is_empty());
        dir.save("alpha", "payload one");
        assert_eq!(dir.load("alpha").as_deref(), Some("payload one"));
        assert_eq!(dir.len(), 1);
        // Overwrite is atomic and replaces.
        dir.save("alpha", "payload two");
        assert_eq!(dir.load("alpha").as_deref(), Some("payload two"));
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn truncated_and_corrupt_files_are_cache_misses() {
        let dir = CheckpointDir::new(scratch("corrupt")).unwrap();
        dir.save("x", "the payload");
        let path = dir.file_for("x");

        // Truncate: torn write.
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(dir.load("x"), None);

        // Restore, then flip a payload byte: digest mismatch.
        fs::write(&path, &full).unwrap();
        let tampered = String::from_utf8(full.clone())
            .unwrap()
            .replace("the payload", "thE payload");
        fs::write(&path, tampered).unwrap();
        assert_eq!(dir.load("x"), None);

        // Unknown future version: recompute rather than misparse.
        let future = String::from_utf8(full).unwrap().replacen(
            &format!("\"version\":{CHECKPOINT_VERSION}"),
            "\"version\":999",
            1,
        );
        fs::write(&path, future).unwrap();
        assert_eq!(dir.load("x"), None);
    }

    #[test]
    fn missing_key_is_none() {
        let dir = CheckpointDir::new(scratch("missing")).unwrap();
        assert_eq!(dir.load("nope"), None);
    }

    #[test]
    fn keys_are_sanitized_to_portable_file_names() {
        let dir = CheckpointDir::new(scratch("sanitize")).unwrap();
        dir.save("cell-BT-IO full/16p::RAID 5", "v");
        assert_eq!(
            dir.load("cell-BT-IO full/16p::RAID 5").as_deref(),
            Some("v")
        );
        for entry in fs::read_dir(dir.root()).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy();
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "-_.".contains(c)),
                "unportable file name {name}"
            );
        }
    }
}
